//! The Table 2 substitution pipeline end to end: synthesize a
//! cello-like trace, measure a `Workload` from it, and feed the measured
//! workload through the full dependability evaluation.

use ssdep_core::analysis::evaluate;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bandwidth, TimeDelta};
use ssdep_workload::{cello, estimate, TraceGenerator};

#[test]
fn measured_cello_workload_drives_the_baseline_evaluation() {
    let measured = cello::measured_cello_workload(TimeDelta::from_days(2.0), 21).unwrap();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let eval = evaluate(&design, &measured, &requirements, &scenario).unwrap();

    // The lag arithmetic is workload-independent: 217 hours still.
    assert!((eval.loss.worst_loss.as_hours() - 217.0).abs() < 1e-6);
    // Utilization tracks the paper workload's within a couple of
    // percentage points, since the measured statistics match Table 2.
    let paper = ssdep_core::presets::cello_workload();
    let reference = evaluate(&design, &paper, &requirements, &scenario).unwrap();
    let measured_cap = eval
        .utilization
        .device("primary array")
        .unwrap()
        .capacity_utilization
        .as_percent();
    let reference_cap = reference
        .utilization
        .device("primary array")
        .unwrap()
        .capacity_utilization
        .as_percent();
    assert!(
        (measured_cap - reference_cap).abs() < 2.0,
        "array capacity {measured_cap:.1}% vs reference {reference_cap:.1}%"
    );
}

#[test]
fn estimator_statistics_converge_with_trace_length() {
    // Longer traces estimate the configured rate more tightly.
    let run = |hours: f64| {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(hours))
            .extent_count(40_000)
            .updates_per_sec(4.0)
            .locality(0.7, 400)
            .seed(5)
            .build()
            .unwrap()
            .generate();
        let measured = estimate::avg_update_rate(&trace);
        let target = trace.extent_size() * 4.0 / TimeDelta::from_secs(1.0);
        (measured / target - 1.0).abs()
    };
    let short_err = run(1.0);
    let long_err = run(16.0);
    assert!(
        long_err < short_err + 0.02,
        "longer traces should not estimate much worse: {short_err:.4} -> {long_err:.4}"
    );
    assert!(long_err < 0.05);
}

#[test]
fn hot_locality_shows_up_as_backup_savings() {
    // Two workloads with identical rates but different locality: the
    // one with heavy overwrites yields smaller incrementals, and the
    // framework's backup model sees it.
    let build = |hot_fraction: f64, hot: u64, seed: u64| {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(12.0))
            .extent_count(50_000)
            .updates_per_sec(8.0)
            .locality(hot_fraction, hot)
            .seed(seed)
            .build()
            .unwrap()
            .generate();
        estimate::workload_from_trace(
            "synthetic",
            &trace,
            Bandwidth::from_mib_per_sec(16.0),
            &[
                TimeDelta::from_minutes(1.0),
                TimeDelta::from_hours(1.0),
                TimeDelta::from_hours(6.0),
            ],
            TimeDelta::from_secs(1.0),
        )
        .unwrap()
    };
    let hot = build(0.9, 200, 1);
    let cold = build(0.0, 1, 2);
    let window = TimeDelta::from_hours(6.0);
    assert!(
        hot.unique_bytes(window) < cold.unique_bytes(window) / 2.0,
        "hot {} vs cold {}",
        hot.unique_bytes(window),
        cold.unique_bytes(window)
    );
}

#[test]
fn cello_fit_reproduces_the_curve_shape() {
    let fit = cello::cello_fit();
    assert!(fit.rms_relative_error < 0.25);
    // The fitted generator's analytic curve declines with the window,
    // as Table 2's does.
    let unique = |secs: f64| {
        ssdep_workload::fit::expected_unique_extents(
            secs,
            cello::cello_updates_per_sec(),
            cello::cello_extent_count(),
            fit.hot_fraction,
            fit.hot_extents,
        ) / secs
    };
    assert!(unique(60.0) > unique(43_200.0));
    assert!(unique(43_200.0) > unique(604_800.0) * 0.99);
}

//! Staged-vs-legacy equivalence: the `PreparedDesign` pipeline and the
//! `EvalEngine` memo cache must be *invisible* — every preset design ×
//! scenario pair serializes bit-for-bit identically (via serde_json)
//! whether it goes through the legacy single-shot `evaluate` or the
//! staged path, and the error cases (`Overutilized`,
//! `NoRecoverySource`) surface at the same pipeline point with the same
//! rendered message.

use ssdep_core::analysis::{evaluate, expected_annual_cost, PreparedDesign, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_core::Error;
use ssdep_opt::EvalEngine;

fn preset_designs() -> Vec<StorageDesign> {
    let mut designs = ssdep_core::presets::what_if_designs();
    designs.push(ssdep_core::presets::baseline_design());
    designs
}

/// Every failure scope on the ladder, plus recovery-target and
/// object-size variations.
fn scenario_grid() -> Vec<FailureScenario> {
    vec![
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(64.0),
            },
            RecoveryTarget::Now,
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(
            FailureScope::Array,
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(48.0),
            },
        ),
        FailureScenario::new(FailureScope::Building, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Region, RecoveryTarget::Now),
    ]
}

/// Asserts that a staged and a legacy result are indistinguishable:
/// equal JSON bytes on success, equal rendered errors on failure.
#[allow(clippy::unwrap_used)] // a serialization failure should abort the test
fn assert_equivalent(
    staged: Result<ssdep_core::analysis::Evaluation, Error>,
    legacy: Result<ssdep_core::analysis::Evaluation, Error>,
    context: &str,
) {
    match (staged, legacy) {
        (Ok(staged), Ok(legacy)) => {
            assert_eq!(
                serde_json::to_string(&staged).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "staged and legacy evaluations must serialize identically: {context}"
            );
        }
        (Err(staged), Err(legacy)) => {
            assert_eq!(
                staged.to_string(),
                legacy.to_string(),
                "staged and legacy errors must render identically: {context}"
            );
        }
        (staged, legacy) => panic!(
            "the paths disagree about success for {context}: \
             staged {staged:?} vs legacy {legacy:?}"
        ),
    }
}

#[test]
fn every_preset_design_and_scenario_is_path_independent() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    for design in &preset_designs() {
        let prepared = PreparedDesign::prepare(design, &workload).unwrap();
        for scenario in &scenario_grid() {
            let context = format!("{} under {scenario}", design.name());
            assert_equivalent(
                prepared.evaluate_scenario(&requirements, scenario),
                evaluate(design, &workload, &requirements, scenario),
                &context,
            );
        }
    }
}

#[test]
fn overutilization_errors_identically_on_both_paths() {
    let workload = ssdep_core::presets::cello_workload();
    let overgrown = workload.scaled(4.0).unwrap();
    let requirements = ssdep_core::presets::paper_requirements();
    let design = ssdep_core::presets::baseline_design();
    // Preparation itself succeeds — the feasibility check is a
    // scenario-stage concern on both paths.
    let prepared = PreparedDesign::prepare(&design, &overgrown).unwrap();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let staged = prepared
        .evaluate_scenario(&requirements, &scenario)
        .unwrap_err();
    let legacy = evaluate(&design, &overgrown, &requirements, &scenario).unwrap_err();
    assert!(matches!(staged, Error::Overutilized { .. }), "{staged}");
    assert_eq!(staged.to_string(), legacy.to_string());
}

#[test]
fn missing_recovery_source_errors_identically_on_both_paths() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let design = ssdep_core::presets::baseline_design();
    // Degrade every level: nothing survives to serve as a source.
    let mut scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    for level in 0..design.levels().len() {
        scenario = scenario.with_degraded_level(level);
    }
    let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
    let staged = prepared
        .evaluate_scenario(&requirements, &scenario)
        .unwrap_err();
    let legacy = evaluate(&design, &workload, &requirements, &scenario).unwrap_err();
    assert!(matches!(staged, Error::NoRecoverySource { .. }), "{staged}");
    assert_eq!(staged.to_string(), legacy.to_string());
}

#[test]
fn engine_expected_costs_match_across_cache_hits_and_misses() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let catalog: Vec<WeightedScenario> = ssdep_core::presets::paper_scenario_catalog();
    let engine = EvalEngine::default();
    let mut successes = 0usize;
    for design in &preset_designs() {
        let legacy = expected_annual_cost(design, &workload, &requirements, &catalog);
        // First call misses the cache, second hits it; both must match
        // the single-shot path byte-for-byte — a design the legacy path
        // rejects (e.g. one that cannot cover a catalog scenario) must
        // be rejected identically by the engine.
        for round in 0..2 {
            let staged = engine.expected_annual_cost(design, &workload, &requirements, &catalog);
            match (&staged, &legacy) {
                (Ok(staged), Ok(legacy)) => {
                    successes += 1;
                    assert_eq!(
                        serde_json::to_string(staged).unwrap(),
                        serde_json::to_string(legacy).unwrap(),
                        "round {round} for {}",
                        design.name()
                    );
                }
                (Err(staged), Err(legacy)) => {
                    assert_eq!(
                        staged.to_string(),
                        legacy.to_string(),
                        "round {round} for {}",
                        design.name()
                    );
                }
                (staged, legacy) => panic!(
                    "the paths disagree about success for {} (round {round}): \
                     engine {staged:?} vs legacy {legacy:?}",
                    design.name()
                ),
            }
        }
    }
    assert!(successes >= 2, "the catalog must evaluate some designs");
    assert!(
        engine.cache_hits() >= 1,
        "the second rounds must hit the cache"
    );
}

//! Integration coverage for the paper's §5 extensions: degraded-mode
//! exposure, annualized risk, multi-object recovery, sensitivity sweeps,
//! and trace CSV interchange — exercised together across crates.

use ssdep_core::analysis::{degraded_exposure, risk_profile, WeightedScenario};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::multi::{evaluate_multi, MultiObjectWorkload, ObjectSpec};
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;

fn catalog() -> Vec<WeightedScenario> {
    vec![
        WeightedScenario::new(
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            12.0,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            0.1,
        ),
        WeightedScenario::new(
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            0.02,
        ),
    ]
}

#[test]
fn degraded_exposure_identifies_the_vault_as_critical() {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenarios: Vec<FailureScenario> = catalog()
        .into_iter()
        .map(|w| w.scenario.as_ref().clone())
        .collect();
    let report = degraded_exposure(&design, &workload, &requirements, &scenarios).unwrap();
    assert_eq!(
        report.most_critical_level().unwrap().level_name,
        "remote vaulting"
    );
    // Degrading the mirror shifts object recovery but never breaks it.
    assert!(report.rows[0].outcomes.iter().all(|o| o.is_recoverable()));
}

#[test]
fn degraded_scenarios_also_constrain_the_simulator() {
    // The simulator must honour degraded levels the same way the
    // analytic side does.
    use ssdep_sim::{SimConfig, Simulation};
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload).unwrap();
    let report = Simulation::new(
        &design,
        &workload,
        SimConfig::new(TimeDelta::from_weeks(16.0)),
    )
    .unwrap()
    .run();
    let scenario =
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now).with_degraded_level(2); // tape backup down
    let outcome = ssdep_sim::recovery::simulate_failure(
        &design,
        &workload,
        &demands,
        &report,
        &scenario,
        TimeDelta::from_weeks(15.0).as_secs(),
    )
    .unwrap();
    assert_eq!(outcome.source_level, 3, "must fall through to the vault");
    let analytic = ssdep_core::analysis::data_loss(&design, &scenario).unwrap();
    assert_eq!(analytic.source_level, 3);
    assert!(outcome.observed_loss <= analytic.worst_loss);
}

#[test]
fn risk_profile_orders_designs_like_expected_cost() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let baseline = risk_profile(
        &ssdep_core::presets::baseline_design(),
        &workload,
        &requirements,
        &catalog(),
    )
    .unwrap();
    let daily = risk_profile(
        &ssdep_core::presets::weekly_vault_daily_full_design(),
        &workload,
        &requirements,
        &catalog(),
    )
    .unwrap();
    assert!(daily.expected_annual_loss < baseline.expected_annual_loss);
    assert!(daily.expected_annual_cost < baseline.expected_annual_cost);
    assert!(baseline.nines() > 3.0);
}

#[test]
fn multi_object_totals_match_a_single_combined_restore() {
    // Three objects restored as one stream must finish exactly when one
    // object of the combined size would.
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let object = |name: &str, gib: f64| {
        ObjectSpec::new(
            Workload::builder(name)
                .data_capacity(Bytes::from_gib(gib))
                .avg_access_rate(Bandwidth::from_kib_per_sec(300.0))
                .avg_update_rate(Bandwidth::from_kib_per_sec(200.0))
                .build()
                .unwrap(),
        )
    };
    let multi = MultiObjectWorkload::new(vec![
        object("a", 500.0),
        object("b", 300.0),
        object("c", 200.0),
    ])
    .unwrap();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let evaluation = evaluate_multi(&design, &multi, &requirements, &scenario).unwrap();

    let combined = Workload::builder("combined")
        .data_capacity(Bytes::from_gib(1000.0))
        .avg_access_rate(Bandwidth::from_kib_per_sec(900.0))
        .avg_update_rate(Bandwidth::from_kib_per_sec(600.0))
        .build()
        .unwrap();
    let single =
        ssdep_core::analysis::evaluate(&design, &combined, &requirements, &scenario).unwrap();
    // Not identical (multi aggregates per-object demands), but the total
    // restore stream moves the same bytes over nearly the same path.
    let ratio = evaluation.total_recovery_time / single.recovery.total_time;
    assert!((0.9..1.1).contains(&ratio), "ratio {ratio:.3}");
}

#[test]
fn sweeps_compose_with_the_optimizer_frontier() {
    // The link sweep's endpoints must agree with the Table 7 presets.
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let hw: Vec<WeightedScenario> = catalog().into_iter().skip(1).collect();
    let series = ssdep_opt::sweep::sweep_mirror_links(&[1, 10], &workload, &requirements, &hw);
    assert!(series.is_complete(), "broken: {:?}", series.broken);
    let points = &series.points;
    let direct = ssdep_core::analysis::evaluate(
        &ssdep_core::presets::async_batch_mirror_design(10),
        &workload,
        &requirements,
        &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
    )
    .unwrap();
    assert!(points[1].outlays.approx_eq(direct.cost.total_outlays, 1e-9));
}

#[test]
fn csv_traces_flow_into_full_evaluations() {
    // Generate → export CSV → import → measure a workload → evaluate.
    let trace = ssdep_workload::TraceGenerator::builder()
        .duration(TimeDelta::from_hours(8.0))
        .extent_count(1_392_640)
        .extent_size(Bytes::from_mib(1.0))
        .updates_per_sec(0.8)
        .locality(0.6, 100)
        .seed(4)
        .build()
        .unwrap()
        .generate();
    let mut csv = Vec::new();
    ssdep_workload::io::write_csv(&trace, &mut csv).unwrap();
    let imported = ssdep_workload::io::read_csv(csv.as_slice()).unwrap();
    assert_eq!(imported, trace);

    let workload = ssdep_workload::estimate::workload_from_trace(
        "imported",
        &imported,
        Bandwidth::from_kib_per_sec(1100.0),
        &[TimeDelta::from_minutes(1.0), TimeDelta::from_hours(1.0)],
        TimeDelta::from_secs(30.0),
    )
    .unwrap();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let evaluation = ssdep_core::analysis::evaluate(
        &design,
        &workload,
        &requirements,
        &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
    )
    .unwrap();
    assert!((evaluation.loss.worst_loss.as_hours() - 217.0).abs() < 1e-6);
}

//! Serialization round-trips: designs, workloads, evaluations, and
//! simulator reports must survive JSON, so specs and results can be
//! stored and exchanged.

use ssdep_core::analysis::{evaluate, Evaluation};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::TimeDelta;
use ssdep_core::workload::Workload;

#[test]
fn every_what_if_design_roundtrips() {
    for design in ssdep_core::presets::what_if_designs() {
        let json = serde_json::to_string(&design).unwrap();
        let back: StorageDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(design, back, "{}", design.name());
    }
}

#[test]
fn workload_roundtrips_with_curve_intact() {
    let workload = ssdep_core::presets::cello_workload();
    let json = serde_json::to_string_pretty(&workload).unwrap();
    let back: Workload = serde_json::from_str(&json).unwrap();
    assert_eq!(workload, back);
    assert_eq!(
        back.batch_update_rate(TimeDelta::from_hours(12.0)),
        workload.batch_update_rate(TimeDelta::from_hours(12.0))
    );
}

#[test]
fn evaluations_serialize_for_tooling() {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    let evaluation = evaluate(&design, &workload, &requirements, &scenario).unwrap();
    let json = serde_json::to_string(&evaluation).unwrap();
    let back: Evaluation = serde_json::from_str(&json).unwrap();
    // JSON round-trips f64 to within an ULP; compare the decision-facing
    // quantities rather than bitwise equality.
    assert_eq!(back.loss.source_level, evaluation.loss.source_level);
    assert!(back
        .loss
        .worst_loss
        .approx_eq(evaluation.loss.worst_loss, 1e-12));
    assert!(back
        .recovery
        .total_time
        .approx_eq(evaluation.recovery.total_time, 1e-12));
    assert!(back
        .cost
        .total_cost
        .approx_eq(evaluation.cost.total_cost, 1e-12));
    assert_eq!(back.recovery.steps.len(), evaluation.recovery.steps.len());
    // Sanity: the serialized form carries the values tools need.
    assert!(json.contains("remote vaulting"));
    assert!(json.contains("total_time"));
}

#[test]
fn deserialized_designs_evaluate_identically() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    for design in ssdep_core::presets::what_if_designs() {
        let copy: StorageDesign =
            serde_json::from_str(&serde_json::to_string(&design).unwrap()).unwrap();
        let original = evaluate(&design, &workload, &requirements, &scenario).unwrap();
        let replayed = evaluate(&copy, &workload, &requirements, &scenario).unwrap();
        assert_eq!(original, replayed, "{}", design.name());
    }
}

#[test]
fn modified_spec_changes_the_evaluation() {
    // Round-trip through JSON, tweak a window in the JSON text, and the
    // evaluation must reflect it — the spec is the source of truth.
    let design = ssdep_core::presets::baseline_design();
    let json = serde_json::to_string(&design).unwrap();
    // The vault hold window (4 weeks + 12 hours) is unique in the spec.
    let long_hold = (4.0 * 7.0 * 24.0 * 3600.0 + 12.0 * 3600.0).to_string();
    let short_hold = (12.0 * 3600.0).to_string();
    assert_eq!(json.matches(&long_hold).count(), 1);
    let modified = json.replacen(&long_hold, &short_hold, 1);
    let tweaked: StorageDesign = serde_json::from_str(&modified).unwrap();

    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    let original = evaluate(&design, &workload, &requirements, &scenario).unwrap();
    let changed = evaluate(&tweaked, &workload, &requirements, &scenario).unwrap();
    assert!(changed.loss.worst_loss < original.loss.worst_loss);
}

//! End-to-end reproduction of the paper's §4.1 baseline case study:
//! Table 5 (utilization), Table 6 (recovery time / data loss), and
//! Figure 5 (cost structure), checked against the published values.

use ssdep_core::failure::FailureScope;
use ssdep_core::units::{Bytes, TimeDelta, Utilization};
use ssdep_integration::{evaluate_paper, paper_scopes};

fn baseline() -> ssdep_core::hierarchy::StorageDesign {
    ssdep_core::presets::baseline_design()
}

#[test]
fn table5_bandwidth_utilization() {
    let eval = evaluate_paper(&baseline(), FailureScope::Array).unwrap();
    let array = eval.utilization.device("primary array").unwrap();
    let tape = eval.utilization.device("tape library").unwrap();

    // Paper Table 5 rows, within rounding.
    assert!((array.bandwidth_utilization.as_percent() - 2.4).abs() < 0.1);
    assert!((array.bandwidth_demand.as_mib_per_sec() - 12.4).abs() < 0.3);
    assert!((tape.bandwidth_utilization.as_percent() - 3.4).abs() < 0.1);
    assert!((tape.bandwidth_demand.as_mib_per_sec() - 8.1).abs() < 0.1);

    // Per-technique shares on the array: 0.2 / 0.6 / 1.6 %.
    let share = |name: &str| {
        array
            .shares
            .iter()
            .find(|s| s.level_name == name)
            .map(|s| s.bandwidth_utilization.as_percent())
            .unwrap()
    };
    assert!((share("primary copy") - 0.2).abs() < 0.05);
    assert!((share("split mirror") - 0.6).abs() < 0.1);
    assert!((share("tape backup") - 1.6).abs() < 0.1);
}

#[test]
fn table5_capacity_utilization() {
    let eval = evaluate_paper(&baseline(), FailureScope::Array).unwrap();
    let array = eval.utilization.device("primary array").unwrap();
    let tape = eval.utilization.device("tape library").unwrap();
    let vault = eval.utilization.device("tape vault").unwrap();

    assert!((array.capacity_utilization.as_percent() - 87.4).abs() < 0.3);
    assert!((array.capacity_demand.as_tib() - 8.0).abs() < 0.1);
    assert!((tape.capacity_utilization.as_percent() - 3.4).abs() < 0.1);
    assert!((tape.capacity_demand.as_tib() - 6.6).abs() < 0.1);
    assert!((vault.capacity_utilization.as_percent() - 2.6).abs() < 0.1);
    assert!((vault.capacity_demand.as_tib() - 51.8).abs() < 0.1);

    // Global: capacity bound by the array, bandwidth by the tape.
    assert!((eval.utilization.system_capacity.as_percent() - 87.4).abs() < 0.3);
    assert!((eval.utilization.system_bandwidth.as_percent() - 3.4).abs() < 0.1);
    assert!(eval.utilization.system_capacity < Utilization::FULL);
}

#[test]
fn table6_recovery_sources_and_data_loss() {
    let design = baseline();
    let cases = [
        (paper_scopes()[0].clone(), "split mirror", 12.0),
        (FailureScope::Array, "tape backup", 217.0),
        (FailureScope::Site, "remote vaulting", 1429.0),
    ];
    for (scope, source, loss_hours) in cases {
        let eval = evaluate_paper(&design, scope.clone()).unwrap();
        assert_eq!(eval.loss.source_level_name(), Some(source), "{scope:?}");
        assert!(
            (eval.loss.worst_loss.as_hours() - loss_hours).abs() < 1e-6,
            "{scope:?}: {} hr",
            eval.loss.worst_loss.as_hours()
        );
    }
}

#[test]
fn table6_recovery_times_track_the_paper() {
    let design = baseline();
    // Object: paper 0.004 s (intra-array copy).
    let object = evaluate_paper(&design, paper_scopes()[0].clone()).unwrap();
    assert!(object.recovery.total_time < TimeDelta::from_secs(0.01));
    // Array: paper 2.4 hr; our bandwidth convention gives ~1.7 hr.
    let array = evaluate_paper(&design, FailureScope::Array).unwrap();
    let hours = array.recovery.total_time.as_hours();
    assert!((1.4..=2.6).contains(&hours), "array RT {hours:.2} hr");
    // Site: paper 26.4 hr; shipment-dominated.
    let site = evaluate_paper(&design, FailureScope::Site).unwrap();
    let hours = site.recovery.total_time.as_hours();
    assert!((25.0..=27.0).contains(&hours), "site RT {hours:.2} hr");
    // Ordering is strict.
    assert!(object.recovery.total_time < array.recovery.total_time);
    assert!(array.recovery.total_time < site.recovery.total_time);
}

#[test]
fn figure5_cost_structure() {
    let design = baseline();
    let object = evaluate_paper(&design, paper_scopes()[0].clone()).unwrap();
    let array = evaluate_paper(&design, FailureScope::Array).unwrap();
    let site = evaluate_paper(&design, FailureScope::Site).unwrap();

    // Outlays ~ $1M and identical across scenarios.
    assert!((0.8..=1.1).contains(&array.cost.total_outlays.as_millions()));
    assert_eq!(object.cost.total_outlays, site.cost.total_outlays);

    // Array failure: paper total $11.94M (ours differs only through RT).
    let array_total = array.cost.total_cost.as_millions();
    assert!(
        (11.0..=12.5).contains(&array_total),
        "array total ${array_total:.2}M"
    );

    // Site failure: paper total $71.94M; loss penalties dominate. Our
    // consistent penalty arithmetic gives 1429.4 h + 25.6 h at $50k/hr
    // ≈ $72.8M + outlays.
    let site_total = site.cost.total_cost.as_millions();
    assert!(
        (70.0..=75.5).contains(&site_total),
        "site total ${site_total:.2}M"
    );

    // Loss penalties dwarf outage penalties for disasters.
    assert!(site.cost.loss_penalty > site.cost.unavailability_penalty * 10.0);
    assert!(array.cost.loss_penalty > array.cost.unavailability_penalty * 10.0);
}

#[test]
fn object_failure_leaves_hardware_untouched() {
    let design = baseline();
    let eval = evaluate_paper(&design, paper_scopes()[0].clone()).unwrap();
    // Recovery is a single intra-array transfer of the 1 MiB object.
    assert_eq!(eval.recovery.restore_bytes, Bytes::from_mib(1.0));
    assert!(eval
        .recovery
        .steps
        .iter()
        .all(|s| s.kind != ssdep_core::analysis::StepKind::Provisioning));
}

//! Property tests over *randomly generated designs*: sample the
//! candidate space's dimensions with random windows/retentions, and
//! check that the framework's invariants hold for every coherent design
//! that materializes.

use proptest::prelude::*;
use ssdep_core::analysis;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::TimeDelta;
use ssdep_opt::space::{BackupChoice, Candidate, MirrorChoice, PitChoice, VaultChoice};

fn pit_strategy() -> impl Strategy<Value = PitChoice> {
    prop_oneof![
        Just(PitChoice::None),
        (2.0f64..48.0, 2u32..12).prop_map(|(acc_hours, retained)| PitChoice::SplitMirror {
            acc_hours,
            retained
        }),
        (2.0f64..48.0, 2u32..24).prop_map(|(acc_hours, retained)| PitChoice::Snapshot {
            acc_hours,
            retained
        }),
    ]
}

fn backup_strategy() -> impl Strategy<Value = BackupChoice> {
    prop_oneof![
        Just(BackupChoice::None),
        (24.0f64..336.0, 0.1f64..0.9, 2u32..16, 0u32..4).prop_map(
            |(acc_hours, prop_frac, retained, incrementals)| {
                // Incrementals are daily; they must fit inside the cycle.
                let daily_incrementals = if acc_hours > (incrementals + 1) as f64 * 24.0 {
                    incrementals
                } else {
                    0
                };
                BackupChoice::Fulls {
                    acc_hours,
                    prop_hours: acc_hours * prop_frac,
                    retained,
                    daily_incrementals,
                }
            }
        ),
    ]
}

fn vault_strategy() -> impl Strategy<Value = VaultChoice> {
    prop_oneof![
        Just(VaultChoice::None),
        (1.0f64..8.0, 1.0f64..800.0, 4u32..200).prop_map(|(acc_weeks, hold_hours, retained)| {
            VaultChoice::Ship {
                acc_weeks,
                hold_hours,
                retained,
            }
        }),
    ]
}

fn mirror_strategy() -> impl Strategy<Value = MirrorChoice> {
    prop_oneof![
        Just(MirrorChoice::None),
        (1u32..12).prop_map(|links| MirrorChoice::Synchronous { links }),
        (0.5f64..30.0, 1u32..12)
            .prop_map(|(acc_minutes, links)| MirrorChoice::Batched { acc_minutes, links }),
    ]
}

fn candidate_strategy() -> impl Strategy<Value = Candidate> {
    (
        pit_strategy(),
        backup_strategy(),
        vault_strategy(),
        mirror_strategy(),
    )
        .prop_map(|(pit, backup, vault, mirror)| Candidate {
            pit,
            backup,
            vault,
            mirror,
        })
}

/// A 20-week baseline simulation, built once and shared across property
/// cases (simulation is deterministic, so sharing is sound).
struct SimFixture {
    design: ssdep_core::hierarchy::StorageDesign,
    workload: ssdep_core::workload::Workload,
    demands: ssdep_core::demands::DemandSet,
    report: ssdep_sim::SimReport,
}

// A panic in this test fixture is the failure report itself.
#[allow(clippy::unwrap_used)]
fn sim_fixture() -> &'static SimFixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<SimFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = ssdep_sim::Simulation::new(
            &design,
            &workload,
            ssdep_sim::SimConfig::new(TimeDelta::from_weeks(20.0)),
        )
        .unwrap()
        .run();
        SimFixture {
            design,
            workload,
            demands,
            report,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coherent_candidates_evaluate_with_sane_invariants(candidate in candidate_strategy()) {
        prop_assume!(candidate.is_coherent());
        let Ok(design) = candidate.materialize() else {
            // Some sampled parameter combinations are validly rejected
            // (e.g. retention shorter than span); that is correct
            // behaviour, not a failure.
            return Ok(());
        };
        let workload = ssdep_core::presets::cello_workload();
        let requirements = ssdep_core::presets::paper_requirements();

        for scope in [FailureScope::Array, FailureScope::Site] {
            let scenario = FailureScenario::new(scope, RecoveryTarget::Now);
            match analysis::evaluate(&design, &workload, &requirements, &scenario) {
                Ok(evaluation) => {
                    // Loss and recovery are non-negative and finite.
                    prop_assert!(evaluation.loss.worst_loss.value() >= 0.0);
                    prop_assert!(evaluation.loss.worst_loss.is_finite());
                    prop_assert!(evaluation.recovery.total_time.value() >= 0.0);
                    prop_assert!(evaluation.recovery.total_time.is_finite());
                    // Penalties follow the rates exactly.
                    let expected = requirements.loss_penalty_rate()
                        * evaluation.loss.worst_loss
                        + requirements.unavailability_penalty_rate()
                            * evaluation.recovery.total_time;
                    prop_assert!(evaluation.cost.total_penalties().approx_eq(expected, 1e-9));
                    // The chosen source survived the failure.
                    prop_assert!(!design.level_unavailable(
                        evaluation.loss.source_level,
                        &scenario
                    ));
                    // Steps never end after the reported total.
                    for step in &evaluation.recovery.steps {
                        prop_assert!(step.end() <= evaluation.recovery.total_time + TimeDelta::from_secs(1e-6));
                    }
                }
                // Designs genuinely unable to recover (or overcommitted)
                // must say so through the typed errors, never panic.
                Err(ssdep_core::Error::NoRecoverySource { .. })
                | Err(ssdep_core::Error::NoReplacement { .. })
                | Err(ssdep_core::Error::Overutilized { .. }) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "unexpected error for {}: {other}",
                        candidate.label()
                    )));
                }
            }
        }
    }

    #[test]
    fn site_failures_never_lose_less_than_array_failures(candidate in candidate_strategy()) {
        prop_assume!(candidate.is_coherent());
        let Ok(design) = candidate.materialize() else { return Ok(()) };
        let workload = ssdep_core::presets::cello_workload();
        let requirements = ssdep_core::presets::paper_requirements();
        let evaluate = |scope| {
            analysis::evaluate(
                &design,
                &workload,
                &requirements,
                &FailureScenario::new(scope, RecoveryTarget::Now),
            )
        };
        if let (Ok(array), Ok(site)) = (evaluate(FailureScope::Array), evaluate(FailureScope::Site)) {
            // A site failure destroys at least everything an array
            // failure does, so the best surviving source cannot be
            // fresher.
            prop_assert!(
                site.loss.worst_loss >= array.loss.worst_loss - TimeDelta::from_secs(1e-6),
                "{}: site {} < array {}",
                candidate.label(),
                site.loss.worst_loss,
                array.loss.worst_loss
            );
        }
    }

    #[test]
    fn simulated_losses_are_bounded_at_arbitrary_instants(hours in 0.0f64..1680.0) {
        // Random failure instants across ten weeks of simulated history:
        // the observed loss must respect the analytic bound at every one
        // of them, not just on a grid.
        let fixture = sim_fixture();
        let t = TimeDelta::from_weeks(10.0).as_secs() + hours * 3600.0;
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let analytic = analysis::data_loss(&fixture.design, &scenario).unwrap().worst_loss;
        match ssdep_sim::recovery::simulate_failure(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            t,
        ) {
            Ok(outcome) => {
                prop_assert!(
                    outcome.observed_loss <= analytic + TimeDelta::from_secs(1.0),
                    "at t={t}: observed {} > analytic {}",
                    outcome.observed_loss,
                    analytic
                );
            }
            Err(ssdep_core::Error::NoRecoverySource { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(other.to_string())),
        }
    }

    #[test]
    fn level_ranges_are_always_ordered(candidate in candidate_strategy()) {
        prop_assume!(candidate.is_coherent());
        let Ok(design) = candidate.materialize() else { return Ok(()) };
        let ranges = analysis::level_ranges(&design);
        for range in &ranges {
            prop_assert!(range.min_lag <= range.max_lag);
            prop_assert!(range.min_lag <= range.oldest_guaranteed);
        }
        for pair in ranges.windows(2) {
            prop_assert!(pair[1].min_lag >= pair[0].min_lag);
        }
    }
}

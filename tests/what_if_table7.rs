//! Reproduction of the paper's §4.2 what-if exploration (Table 7): the
//! *shape* of the comparison — who wins, by what order of magnitude,
//! where the crossovers fall — must match the published table.

use ssdep_core::failure::FailureScope;
use ssdep_core::units::TimeDelta;
use ssdep_integration::evaluate_paper;

struct Row {
    name: &'static str,
    array_rt: f64,
    array_dl: f64,
    site_rt: f64,
    site_dl: f64,
    outlays: f64,
    array_total: f64,
    site_total: f64,
}

fn rows() -> Vec<Row> {
    ssdep_core::presets::what_if_designs()
        .into_iter()
        .map(|design| {
            let array = evaluate_paper(&design, FailureScope::Array)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
            let site = evaluate_paper(&design, FailureScope::Site)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
            Row {
                name: match design.name() {
                    "baseline" => "baseline",
                    "weekly vault" => "weekly",
                    "weekly vault, F+I" => "fi",
                    "weekly vault, daily F" => "daily",
                    "weekly vault, daily F, snapshot" => "snapshot",
                    "asyncB mirror, 1 link(s)" => "mirror1",
                    "asyncB mirror, 10 link(s)" => "mirror10",
                    other => panic!("unexpected design {other}"),
                },
                array_rt: array.recovery.total_time.as_hours(),
                array_dl: array.loss.worst_loss.as_hours(),
                site_rt: site.recovery.total_time.as_hours(),
                site_dl: site.loss.worst_loss.as_hours(),
                outlays: array.cost.total_outlays.as_millions(),
                array_total: array.cost.total_cost.as_millions(),
                site_total: site.cost.total_cost.as_millions(),
            }
        })
        .collect()
}

fn by<'a>(rows: &'a [Row], name: &str) -> &'a Row {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no such design row: {name}"))
}

#[test]
fn data_loss_values_match_table_7_exactly() {
    let rows = rows();
    // Array-failure DL column: 217, 217, 73, 37, 37, 0.03, 0.03 hours.
    assert!((by(&rows, "baseline").array_dl - 217.0).abs() < 1e-6);
    assert!((by(&rows, "weekly").array_dl - 217.0).abs() < 1e-6);
    assert!((by(&rows, "fi").array_dl - 73.0).abs() < 1e-6);
    assert!((by(&rows, "daily").array_dl - 37.0).abs() < 1e-6);
    assert!((by(&rows, "snapshot").array_dl - 37.0).abs() < 1e-6);
    assert!((by(&rows, "mirror1").array_dl - 2.0 / 60.0).abs() < 1e-6);
    // Site-disaster DL column: 1429, 253, 253, 217, 217, 0.03, 0.03.
    assert!((by(&rows, "baseline").site_dl - 1429.0).abs() < 1e-6);
    assert!((by(&rows, "weekly").site_dl - 253.0).abs() < 1e-6);
    assert!((by(&rows, "fi").site_dl - 253.0).abs() < 1e-6);
    assert!((by(&rows, "daily").site_dl - 217.0).abs() < 1e-6);
    assert!((by(&rows, "snapshot").site_dl - 217.0).abs() < 1e-6);
    assert!((by(&rows, "mirror10").site_dl - 2.0 / 60.0).abs() < 1e-6);
}

#[test]
fn weekly_vaulting_slashes_site_loss_but_not_array_loss() {
    let rows = rows();
    let baseline = by(&rows, "baseline");
    let weekly = by(&rows, "weekly");
    assert!(weekly.site_dl < baseline.site_dl / 5.0);
    assert_eq!(weekly.array_dl, baseline.array_dl);
    // Total site cost drops roughly fivefold ($71.94M → $14.96M scale).
    assert!(weekly.site_total < baseline.site_total / 4.0);
}

#[test]
fn incrementals_trade_recovery_time_for_loss() {
    let rows = rows();
    let weekly = by(&rows, "weekly");
    let fi = by(&rows, "fi");
    // F+I cuts array-failure loss ~3× …
    assert!(fi.array_dl < weekly.array_dl / 2.5);
    // … at slightly longer recovery (restore full + incremental).
    assert!(fi.array_rt > weekly.array_rt);
    // Site-disaster behaviour is unchanged (vault still gets fulls).
    assert!((fi.site_dl - weekly.site_dl).abs() < 1e-6);
}

#[test]
fn daily_fulls_beat_incrementals_on_loss_and_restore_volume() {
    let rows = rows();
    let fi = by(&rows, "fi");
    let daily = by(&rows, "daily");
    assert!(daily.array_dl < fi.array_dl);
    assert!(daily.site_dl < fi.site_dl);
    assert!(daily.array_total < fi.array_total);
    // The F+I restore must move a full *plus* the largest cumulative
    // incremental; daily fulls restore exactly one full. (The paper's
    // Table 7 shows this as 2.4 hr vs 4.0 hr; our available-bandwidth
    // convention shifts the absolute times but the volume relation is
    // structural.)
    let workload = ssdep_core::presets::cello_workload();
    let fi_eval = evaluate_paper(
        &ssdep_core::presets::weekly_vault_full_incremental_design(),
        FailureScope::Array,
    )
    .unwrap();
    let daily_eval = evaluate_paper(
        &ssdep_core::presets::weekly_vault_daily_full_design(),
        FailureScope::Array,
    )
    .unwrap();
    assert_eq!(daily_eval.recovery.restore_bytes, workload.data_capacity());
    assert!(fi_eval.recovery.restore_bytes > workload.data_capacity());
}

#[test]
fn snapshots_cut_outlays_without_hurting_dependability() {
    let rows = rows();
    let daily = by(&rows, "daily");
    let snapshot = by(&rows, "snapshot");
    // Paper: $1.01M → $0.76M outlays, same RT/DL.
    assert!(snapshot.outlays < daily.outlays - 0.1);
    assert!((snapshot.array_dl - daily.array_dl).abs() < 1e-6);
    assert!((snapshot.array_rt - daily.array_rt).abs() < 0.2);
}

#[test]
fn mirroring_reduces_loss_to_minutes_with_transfer_bound_recovery() {
    let rows = rows();
    let mirror1 = by(&rows, "mirror1");
    let mirror10 = by(&rows, "mirror10");
    // Two-minute loss for both (paper: 0.03 hr).
    assert!(mirror1.array_dl < 0.05);
    // One link: recovery is transfer-dominated, ~21.7 hr in the paper.
    assert!(
        (20.0..=24.0).contains(&mirror1.array_rt),
        "{}",
        mirror1.array_rt
    );
    // Ten links recover an order of magnitude faster (paper 2.8 hr).
    assert!(mirror10.array_rt < mirror1.array_rt / 5.0);
    assert!(
        (1.5..=3.5).contains(&mirror10.array_rt),
        "{}",
        mirror10.array_rt
    );
    // Site recovery additionally waits on the shared facility.
    assert!(mirror10.site_rt > mirror10.array_rt);
    // Ten links cost several million more (paper $0.93M → $5.03M).
    assert!(mirror10.outlays > mirror1.outlays + 3.0);
}

#[test]
fn single_link_mirror_has_the_lowest_total_cost() {
    // The paper's "ironic" headline: the cheapest overall design is the
    // single-link mirror despite its slow recovery, because loss
    // penalties vanish and outlays stay modest.
    let rows = rows();
    let mirror1 = by(&rows, "mirror1");
    for row in &rows {
        assert!(
            mirror1.array_total <= row.array_total + 1e-9,
            "{} beats mirror1 on array total ({:.2} vs {:.2})",
            row.name,
            row.array_total,
            mirror1.array_total
        );
    }
    // And mirror-10's extra links make it pricier overall than mirror-1
    // (paper: $5.18M vs $2.01M).
    let mirror10 = by(&rows, "mirror10");
    assert!(mirror10.array_total > mirror1.array_total);
}

#[test]
fn costs_are_dominated_by_penalties_exactly_when_loss_is_large() {
    let rows = rows();
    for row in &rows {
        let penalties = row.array_total - row.outlays;
        if row.array_dl > 100.0 {
            assert!(
                penalties > row.outlays,
                "{}: penalties should dominate",
                row.name
            );
        }
        if row.array_dl < 1.0 {
            assert!(
                penalties < row.outlays * 3.0,
                "{}: penalties should be modest",
                row.name
            );
        }
    }
}

#[test]
fn every_what_if_design_is_feasible_and_warning_free_enough() {
    for design in ssdep_core::presets::what_if_designs() {
        let workload = ssdep_core::presets::cello_workload();
        let report = ssdep_core::analysis::utilization(&design, &workload).unwrap();
        report
            .check()
            .unwrap_or_else(|e| panic!("{} infeasible: {e}", design.name()));
        // The weekly-vault variants legitimately warn about nothing
        // fatal; just ensure warnings stay bounded.
        assert!(design.convention_warnings().len() <= 2, "{}", design.name());
    }
}

#[test]
fn mirror_designs_cannot_serve_day_old_rollbacks() {
    // A mirror keeps no history: a 24-hour-old corruption target must be
    // unrecoverable (the reason real deployments keep PiT + backup too).
    let design = ssdep_core::presets::async_batch_mirror_design(1);
    let err = evaluate_paper(
        &design,
        FailureScope::DataObject {
            size: ssdep_core::units::Bytes::from_mib(1.0),
        },
    )
    .unwrap_err();
    assert!(matches!(err, ssdep_core::Error::NoRecoverySource { .. }));
    let _ = TimeDelta::ZERO; // keep the import used in all cfgs
}

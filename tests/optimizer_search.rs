//! Cross-crate optimizer checks: the search must agree with direct
//! evaluations of the presets and behave sanely as requirements change.

use ssdep_core::analysis::WeightedScenario;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Money, TimeDelta};
use ssdep_opt::pareto;
use ssdep_opt::search::{evaluate_candidate, exhaustive, hill_climb, paper_scenarios};
use ssdep_opt::space::{
    BackupChoice, Candidate, DesignSpace, MirrorChoice, PitChoice, VaultChoice,
};

fn baseline_candidate() -> Candidate {
    Candidate {
        pit: PitChoice::SplitMirror {
            acc_hours: 12.0,
            retained: 4,
        },
        backup: BackupChoice::Fulls {
            acc_hours: 168.0,
            prop_hours: 48.0,
            retained: 4,
            daily_incrementals: 0,
        },
        vault: VaultChoice::Ship {
            acc_weeks: 4.0,
            hold_hours: 684.0,
            retained: 39,
        },
        mirror: MirrorChoice::None,
    }
}

#[test]
fn candidate_evaluation_matches_direct_preset_evaluation() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let scenario = WeightedScenario::new(
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        1.0,
    );
    let outcome =
        evaluate_candidate(&baseline_candidate(), &workload, &requirements, &[scenario]).unwrap();

    let design = ssdep_core::presets::baseline_design();
    let direct = ssdep_core::analysis::evaluate(
        &design,
        &workload,
        &requirements,
        &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
    )
    .unwrap();

    assert!(outcome.outlays.approx_eq(direct.cost.total_outlays, 1e-9));
    assert!(outcome
        .expected_penalties
        .approx_eq(direct.cost.total_penalties(), 1e-9));
    assert!((outcome.worst_data_loss.as_hours() - 217.0).abs() < 1e-6);
}

#[test]
fn raising_loss_penalties_shifts_the_winner_toward_lower_loss() {
    let workload = ssdep_core::presets::cello_workload();
    let space = DesignSpace::minimal();

    let reqs = |rate: f64| {
        ssdep_core::requirements::BusinessRequirements::builder()
            .unavailability_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(rate))
            .loss_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(rate))
            .build()
            .unwrap()
    };

    let cheap_rates = exhaustive(&space, &workload, &reqs(100.0), &paper_scenarios()).unwrap();
    let dear_rates = exhaustive(&space, &workload, &reqs(5_000_000.0), &paper_scenarios()).unwrap();
    let cheap_best = cheap_rates.best().unwrap();
    let dear_best = dear_rates.best().unwrap();
    assert!(
        dear_best.worst_data_loss <= cheap_best.worst_data_loss,
        "dearer penalties must not pick a lossier design ({} vs {})",
        dear_best.worst_data_loss,
        cheap_best.worst_data_loss
    );
}

#[test]
fn hill_climb_uses_fewer_evaluations_on_the_broad_space() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let space = DesignSpace::broad();
    let full = exhaustive(&space, &workload, &requirements, &paper_scenarios()).unwrap();
    let climbed = hill_climb(&space, &workload, &requirements, &paper_scenarios()).unwrap();
    assert!(
        climbed.evaluations < full.evaluations,
        "{} vs {}",
        climbed.evaluations,
        full.evaluations
    );
    let best = full.best().unwrap().expected_total;
    let local = climbed.best().unwrap().expected_total;
    assert!(
        local <= best * 1.25,
        "hill climb landed at {local} vs global best {best}"
    );
}

#[test]
fn pareto_front_brackets_the_cost_range() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let result = exhaustive(
        &DesignSpace::broad(),
        &workload,
        &requirements,
        &paper_scenarios(),
    )
    .unwrap();
    let front = pareto::cost_risk_front(&result.ranked);
    assert!(!front.is_empty());
    // The min-outlay and min-penalty candidates are always on the front.
    let min_outlay = result
        .ranked
        .iter()
        .map(|o| o.outlays)
        .fold(Money::from_dollars(f64::INFINITY), Money::min);
    let min_penalty = result
        .ranked
        .iter()
        .map(|o| o.expected_penalties)
        .fold(Money::from_dollars(f64::INFINITY), Money::min);
    assert!(front.iter().any(|o| o.outlays == min_outlay));
    assert!(front.iter().any(|o| o.expected_penalties == min_penalty));
}

#[test]
fn infeasible_candidates_are_reported_not_dropped_silently() {
    // A vault choice with an 11-hour hold but a 12-hour-holding vault
    // params is fine; instead force infeasibility via an impossible
    // backup window (propagation longer than accumulation).
    let space = DesignSpace {
        pit: vec![PitChoice::SplitMirror {
            acc_hours: 12.0,
            retained: 4,
        }],
        backup: vec![BackupChoice::Fulls {
            acc_hours: 24.0,
            prop_hours: 48.0, // propW > accW: invalid
            retained: 4,
            daily_incrementals: 0,
        }],
        vault: vec![VaultChoice::None],
        mirror: vec![MirrorChoice::None],
    };
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::presets::paper_requirements();
    let result = exhaustive(&space, &workload, &requirements, &paper_scenarios()).unwrap();
    assert!(result.ranked.is_empty());
    assert_eq!(result.infeasible.len(), 1);
    assert!(result.infeasible[0].reason.contains("propW"));
}

#[test]
fn rto_rpo_front_is_consistent_with_objectives() {
    let workload = ssdep_core::presets::cello_workload();
    let requirements = ssdep_core::requirements::BusinessRequirements::builder()
        .unavailability_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(
            50_000.0,
        ))
        .loss_penalty_rate(ssdep_core::units::MoneyRate::from_dollars_per_hour(
            50_000.0,
        ))
        .recovery_time_objective(TimeDelta::from_hours(30.0))
        .recovery_point_objective(TimeDelta::from_hours(250.0))
        .build()
        .unwrap();
    let result = exhaustive(
        &DesignSpace::minimal(),
        &workload,
        &requirements,
        &paper_scenarios(),
    )
    .unwrap();
    let front = pareto::rto_rpo_front(&result.ranked);
    // Anyone meeting the objectives is dominated only by other feasible
    // points; at least one frontier member should meet them.
    assert!(
        front.iter().any(|o| o.meets_objectives),
        "front: {:?}",
        front
            .iter()
            .map(|o| (&o.label, o.worst_recovery_time, o.worst_data_loss))
            .collect::<Vec<_>>()
    );
}

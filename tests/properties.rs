//! Property-based tests over the framework's core invariants, driven by
//! randomly generated workloads, protection parameters, and failure
//! targets.

use proptest::prelude::*;
use ssdep_core::analysis;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::protection::ProtectionParams;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;

/// A strategy for physically consistent workloads.
// A panic in this test helper is the failure report itself.
#[allow(clippy::expect_used)]
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        10.0f64..5000.0, // GiB
        64.0f64..8192.0, // access KiB/s
        0.1f64..1.0,     // update fraction of access
        1.0f64..20.0,    // burst multiplier
        0.2f64..1.0,     // unique fraction at one minute
        0.05f64..1.0,    // long-window fraction of the short one
    )
        .prop_map(
            |(gib, access, update_frac, burst, short_unique, long_ratio)| {
                let update = access * update_frac;
                let short_rate = update * short_unique;
                let long_rate = short_rate * long_ratio;
                // Bytes monotonicity needs rate(12 h) × 12 h ≥ rate(1 min) × 1 min,
                // which holds because long_ratio ≥ 0.05 ≫ 1/720.
                Workload::builder("prop")
                    .data_capacity(Bytes::from_gib(gib))
                    .avg_access_rate(Bandwidth::from_kib_per_sec(access))
                    .avg_update_rate(Bandwidth::from_kib_per_sec(update))
                    .burst_multiplier(burst)
                    .batch_rate(
                        TimeDelta::from_minutes(1.0),
                        Bandwidth::from_kib_per_sec(short_rate),
                    )
                    .batch_rate(
                        TimeDelta::from_hours(12.0),
                        Bandwidth::from_kib_per_sec(long_rate),
                    )
                    .build()
                    .expect("strategy produces valid workloads")
            },
        )
}

/// A strategy for valid protection parameter sets.
// A panic in this test helper is the failure report itself.
#[allow(clippy::expect_used)]
fn params_strategy() -> impl Strategy<Value = ProtectionParams> {
    (
        1.0f64..400.0, // accW hours
        0.0f64..1.0,   // propW as a fraction of accW
        0.0f64..100.0, // holdW hours
        1u32..40,      // retCnt
    )
        .prop_map(|(acc, prop_frac, hold, ret)| {
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(acc))
                .propagation_window(TimeDelta::from_hours(acc * prop_frac))
                .hold_window(TimeDelta::from_hours(hold))
                .retention_count(ret)
                .build()
                .expect("strategy produces valid params")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unique_bytes_monotone_and_bounded(workload in workload_strategy(), hours in 0.01f64..10_000.0) {
        let w1 = TimeDelta::from_hours(hours);
        let w2 = TimeDelta::from_hours(hours * 1.5);
        let u1 = workload.unique_bytes(w1);
        let u2 = workload.unique_bytes(w2);
        prop_assert!(u2 >= u1, "unique bytes decreased: {u1} -> {u2}");
        prop_assert!(u1 <= workload.data_capacity());
        prop_assert!(u1 <= workload.avg_update_rate() * w1 + Bytes::from_bytes(1.0));
    }

    #[test]
    fn batch_rate_never_exceeds_update_rate(workload in workload_strategy(), hours in 0.001f64..10_000.0) {
        let rate = workload.batch_update_rate(TimeDelta::from_hours(hours));
        prop_assert!(rate <= workload.avg_update_rate() * (1.0 + 1e-12));
    }

    #[test]
    fn lag_formulas_are_consistent(params in params_strategy()) {
        prop_assert!(params.transit_lag() <= params.worst_own_lag());
        prop_assert!(params.worst_own_lag().approx_eq(
            params.transit_lag() + params.accumulation_window(), 1e-12));
        prop_assert!(params.retention_span() <= params.retention_window());
        prop_assert!(params.retention_span().value() >= 0.0);
    }

    #[test]
    fn worst_lag_monotone_in_every_window(
        acc in 1.0f64..200.0, hold in 0.0f64..50.0, prop_frac in 0.0f64..1.0, delta in 0.1f64..20.0,
    ) {
        let build = |acc: f64, hold: f64| {
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(acc))
                .propagation_window(TimeDelta::from_hours(acc * prop_frac))
                .hold_window(TimeDelta::from_hours(hold))
                .retention_count(3)
                .build()
                .unwrap()
        };
        let base = build(acc, hold);
        prop_assert!(build(acc + delta, hold).worst_own_lag() >= base.worst_own_lag());
        prop_assert!(build(acc, hold + delta).worst_own_lag() >= base.worst_own_lag());
    }

    #[test]
    fn baseline_loss_is_monotone_in_target_age_within_a_level(age_hours in 0.0f64..12.0) {
        // While the target stays ahead of the split mirror's freshest
        // guaranteed RP, loss shrinks as the target moves back in time.
        let design = ssdep_core::presets::baseline_design();
        let loss_at = |age: f64| {
            let target = if age == 0.0 {
                RecoveryTarget::Now
            } else {
                RecoveryTarget::Before { age: TimeDelta::from_hours(age) }
            };
            let scenario = FailureScenario::new(
                FailureScope::DataObject { size: Bytes::from_mib(1.0) },
                target,
            );
            analysis::data_loss(&design, &scenario).unwrap().worst_loss
        };
        let fresh = loss_at(age_hours * 0.5);
        let older = loss_at(age_hours);
        prop_assert!(older <= fresh + TimeDelta::from_secs(1e-6));
    }

    #[test]
    fn recovery_time_is_monotone_in_restore_bytes(gib in 1.0f64..5000.0) {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let small = analysis::recovery_with_bytes(
            &design, &demands, &scenario, 2, Bytes::from_gib(gib)).unwrap();
        let large = analysis::recovery_with_bytes(
            &design, &demands, &scenario, 2, Bytes::from_gib(gib * 2.0)).unwrap();
        prop_assert!(large.total_time >= small.total_time);
    }

    #[test]
    fn penalties_scale_linearly_with_rates(multiplier in 0.0f64..10.0) {
        use ssdep_core::requirements::BusinessRequirements;
        use ssdep_core::units::MoneyRate;
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let reqs = |rate: f64| {
            BusinessRequirements::builder()
                .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(rate))
                .loss_penalty_rate(MoneyRate::from_dollars_per_hour(rate))
                .build()
                .unwrap()
        };
        let base = analysis::evaluate(&design, &workload, &reqs(1000.0), &scenario).unwrap();
        let scaled =
            analysis::evaluate(&design, &workload, &reqs(1000.0 * multiplier), &scenario).unwrap();
        prop_assert!(scaled
            .cost
            .total_penalties()
            .approx_eq(base.cost.total_penalties() * multiplier, 1e-9));
        // Outlays are independent of penalty rates.
        prop_assert_eq!(scaled.cost.total_outlays, base.cost.total_outlays);
    }

    #[test]
    fn guaranteed_ranges_nest_down_the_hierarchy(_seed in 0u8..1) {
        for design in ssdep_core::presets::what_if_designs() {
            let ranges = analysis::level_ranges(&design);
            for pair in ranges.windows(2) {
                prop_assert!(pair[1].min_lag >= pair[0].min_lag);
                prop_assert!(pair[1].max_lag >= pair[0].max_lag);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault-injection invariants. Each case runs full simulations, so the
// case count stays low.

use ssdep_sim::{FaultKind, FaultPlan, FaultTarget, InjectedFault, SimConfig, Simulation};

/// Runs the baseline design for `weeks` under `faults`.
// A panic in this test helper is the failure report itself.
#[allow(clippy::expect_used)]
fn simulate(weeks: f64, faults: FaultPlan) -> ssdep_sim::SimReport {
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let config = SimConfig::new(TimeDelta::from_weeks(weeks)).with_faults(faults);
    Simulation::new(&design, &workload, config)
        .expect("baseline design simulates")
        .run()
}

#[test]
fn an_empty_fault_plan_is_exactly_the_fault_free_run() {
    for weeks in [6.0, 13.0] {
        let clean = simulate(weeks, FaultPlan::new());
        let empty = simulate(
            weeks,
            FaultPlan::new().with_fault(InjectedFault {
                // A fault far beyond the horizon resolves but never fires.
                at: TimeDelta::from_weeks(weeks * 10.0),
                target: FaultTarget::Level { index: 1 },
                kind: FaultKind::PermanentDestruction,
            }),
        );
        assert_eq!(clean.rps(), empty.rps());
        assert!(empty.disruptions().is_empty());
        let no_plan = simulate(weeks, FaultPlan::new());
        assert_eq!(clean, no_plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // A transient outage that begins and repairs strictly inside one of
    // the split mirror's 12-hour accumulation gaps blocks nothing: no
    // capture, completion, or downstream pull falls inside it, so the
    // produced retrieval points — and therefore any observed loss — are
    // identical to the fault-free run.
    #[test]
    fn gap_sized_transient_outages_change_nothing(
        window in 2u32..150,
        offset_frac in 0.01f64..0.9,
        duration_frac in 0.05f64..0.95,
    ) {
        let gap_start = f64::from(window) * 12.0;
        let offset = 0.1 + offset_frac * 11.0;
        let duration = duration_frac * (11.8 - offset).max(0.01);
        let plan = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_hours(gap_start + offset),
            target: FaultTarget::Level { index: 1 },
            kind: FaultKind::TransientOutage {
                repair_after: TimeDelta::from_hours(duration),
            },
        });
        let clean = simulate(12.0, FaultPlan::new());
        let faulted = simulate(12.0, plan);
        prop_assert_eq!(clean.rps(), faulted.rps());
        prop_assert!(faulted.disruptions().is_empty(),
            "{:?}", faulted.disruptions());
    }

    // Destroying a level can only ever make things worse: at every probe
    // instant, every level's restorable content is no fresher than in
    // the fault-free run, and nothing becomes restorable that wasn't.
    #[test]
    fn permanent_destruction_is_never_better_than_fault_free(
        level in 0usize..4,
        destroy_weeks in 2.0f64..10.0,
    ) {
        let plan = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(destroy_weeks),
            target: FaultTarget::Level { index: level },
            kind: FaultKind::PermanentDestruction,
        });
        let clean = simulate(12.0, FaultPlan::new());
        let faulted = simulate(12.0, plan);
        for probe_level in 0..4 {
            for hours in [1.0, 24.0 * 7.0, destroy_weeks * 168.0 - 1.0,
                          destroy_weeks * 168.0 + 1.0, 11.0 * 168.0] {
                let t = TimeDelta::from_hours(hours).as_secs();
                let base = clean.restorable_at(probe_level, t, 0.0);
                let degraded = faulted.restorable_at(probe_level, t, 0.0);
                match (base, degraded) {
                    (Some((b, _)), Some((d, _))) => prop_assert!(
                        d <= b + 1e-9,
                        "level {probe_level} at {hours} hr: {d} fresher than {b}"
                    ),
                    (None, Some(_)) => prop_assert!(
                        false,
                        "level {probe_level} at {hours} hr restorable only under faults"
                    ),
                    _ => {}
                }
            }
        }
    }
}

//! Property-based tests over the framework's core invariants, driven by
//! randomly generated workloads, protection parameters, and failure
//! targets.

use proptest::prelude::*;
use ssdep_core::analysis;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::protection::ProtectionParams;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;

/// A strategy for physically consistent workloads.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        10.0f64..5000.0,   // GiB
        64.0f64..8192.0,   // access KiB/s
        0.1f64..1.0,       // update fraction of access
        1.0f64..20.0,      // burst multiplier
        0.2f64..1.0,       // unique fraction at one minute
        0.05f64..1.0,      // long-window fraction of the short one
    )
        .prop_map(|(gib, access, update_frac, burst, short_unique, long_ratio)| {
            let update = access * update_frac;
            let short_rate = update * short_unique;
            let long_rate = short_rate * long_ratio;
            // Bytes monotonicity needs rate(12 h) × 12 h ≥ rate(1 min) × 1 min,
            // which holds because long_ratio ≥ 0.05 ≫ 1/720.
            Workload::builder("prop")
                .data_capacity(Bytes::from_gib(gib))
                .avg_access_rate(Bandwidth::from_kib_per_sec(access))
                .avg_update_rate(Bandwidth::from_kib_per_sec(update))
                .burst_multiplier(burst)
                .batch_rate(TimeDelta::from_minutes(1.0), Bandwidth::from_kib_per_sec(short_rate))
                .batch_rate(TimeDelta::from_hours(12.0), Bandwidth::from_kib_per_sec(long_rate))
                .build()
                .expect("strategy produces valid workloads")
        })
}

/// A strategy for valid protection parameter sets.
fn params_strategy() -> impl Strategy<Value = ProtectionParams> {
    (
        1.0f64..400.0, // accW hours
        0.0f64..1.0,   // propW as a fraction of accW
        0.0f64..100.0, // holdW hours
        1u32..40,      // retCnt
    )
        .prop_map(|(acc, prop_frac, hold, ret)| {
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(acc))
                .propagation_window(TimeDelta::from_hours(acc * prop_frac))
                .hold_window(TimeDelta::from_hours(hold))
                .retention_count(ret)
                .build()
                .expect("strategy produces valid params")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unique_bytes_monotone_and_bounded(workload in workload_strategy(), hours in 0.01f64..10_000.0) {
        let w1 = TimeDelta::from_hours(hours);
        let w2 = TimeDelta::from_hours(hours * 1.5);
        let u1 = workload.unique_bytes(w1);
        let u2 = workload.unique_bytes(w2);
        prop_assert!(u2 >= u1, "unique bytes decreased: {u1} -> {u2}");
        prop_assert!(u1 <= workload.data_capacity());
        prop_assert!(u1 <= workload.avg_update_rate() * w1 + Bytes::from_bytes(1.0));
    }

    #[test]
    fn batch_rate_never_exceeds_update_rate(workload in workload_strategy(), hours in 0.001f64..10_000.0) {
        let rate = workload.batch_update_rate(TimeDelta::from_hours(hours));
        prop_assert!(rate <= workload.avg_update_rate() * (1.0 + 1e-12));
    }

    #[test]
    fn lag_formulas_are_consistent(params in params_strategy()) {
        prop_assert!(params.transit_lag() <= params.worst_own_lag());
        prop_assert!(params.worst_own_lag().approx_eq(
            params.transit_lag() + params.accumulation_window(), 1e-12));
        prop_assert!(params.retention_span() <= params.retention_window());
        prop_assert!(params.retention_span().value() >= 0.0);
    }

    #[test]
    fn worst_lag_monotone_in_every_window(
        acc in 1.0f64..200.0, hold in 0.0f64..50.0, prop_frac in 0.0f64..1.0, delta in 0.1f64..20.0,
    ) {
        let build = |acc: f64, hold: f64| {
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(acc))
                .propagation_window(TimeDelta::from_hours(acc * prop_frac))
                .hold_window(TimeDelta::from_hours(hold))
                .retention_count(3)
                .build()
                .unwrap()
        };
        let base = build(acc, hold);
        prop_assert!(build(acc + delta, hold).worst_own_lag() >= base.worst_own_lag());
        prop_assert!(build(acc, hold + delta).worst_own_lag() >= base.worst_own_lag());
    }

    #[test]
    fn baseline_loss_is_monotone_in_target_age_within_a_level(age_hours in 0.0f64..12.0) {
        // While the target stays ahead of the split mirror's freshest
        // guaranteed RP, loss shrinks as the target moves back in time.
        let design = ssdep_core::presets::baseline_design();
        let loss_at = |age: f64| {
            let target = if age == 0.0 {
                RecoveryTarget::Now
            } else {
                RecoveryTarget::Before { age: TimeDelta::from_hours(age) }
            };
            let scenario = FailureScenario::new(
                FailureScope::DataObject { size: Bytes::from_mib(1.0) },
                target,
            );
            analysis::data_loss(&design, &scenario).unwrap().worst_loss
        };
        let fresh = loss_at(age_hours * 0.5);
        let older = loss_at(age_hours);
        prop_assert!(older <= fresh + TimeDelta::from_secs(1e-6));
    }

    #[test]
    fn recovery_time_is_monotone_in_restore_bytes(gib in 1.0f64..5000.0) {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let small = analysis::recovery_with_bytes(
            &design, &demands, &scenario, 2, Bytes::from_gib(gib)).unwrap();
        let large = analysis::recovery_with_bytes(
            &design, &demands, &scenario, 2, Bytes::from_gib(gib * 2.0)).unwrap();
        prop_assert!(large.total_time >= small.total_time);
    }

    #[test]
    fn penalties_scale_linearly_with_rates(multiplier in 0.0f64..10.0) {
        use ssdep_core::requirements::BusinessRequirements;
        use ssdep_core::units::MoneyRate;
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let reqs = |rate: f64| {
            BusinessRequirements::builder()
                .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(rate))
                .loss_penalty_rate(MoneyRate::from_dollars_per_hour(rate))
                .build()
                .unwrap()
        };
        let base = analysis::evaluate(&design, &workload, &reqs(1000.0), &scenario).unwrap();
        let scaled =
            analysis::evaluate(&design, &workload, &reqs(1000.0 * multiplier), &scenario).unwrap();
        prop_assert!(scaled
            .cost
            .total_penalties()
            .approx_eq(base.cost.total_penalties() * multiplier, 1e-9));
        // Outlays are independent of penalty rates.
        prop_assert_eq!(scaled.cost.total_outlays, base.cost.total_outlays);
    }

    #[test]
    fn guaranteed_ranges_nest_down_the_hierarchy(_seed in 0u8..1) {
        for design in ssdep_core::presets::what_if_designs() {
            let ranges = analysis::level_ranges(&design);
            for pair in ranges.windows(2) {
                prop_assert!(pair[1].min_lag >= pair[0].min_lag);
                prop_assert!(pair[1].max_lag >= pair[0].max_lag);
            }
        }
    }
}

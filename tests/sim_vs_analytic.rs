//! Cross-validation: the discrete-event simulator's observed outcomes
//! must respect (and approach) the analytic worst cases, for every
//! case-study design and failure scope.

use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_sim::validate::{sample_grid, validate_scenario};
use ssdep_sim::{SimConfig, Simulation};

// A panic in this test helper is the failure report itself.
#[allow(clippy::unwrap_used)]
fn validate(
    design: &ssdep_core::hierarchy::StorageDesign,
    scenario: FailureScenario,
    weeks: f64,
    samples: usize,
) -> ssdep_sim::ValidationOutcome {
    let workload = ssdep_core::presets::cello_workload();
    let demands = design.demands(&workload).unwrap();
    let horizon = TimeDelta::from_weeks(weeks);
    let report = Simulation::new(design, &workload, SimConfig::new(horizon))
        .unwrap()
        .run();
    let grid = sample_grid(TimeDelta::from_weeks(weeks / 2.0), horizon, samples);
    validate_scenario(design, &workload, &demands, &report, &scenario, &grid).unwrap()
}

#[test]
fn baseline_bounds_hold_for_all_three_scopes() {
    let design = ssdep_core::presets::baseline_design();
    let scenarios = [
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ];
    for scenario in scenarios {
        let outcome = validate(&design, scenario.clone(), 30.0, 48);
        assert!(outcome.bounds_hold(), "{scenario}: {outcome:?}");
        assert!(
            outcome.evaluated_samples > 0,
            "{scenario}: nothing evaluated"
        );
    }
}

#[test]
fn analytic_loss_bound_is_tight_for_array_failures() {
    let design = ssdep_core::presets::baseline_design();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    // A dense grid catches the instants just before a weekly backup
    // completes, where staleness peaks near the 217-hour bound.
    let outcome = validate(&design, scenario, 24.0, 192);
    assert!(outcome.bounds_hold());
    assert!(
        outcome.loss_tightness() > 0.85,
        "bound should be nearly attained, tightness {:.2}",
        outcome.loss_tightness()
    );
}

#[test]
fn observed_recovery_never_exceeds_analytic_for_what_ifs() {
    for design in ssdep_core::presets::what_if_designs() {
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let outcome = validate(&design, scenario, 18.0, 24);
        assert!(
            outcome.recovery_violations == 0,
            "{}: {outcome:?}",
            design.name()
        );
        assert!(
            outcome.observed_max_recovery <= outcome.analytic_recovery + TimeDelta::from_secs(1.0)
        );
    }
}

#[test]
fn weekly_vault_design_improves_observed_site_loss_too() {
    // The Table 7 improvement must show up in *observed* (simulated)
    // losses, not only in the analytic worst cases.
    let baseline = ssdep_core::presets::baseline_design();
    let weekly = ssdep_core::presets::weekly_vault_design();
    let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    let baseline_outcome = validate(&baseline, scenario.clone(), 40.0, 48);
    let weekly_outcome = validate(&weekly, scenario, 40.0, 48);
    assert!(baseline_outcome.bounds_hold());
    assert!(weekly_outcome.bounds_hold());
    assert!(
        weekly_outcome.observed_max_loss < baseline_outcome.observed_max_loss / 3.0,
        "weekly {} vs baseline {}",
        weekly_outcome.observed_max_loss,
        baseline_outcome.observed_max_loss
    );
}

#[test]
fn differential_incrementals_respect_bounds_and_assemble_chains() {
    // A custom design exercising the *differential* incremental path in
    // both the analytic models and the simulator's restore-set logic.
    use ssdep_core::hierarchy::{Level, StorageDesign};
    use ssdep_core::protection::{
        Backup, IncrementalMode, IncrementalPolicy, PrimaryCopy, ProtectionParams, SplitMirror,
        Technique,
    };

    let mut builder = StorageDesign::builder("differential backup");
    let array = builder
        .add_device(ssdep_core::presets::primary_array_spec())
        .unwrap();
    let tape = builder
        .add_device(ssdep_core::presets::tape_library_spec())
        .unwrap();
    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    builder.add_level(Level::new(
        "split mirror",
        Technique::SplitMirror(SplitMirror::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(12.0))
                .propagation_window(TimeDelta::ZERO)
                .retention_count(4)
                .build()
                .unwrap(),
        )),
        array,
    ));
    // A six-day cycle: the full plus five daily differentials divide it
    // into 24-hour capture slots, keeping the schedule phase-aligned
    // with the 12-hour mirror splits (the paper's composition formulas
    // assume aligned schedules; see docs/MODELING.md §5).
    let full = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(48.0))
        .propagation_window(TimeDelta::from_hours(24.0))
        .hold_window(TimeDelta::from_hours(1.0))
        .cycle_period(TimeDelta::from_hours(144.0))
        .retention_count(4)
        .build()
        .unwrap();
    let backup = Backup::with_incrementals(
        full,
        IncrementalPolicy {
            mode: IncrementalMode::Differential,
            accumulation_window: TimeDelta::from_hours(24.0),
            propagation_window: TimeDelta::from_hours(6.0),
            hold_window: TimeDelta::from_hours(1.0),
            count: 5,
        },
    )
    .unwrap();
    builder.add_level(Level::new("tape backup", Technique::Backup(backup), tape));
    builder.recovery_site(ssdep_core::hierarchy::RecoverySite {
        location: ssdep_core::failure::Location::new(
            ssdep_core::presets::REMOTE_LOCATION.0,
            ssdep_core::presets::REMOTE_LOCATION.1,
            ssdep_core::presets::REMOTE_LOCATION.2,
        ),
        provisioning_time: TimeDelta::from_hours(9.0),
        cost_factor: 0.2,
    });
    let design = builder.build().unwrap();

    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let outcome = validate(&design, scenario.clone(), 12.0, 48);
    assert!(outcome.bounds_hold(), "{outcome:?}");
    assert!(outcome.evaluated_samples > 0);

    // The simulated restore must assemble full + differential chains
    // larger than the dataset at some sampled instants.
    let workload = ssdep_core::presets::cello_workload();
    let demands = design.demands(&workload).unwrap();
    let report = Simulation::new(
        &design,
        &workload,
        SimConfig::new(TimeDelta::from_weeks(12.0)),
    )
    .unwrap()
    .run();
    let mut saw_chain = false;
    for day in 60..80 {
        let t = day as f64 * 86_400.0;
        if let Ok(observed) = ssdep_sim::recovery::simulate_failure(
            &design, &workload, &demands, &report, &scenario, t,
        ) {
            if observed.restore_bytes > workload.data_capacity() {
                saw_chain = true;
            }
        }
    }
    assert!(saw_chain, "some instants must restore full + differentials");
}

#[test]
fn trace_driven_simulation_also_respects_bounds() {
    // Drive RP sizes from a synthetic cello-like trace rather than the
    // statistical curve: the bound logic is size-independent, but this
    // exercises the full ssdep-workload + ssdep-sim pipeline.
    let workload = ssdep_core::presets::cello_workload();
    let design = ssdep_core::presets::baseline_design();
    let demands = design.demands(&workload).unwrap();
    let trace = ssdep_workload::cello::cello_generator(TimeDelta::from_days(3.0), 11).generate();
    let horizon = TimeDelta::from_weeks(16.0);
    let report = Simulation::new(
        &design,
        &workload,
        SimConfig::new(horizon).with_trace(trace),
    )
    .unwrap()
    .run();
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let grid = sample_grid(TimeDelta::from_weeks(8.0), horizon, 32);
    let outcome =
        validate_scenario(&design, &workload, &demands, &report, &scenario, &grid).unwrap();
    assert!(outcome.bounds_hold(), "{outcome:?}");
    assert!(outcome.evaluated_samples > 0);
}

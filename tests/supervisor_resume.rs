//! Crash-resume behaviour of the evaluation supervisor, end to end:
//! a search that is killed partway through and resumed from its
//! checkpoint journal must reproduce the uninterrupted run bit for bit,
//! no matter where the kill landed — including mid-journal-line.

use proptest::prelude::*;
use ssdep_opt::search::{paper_scenarios, supervised_exhaustive};
use ssdep_opt::space::{Candidate, DesignSpace};
use ssdep_opt::{Supervisor, SupervisorConfig};
use std::path::{Path, PathBuf};

fn fixture() -> (
    ssdep_core::workload::Workload,
    ssdep_core::requirements::BusinessRequirements,
    Vec<ssdep_core::analysis::WeightedScenario>,
) {
    (
        ssdep_core::presets::cello_workload(),
        ssdep_core::presets::paper_requirements(),
        paper_scenarios(),
    )
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssdep-resume-{name}-{}.jsonl", std::process::id()))
}

fn config(checkpoint: &Path, resume: Option<&Path>) -> SupervisorConfig {
    SupervisorConfig {
        checkpoint: Some(checkpoint.to_path_buf()),
        resume: resume.map(Path::to_path_buf),
        // Every entry durable immediately: the tests slice the journal
        // at arbitrary points and need all lines present.
        sync_every: 1,
        ..SupervisorConfig::default()
    }
}

/// The ranking as comparable (label, cost) pairs.
fn ranking(result: &ssdep_opt::SearchResult) -> Vec<(String, String)> {
    result
        .ranked
        .iter()
        .map(|o| (o.label.clone(), o.expected_total.to_string()))
        .collect()
}

/// The cost/risk frontier as comparable labels.
fn frontier(result: &ssdep_opt::SearchResult) -> Vec<String> {
    ssdep_opt::pareto::cost_risk_front(&result.ranked)
        .iter()
        .map(|o| o.label.clone())
        .collect()
}

#[test]
fn interrupted_search_resumes_with_identical_frontiers() {
    let (workload, requirements, scenarios) = fixture();
    let space = DesignSpace::minimal();
    let candidates: Vec<Candidate> = space.candidates().collect();

    // The uninterrupted run: the ground truth.
    let truth_journal = temp("truth");
    std::fs::remove_file(&truth_journal).ok();
    let truth = supervised_exhaustive(
        &space,
        &workload,
        &requirements,
        &scenarios,
        &Supervisor::new(config(&truth_journal, None)),
    )
    .unwrap();
    assert!(truth.provenance.is_complete());

    // "Crash" partway: a process evaluates only the first seven
    // candidates before dying — its journal holds exactly that prefix.
    let crashed_journal = temp("crashed");
    std::fs::remove_file(&crashed_journal).ok();
    let prefix = &candidates[..7];
    let supervisor = Supervisor::new(config(&crashed_journal, None));
    let partial = supervisor
        .run(prefix, {
            let workload = workload.clone();
            let requirements = requirements.clone();
            let scenarios = scenarios.clone();
            move |candidate: &Candidate| {
                ssdep_opt::search::evaluate_candidate(
                    candidate,
                    &workload,
                    &requirements,
                    &scenarios,
                )
                .map(ssdep_opt::search::SearchOutcome::Evaluated)
                .or_else(|e| {
                    Ok(ssdep_opt::search::SearchOutcome::Infeasible {
                        label: candidate.label(),
                        reason: e.to_string(),
                    })
                })
            }
        })
        .unwrap();
    assert_eq!(partial.provenance.evaluated, 7);

    // Resume over the full space from the crashed journal.
    let resumed = supervised_exhaustive(
        &space,
        &workload,
        &requirements,
        &scenarios,
        &Supervisor::new(config(&crashed_journal, Some(&crashed_journal))),
    )
    .unwrap();
    assert_eq!(resumed.provenance.resumed, 7, "the prefix must replay");
    assert_eq!(resumed.provenance.evaluated, candidates.len() - 7);
    assert_eq!(ranking(&resumed.result), ranking(&truth.result));
    assert_eq!(frontier(&resumed.result), frontier(&truth.result));

    std::fs::remove_file(&truth_journal).ok();
    std::fs::remove_file(&crashed_journal).ok();
}

#[test]
fn poisoned_candidate_is_quarantined_and_survivors_are_ranked() {
    let (workload, requirements, scenarios) = fixture();
    let space = DesignSpace::minimal();
    let candidates: Vec<Candidate> = space.candidates().collect();
    let poison = candidates[3];

    let run = Supervisor::default()
        .run(&candidates, {
            let workload = workload.clone();
            let requirements = requirements.clone();
            let scenarios = scenarios.clone();
            move |candidate: &Candidate| {
                assert!(*candidate != poison, "poisoned evaluation");
                ssdep_opt::search::evaluate_candidate(
                    candidate,
                    &workload,
                    &requirements,
                    &scenarios,
                )
                .map(ssdep_opt::search::SearchOutcome::Evaluated)
                .or_else(|e| {
                    Ok(ssdep_opt::search::SearchOutcome::Infeasible {
                        label: candidate.label(),
                        reason: e.to_string(),
                    })
                })
            }
        })
        .unwrap();

    assert_eq!(run.failed.len(), 1, "exactly the poison is quarantined");
    assert_eq!(run.failed[0].candidate, poison);
    assert_eq!(run.failed[0].kind, ssdep_opt::FailureKind::Panicked);
    assert!(run.failed[0].error.contains("poisoned evaluation"));
    assert_eq!(run.completed.len(), candidates.len() - 1);
    assert!(!run.provenance.is_complete());
    assert_eq!(run.provenance.completed(), candidates.len() - 1);
}

#[test]
fn resumed_runs_replay_without_re_preparing() {
    let (workload, requirements, scenarios) = fixture();
    let space = DesignSpace::minimal();
    let journal = temp("no-reprepare");
    std::fs::remove_file(&journal).ok();
    let full = supervised_exhaustive(
        &space,
        &workload,
        &requirements,
        &scenarios,
        &Supervisor::new(config(&journal, None)),
    )
    .unwrap();
    assert!(full.provenance.is_complete());

    // Resume with a fresh supervisor (and so a fresh, empty staged
    // engine): every outcome replays from the journal verbatim, and the
    // evaluation pipeline — including its preparation stage — never runs.
    let supervisor = Supervisor::new(config(&journal, Some(&journal)));
    let resumed =
        supervised_exhaustive(&space, &workload, &requirements, &scenarios, &supervisor).unwrap();
    assert_eq!(resumed.provenance.evaluated, 0, "nothing re-evaluates");
    assert_eq!(resumed.provenance.resumed, full.provenance.total);
    assert_eq!(
        resumed.provenance.retries, 0,
        "attempts stay zero on replay"
    );
    assert_eq!(resumed.provenance.cache_hits, 0);
    assert_eq!(
        supervisor.engine().cache_misses(),
        0,
        "replay must not prepare any design"
    );
    assert_eq!(supervisor.engine().cached_designs(), 0);

    // The replayed outcomes are bit-for-bit the originals.
    assert_eq!(
        serde_json::to_string(&resumed.result.ranked).unwrap(),
        serde_json::to_string(&full.result.ranked).unwrap(),
    );
    assert_eq!(frontier(&resumed.result), frontier(&full.result));
    std::fs::remove_file(&journal).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Killing the process at ANY byte of the journal — including in the
    /// middle of a line — and resuming reproduces the uninterrupted
    /// outcomes exactly: full lines before the cut replay, a torn tail
    /// is dropped and re-evaluated.
    #[test]
    fn resume_after_truncation_at_any_offset_reproduces_the_run(cut_fraction in 0.0f64..1.0) {
        let (workload, requirements, scenarios) = fixture();
        let space = DesignSpace::minimal();

        let truth_journal = temp("prop-truth");
        std::fs::remove_file(&truth_journal).ok();
        let truth = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config(&truth_journal, None)),
        )
        .unwrap();
        let bytes = std::fs::read(&truth_journal).unwrap();
        std::fs::remove_file(&truth_journal).ok();

        // Truncate the journal at an arbitrary byte offset.
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let full_lines_kept =
            bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        let truncated_journal = temp("prop-truncated");
        std::fs::write(&truncated_journal, &bytes[..cut]).unwrap();

        let resumed = supervised_exhaustive(
            &space,
            &workload,
            &requirements,
            &scenarios,
            &Supervisor::new(config(&truncated_journal, Some(&truncated_journal))),
        )
        .unwrap();
        std::fs::remove_file(&truncated_journal).ok();

        prop_assert_eq!(resumed.provenance.resumed, full_lines_kept);
        prop_assert_eq!(
            resumed.provenance.evaluated,
            truth.provenance.total - full_lines_kept
        );
        prop_assert_eq!(ranking(&resumed.result), ranking(&truth.result));
        prop_assert_eq!(frontier(&resumed.result), frontier(&truth.result));
    }
}

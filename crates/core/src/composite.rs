//! Composite failure scenarios: a scenario *algebra* over the paper's
//! single-fault [`FailureScenario`].
//!
//! The paper evaluates one hypothesized failure at a time, but real
//! dependability incidents compose: a second fault strikes while
//! recovery from the first is still in progress, a regional disaster
//! takes out nominally independent sites together, or a human error
//! propagates through every synchronous mirror before anyone notices.
//! A [`CompositeScenario`] describes such an incident declaratively and
//! *lowers* to the single-fault vocabulary the analyses already speak:
//! a base [`FailureScenario`] (whose `degraded_levels` carry the
//! redundancy consumed by the other faults), an optional *prior*
//! scenario whose recovery precedes the main one, and a recovery-time
//! inflation factor for correlated logistics.
//!
//! Lowering is deterministic and total over valid inputs; invalid
//! composites fail with [`Error::InvalidParameter`] whose dotted
//! parameter paths (`composite.*`) map onto the `D07x` preflight
//! diagnostics in [`crate::diagnose`].

use crate::analysis::{
    data_loss, evaluate_lenient, recovery, Evaluation, LenientEvaluation, PreparedDesign,
    RecoveryReport, Section, SectionCaveat,
};
use crate::error::Error;
use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Bytes, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A composite failure scenario, lowered onto the single-fault analyses
/// by [`CompositeScenario::lower`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CompositeScenario {
    /// A plain single-fault scenario, embedded so catalogs can mix
    /// simple and composite entries.
    Single {
        /// The wrapped scenario.
        scenario: FailureScenario,
    },
    /// Correlated faults striking together: the widest scope sets the
    /// hardware damage, narrower scopes consume redundancy as degraded
    /// levels, and the correlation factor inflates the recovery time
    /// (shared causes also entangle the recovery logistics).
    Correlated {
        /// The co-occurring failure scopes (at least two).
        scopes: Vec<FailureScope>,
        /// Coupling strength in `(0, 1]`: recovery time is inflated by
        /// `1 + correlation`.
        correlation: f64,
        /// The point in time restoration should reach.
        target: RecoveryTarget,
    },
    /// A second fault arriving while recovery from the first is still in
    /// progress: the second fault is evaluated against the configuration
    /// the first fault already degraded, and the first fault's recovery
    /// time precedes the second's.
    SecondFault {
        /// The fault recovery was already underway for.
        first: FailureScope,
        /// The fault that strikes mid-recovery.
        second: FailureScope,
        /// The point in time the final restoration should reach.
        target: RecoveryTarget,
    },
    /// An accidental delete/overwrite: no hardware fails, but the
    /// corruption propagates through every continuously synchronized
    /// mirror and is stopped only by point-in-time retention, so
    /// recovery must reach back `age` before the error.
    HumanError {
        /// The amount of corrupted data to roll back.
        size: Bytes,
        /// How far before the error the last good version lies.
        age: TimeDelta,
    },
}

/// The result of lowering a [`CompositeScenario`] onto the single-fault
/// vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredScenario {
    /// The single-fault scenario the analyses evaluate.
    pub scenario: FailureScenario,
    /// A scenario whose recovery precedes `scenario`'s (second-fault
    /// composites only).
    pub prior: Option<FailureScenario>,
    /// Multiplier on `scenario`'s recovery time (correlated logistics);
    /// `1.0` when nothing inflates it.
    pub recovery_inflation: f64,
}

/// Severity order of failure scopes, widest last.
fn scope_rank(scope: &FailureScope) -> u8 {
    match scope {
        FailureScope::DataObject { .. } => 0,
        FailureScope::ProtectionLevel { .. } => 1,
        FailureScope::Array => 2,
        FailureScope::Building => 3,
        FailureScope::Site => 4,
        FailureScope::Region => 5,
    }
}

/// The hierarchy levels whose hosts `scope` destroys.
fn destroyed_levels(design: &StorageDesign, scope: &FailureScope) -> Vec<usize> {
    (0..design.levels().len())
        .filter(|&level| design.level_destroyed(level, scope))
        .collect()
}

impl CompositeScenario {
    /// Lowers the composite onto the single-fault vocabulary for
    /// `design`: the base scenario (with redundancy consumed by the
    /// other faults marked degraded), an optional prior recovery, and
    /// the recovery-time inflation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] with a `composite.*`
    /// parameter path when the composite is self-contradictory: a
    /// correlation outside `(0, 1]`, fewer than two correlated scopes,
    /// or a human-error rollback with no positive age or size.
    pub fn lower(&self, design: &StorageDesign) -> Result<LoweredScenario, Error> {
        match self {
            CompositeScenario::Single { scenario } => Ok(LoweredScenario {
                scenario: scenario.clone(),
                prior: None,
                recovery_inflation: 1.0,
            }),
            CompositeScenario::Correlated {
                scopes,
                correlation,
                target,
            } => {
                if !(correlation.is_finite() && *correlation > 0.0 && *correlation <= 1.0) {
                    return Err(Error::invalid(
                        "composite.correlation",
                        "must lie in (0, 1]: 0 means independent faults (use \
                         separate scenarios), 1 means a single shared cause",
                    ));
                }
                if scopes.len() < 2 {
                    return Err(Error::invalid(
                        "composite.scopes",
                        "a correlated scenario needs at least two failure scopes",
                    ));
                }
                let mut base = scopes[0].clone();
                for scope in &scopes[1..] {
                    if scope_rank(scope) > scope_rank(&base) {
                        base = scope.clone();
                    }
                }
                let base_destroyed = destroyed_levels(design, &base);
                let mut scenario = FailureScenario::new(base.clone(), *target);
                for scope in scopes {
                    if scope == &base {
                        continue;
                    }
                    for level in destroyed_levels(design, scope) {
                        if !base_destroyed.contains(&level) {
                            scenario = scenario.with_degraded_level(level);
                        }
                    }
                }
                Ok(LoweredScenario {
                    scenario,
                    prior: None,
                    recovery_inflation: 1.0 + correlation,
                })
            }
            CompositeScenario::SecondFault {
                first,
                second,
                target,
            } => {
                let mut scenario = FailureScenario::new(second.clone(), *target);
                for level in destroyed_levels(design, first) {
                    scenario = scenario.with_degraded_level(level);
                }
                Ok(LoweredScenario {
                    scenario,
                    prior: Some(FailureScenario::new(first.clone(), RecoveryTarget::Now)),
                    recovery_inflation: 1.0,
                })
            }
            CompositeScenario::HumanError { size, age } => {
                if !(age.is_finite() && age.value() > 0.0) {
                    return Err(Error::invalid(
                        "composite.humanError.age",
                        "recovering to now would restore the corrupted data; \
                         a positive point-in-time age is required",
                    ));
                }
                if !(size.is_finite() && size.value() > 0.0) {
                    return Err(Error::invalid(
                        "composite.humanError.size",
                        "the corrupted object must have a positive finite size",
                    ));
                }
                let mut scenario = FailureScenario::new(
                    FailureScope::DataObject { size: *size },
                    RecoveryTarget::Before { age: *age },
                );
                // The corruption mirrors faithfully: every continuously
                // synchronized level (no point-in-time schedule) holds
                // the corrupted content too and cannot serve.
                for (index, level) in design.levels().iter().enumerate().skip(1) {
                    if level.technique().params().is_none() {
                        scenario = scenario.with_degraded_level(index);
                    }
                }
                Ok(LoweredScenario {
                    scenario,
                    prior: None,
                    recovery_inflation: 1.0,
                })
            }
        }
    }

    /// A plain scenario standing in for the composite when lowering
    /// fails — used to label quarantined sections and error reports.
    pub fn fallback_scenario(&self) -> FailureScenario {
        match self {
            CompositeScenario::Single { scenario } => scenario.clone(),
            CompositeScenario::Correlated { scopes, target, .. } => FailureScenario::new(
                scopes.first().cloned().unwrap_or(FailureScope::Site),
                *target,
            ),
            CompositeScenario::SecondFault { second, target, .. } => {
                FailureScenario::new(second.clone(), *target)
            }
            CompositeScenario::HumanError { size, age } => FailureScenario::new(
                FailureScope::DataObject { size: *size },
                RecoveryTarget::Before { age: *age },
            ),
        }
    }
}

impl fmt::Display for CompositeScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositeScenario::Single { scenario } => scenario.fmt(f),
            CompositeScenario::Correlated {
                scopes,
                correlation,
                ..
            } => {
                let names: Vec<&str> = scopes.iter().map(FailureScope::name).collect();
                write!(
                    f,
                    "correlated {} failures (correlation {correlation})",
                    names.join("+")
                )
            }
            CompositeScenario::SecondFault { first, second, .. } => {
                write!(f, "{second} failure during recovery from {first} failure")
            }
            CompositeScenario::HumanError { size, age } => {
                write!(
                    f,
                    "human error ({size} corrupted, last good version {age} old)"
                )
            }
        }
    }
}

/// The full analytic outcome of one composite scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeOutcome {
    /// The composite as specified.
    pub composite: CompositeScenario,
    /// The single-fault scenario it lowered to.
    pub scenario: FailureScenario,
    /// The multiplier applied to the main recovery time.
    pub recovery_inflation: f64,
    /// The evaluation of the lowered scenario.
    pub evaluation: Evaluation,
    /// The preceding recovery (second-fault composites only).
    pub prior_recovery: Option<RecoveryReport>,
    /// End-to-end recovery time: the prior recovery (when any) plus the
    /// main recovery scaled by the inflation factor.
    pub total_recovery: TimeDelta,
}

/// Evaluates one composite scenario against a prepared design.
///
/// # Errors
///
/// Propagates lowering errors ([`Error::InvalidParameter`] with a
/// `composite.*` path) and the single-fault evaluation errors of
/// [`PreparedDesign::evaluate_scenario`].
pub fn evaluate_composite(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    composite: &CompositeScenario,
) -> Result<CompositeOutcome, Error> {
    let lowered = composite.lower(prepared.design())?;
    let evaluation = prepared.evaluate_scenario(requirements, &lowered.scenario)?;
    let prior_recovery = match &lowered.prior {
        Some(prior) => {
            let loss = data_loss(prepared.design(), prior)?;
            Some(recovery(
                prepared.design(),
                prepared.workload(),
                prepared.demands(),
                prior,
                loss.source_level,
            )?)
        }
        None => None,
    };
    let prior_time = prior_recovery
        .as_ref()
        .map_or(TimeDelta::ZERO, |r| r.total_time);
    let total_recovery = prior_time + evaluation.recovery.total_time * lowered.recovery_inflation;
    Ok(CompositeOutcome {
        composite: composite.clone(),
        scenario: lowered.scenario,
        recovery_inflation: lowered.recovery_inflation,
        evaluation,
        prior_recovery,
        total_recovery,
    })
}

/// Evaluates a composite leniently: a composite that fails to lower
/// quarantines every section with an `invalid-composite` caveat instead
/// of erroring, and a lowered composite degrades section by section
/// exactly as [`evaluate_lenient`] does — so one unsatisfiable
/// composite cannot poison sibling scenarios in the same request.
pub fn evaluate_composite_lenient(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    composite: &CompositeScenario,
) -> LenientEvaluation {
    match composite.lower(design) {
        Ok(lowered) => evaluate_lenient(design, workload, requirements, &lowered.scenario),
        Err(error) => {
            let reason = error.to_string();
            LenientEvaluation {
                scenario: composite.fallback_scenario(),
                utilization: None,
                loss: None,
                recovery: None,
                cost: None,
                caveats: [
                    Section::Utilization,
                    Section::DataLoss,
                    Section::Recovery,
                    Section::Cost,
                ]
                .into_iter()
                .map(|section| SectionCaveat::new(section, "invalid-composite", reason.clone()))
                .collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::evaluate;

    fn baseline() -> (StorageDesign, Workload, BusinessRequirements) {
        (
            crate::presets::baseline_design(),
            crate::presets::cello_workload(),
            crate::presets::paper_requirements(),
        )
    }

    #[test]
    fn single_lowers_transparently() {
        let (design, _, _) = baseline();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let composite = CompositeScenario::Single {
            scenario: scenario.clone(),
        };
        let lowered = composite.lower(&design).unwrap();
        assert_eq!(lowered.scenario, scenario);
        assert!(lowered.prior.is_none());
        assert_eq!(lowered.recovery_inflation, 1.0);
    }

    #[test]
    fn correlated_inflates_recovery_and_degrades_extra_scopes() {
        let (design, workload, requirements) = baseline();
        let composite = CompositeScenario::Correlated {
            scopes: vec![
                FailureScope::Array,
                FailureScope::ProtectionLevel { level: 2 },
            ],
            correlation: 0.5,
            target: RecoveryTarget::Now,
        };
        let lowered = composite.lower(&design).unwrap();
        // The array failure is the wider scope; the degraded backup
        // level rides along as consumed redundancy.
        assert!(matches!(lowered.scenario.scope, FailureScope::Array));
        assert_eq!(lowered.scenario.degraded_levels, vec![2]);
        assert_eq!(lowered.recovery_inflation, 1.5);

        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let outcome = evaluate_composite(&prepared, &requirements, &composite).unwrap();
        // With the tape backup degraded, the vault serves the restore.
        assert_eq!(
            outcome.evaluation.loss.source_level_name(),
            Some("remote vaulting")
        );
        let base = outcome.evaluation.recovery.total_time;
        assert_eq!(outcome.total_recovery, base * 1.5);
    }

    #[test]
    fn correlated_rejects_bad_correlation_and_single_scope() {
        let (design, _, _) = baseline();
        for correlation in [0.0, -1.0, 1.5, f64::NAN] {
            let composite = CompositeScenario::Correlated {
                scopes: vec![FailureScope::Array, FailureScope::Site],
                correlation,
                target: RecoveryTarget::Now,
            };
            let err = composite.lower(&design).unwrap_err();
            assert!(err.to_string().contains("composite.correlation"), "{err}");
        }
        let short = CompositeScenario::Correlated {
            scopes: vec![FailureScope::Site],
            correlation: 0.5,
            target: RecoveryTarget::Now,
        };
        let err = short.lower(&design).unwrap_err();
        assert!(err.to_string().contains("composite.scopes"), "{err}");
    }

    #[test]
    fn second_fault_recovers_after_the_first() {
        let (design, workload, requirements) = baseline();
        let composite = CompositeScenario::SecondFault {
            first: FailureScope::Array,
            second: FailureScope::Site,
            target: RecoveryTarget::Now,
        };
        let lowered = composite.lower(&design).unwrap();
        assert!(matches!(lowered.scenario.scope, FailureScope::Site));
        // The array fault consumed level 0 and the co-located split
        // mirror before the site went down.
        assert!(lowered.scenario.degraded_levels.contains(&0));
        assert!(lowered.scenario.degraded_levels.contains(&1));
        let prior = lowered.prior.expect("second fault has a prior recovery");
        assert!(matches!(prior.scope, FailureScope::Array));

        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let outcome = evaluate_composite(&prepared, &requirements, &composite).unwrap();
        let prior_time = outcome.prior_recovery.as_ref().unwrap().total_time;
        assert!(prior_time > TimeDelta::ZERO);
        assert_eq!(
            outcome.total_recovery,
            prior_time + outcome.evaluation.recovery.total_time
        );
        // The composite strictly dominates the plain site failure.
        let site = evaluate(
            &design,
            &workload,
            &requirements,
            &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        )
        .unwrap();
        assert!(outcome.total_recovery > site.recovery.total_time);
    }

    #[test]
    fn human_error_is_stopped_by_point_in_time_retention() {
        let (design, workload, requirements) = baseline();
        let composite = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::from_hours(24.0),
        };
        let lowered = composite.lower(&design).unwrap();
        assert!(matches!(
            lowered.scenario.scope,
            FailureScope::DataObject { .. }
        ));
        // The baseline has no continuous mirror, so nothing is degraded
        // and the split mirror serves the rollback.
        assert!(lowered.scenario.degraded_levels.is_empty());
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let outcome = evaluate_composite(&prepared, &requirements, &composite).unwrap();
        assert_eq!(
            outcome.evaluation.loss.source_level_name(),
            Some("split mirror")
        );
    }

    #[test]
    fn human_error_propagates_through_continuous_mirrors() {
        let (_, _, _) = baseline();
        // An async-batch mirror design: level 1 is a *batched* mirror
        // (point in time), so it still serves. Make it synchronous and
        // it must be degraded instead.
        let design = crate::presets::async_batch_mirror_design(1);
        let mut value = serde_json::to_value(&design).unwrap();
        value["levels"][1]["technique"]["RemoteMirror"]["mode"] = serde_json::json!("Synchronous");
        let sync_design: StorageDesign = serde_json::from_value(value).unwrap();
        let composite = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::from_hours(1.0),
        };
        let lowered = composite.lower(&sync_design).unwrap();
        assert_eq!(lowered.scenario.degraded_levels, vec![1]);
    }

    #[test]
    fn human_error_rejects_degenerate_windows() {
        let (design, _, _) = baseline();
        let no_age = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::ZERO,
        };
        let err = no_age.lower(&design).unwrap_err();
        assert!(
            err.to_string().contains("composite.humanError.age"),
            "{err}"
        );
        let no_size = CompositeScenario::HumanError {
            size: Bytes::ZERO,
            age: TimeDelta::from_hours(24.0),
        };
        let err = no_size.lower(&design).unwrap_err();
        assert!(
            err.to_string().contains("composite.humanError.size"),
            "{err}"
        );
    }

    #[test]
    fn lenient_quarantines_unsatisfiable_composites_without_poisoning_siblings() {
        let (design, workload, requirements) = baseline();
        let valid = CompositeScenario::Single {
            scenario: FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        };
        let broken = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::ZERO,
        };
        let results: Vec<LenientEvaluation> = [&valid, &broken]
            .into_iter()
            .map(|c| evaluate_composite_lenient(&design, &workload, &requirements, c))
            .collect();
        assert!(results[0].is_complete(), "{:?}", results[0].caveats);
        assert!(!results[1].is_complete());
        assert_eq!(results[1].caveats.len(), 4);
        assert!(results[1]
            .caveats
            .iter()
            .all(|c| c.code == "invalid-composite"));
        assert!(results[1].utilization.is_none());
    }

    #[test]
    fn lenient_degrades_per_section_for_satisfiable_but_unrecoverable_composites() {
        let design = crate::presets::async_batch_mirror_design(1);
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        // The primary site fails while the only mirror is being rebuilt:
        // no copy survives, but normal-mode utilization is still
        // reportable.
        let composite = CompositeScenario::SecondFault {
            first: FailureScope::ProtectionLevel { level: 1 },
            second: FailureScope::Site,
            target: RecoveryTarget::Now,
        };
        let lenient = evaluate_composite_lenient(&design, &workload, &requirements, &composite);
        assert!(lenient.utilization.is_some());
        assert!(lenient
            .caveats_for(Section::DataLoss)
            .any(|c| c.code == "no-recovery-source"));
    }

    #[test]
    fn displays_name_every_variant() {
        let correlated = CompositeScenario::Correlated {
            scopes: vec![FailureScope::Site, FailureScope::Array],
            correlation: 0.5,
            target: RecoveryTarget::Now,
        };
        assert_eq!(
            correlated.to_string(),
            "correlated site+array failures (correlation 0.5)"
        );
        let second = CompositeScenario::SecondFault {
            first: FailureScope::Array,
            second: FailureScope::Site,
            target: RecoveryTarget::Now,
        };
        assert!(second.to_string().contains("during recovery from"));
        let human = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::from_hours(24.0),
        };
        assert!(human.to_string().contains("human error"));
    }

    #[test]
    fn serde_roundtrip() {
        let composites = vec![
            CompositeScenario::Correlated {
                scopes: vec![FailureScope::Site, FailureScope::Array],
                correlation: 0.5,
                target: RecoveryTarget::Now,
            },
            CompositeScenario::SecondFault {
                first: FailureScope::Array,
                second: FailureScope::Site,
                target: RecoveryTarget::Now,
            },
            CompositeScenario::HumanError {
                size: Bytes::from_mib(1.0),
                age: TimeDelta::from_hours(24.0),
            },
        ];
        let json = serde_json::to_string(&composites).unwrap();
        let back: Vec<CompositeScenario> = serde_json::from_str(&json).unwrap();
        assert_eq!(composites, back);
    }
}

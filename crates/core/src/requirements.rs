//! Business requirement inputs (§3.1.2): penalty rates and recovery
//! objectives.

use crate::error::Error;
use crate::units::{MoneyRate, TimeDelta};
use serde::{Deserialize, Serialize};

/// The business consequences of data unavailability and data loss.
///
/// Penalty rates convert the framework's recovery-time and recent-data-loss
/// outputs into dollars; the optional objectives let tools (and the
/// `ssdep-opt` search) flag designs that miss a recovery time objective
/// (RTO) or recovery point objective (RPO).
///
/// ```
/// use ssdep_core::requirements::BusinessRequirements;
/// use ssdep_core::units::{MoneyRate, TimeDelta};
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let reqs = BusinessRequirements::builder()
///     .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
///     .loss_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
///     .recovery_time_objective(TimeDelta::from_hours(4.0))
///     .build()?;
/// assert!(reqs.recovery_time_objective().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusinessRequirements {
    unavailability_penalty_rate: MoneyRate,
    loss_penalty_rate: MoneyRate,
    recovery_time_objective: Option<TimeDelta>,
    recovery_point_objective: Option<TimeDelta>,
}

impl BusinessRequirements {
    /// Starts building a requirements description.
    pub fn builder() -> BusinessRequirementsBuilder {
        BusinessRequirementsBuilder::default()
    }

    /// Penalty per unit time of data unavailability (`unavailPenRate`).
    pub fn unavailability_penalty_rate(&self) -> MoneyRate {
        self.unavailability_penalty_rate
    }

    /// Penalty per time-unit's worth of lost updates (`lossPenRate`).
    pub fn loss_penalty_rate(&self) -> MoneyRate {
        self.loss_penalty_rate
    }

    /// Acceptable upper bound on recovery time, if one was set.
    pub fn recovery_time_objective(&self) -> Option<TimeDelta> {
        self.recovery_time_objective
    }

    /// Acceptable upper bound on recent data loss, if one was set.
    pub fn recovery_point_objective(&self) -> Option<TimeDelta> {
        self.recovery_point_objective
    }

    /// Whether a recovery outcome meets both objectives (missing
    /// objectives always pass).
    pub fn meets_objectives(&self, recovery_time: TimeDelta, data_loss: TimeDelta) -> bool {
        self.recovery_time_objective
            .is_none_or(|rto| recovery_time <= rto)
            && self
                .recovery_point_objective
                .is_none_or(|rpo| data_loss <= rpo)
    }
}

/// Incremental builder for [`BusinessRequirements`].
#[derive(Debug, Clone, Default)]
pub struct BusinessRequirementsBuilder {
    unavailability_penalty_rate: Option<MoneyRate>,
    loss_penalty_rate: Option<MoneyRate>,
    recovery_time_objective: Option<TimeDelta>,
    recovery_point_objective: Option<TimeDelta>,
}

impl BusinessRequirementsBuilder {
    /// Sets the data-unavailability penalty rate (required).
    pub fn unavailability_penalty_rate(mut self, rate: MoneyRate) -> Self {
        self.unavailability_penalty_rate = Some(rate);
        self
    }

    /// Sets the recent-data-loss penalty rate (required).
    pub fn loss_penalty_rate(mut self, rate: MoneyRate) -> Self {
        self.loss_penalty_rate = Some(rate);
        self
    }

    /// Sets an RTO the design should meet (optional).
    pub fn recovery_time_objective(mut self, rto: TimeDelta) -> Self {
        self.recovery_time_objective = Some(rto);
        self
    }

    /// Sets an RPO the design should meet (optional).
    pub fn recovery_point_objective(mut self, rpo: TimeDelta) -> Self {
        self.recovery_point_objective = Some(rpo);
        self
    }

    /// Validates and builds the [`BusinessRequirements`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if a penalty rate is missing,
    /// negative, or non-finite, or an objective is negative.
    pub fn build(self) -> Result<BusinessRequirements, Error> {
        let unavailability_penalty_rate = self
            .unavailability_penalty_rate
            .ok_or_else(|| Error::invalid("requirements.unavailPenRate", "missing"))?;
        let loss_penalty_rate = self
            .loss_penalty_rate
            .ok_or_else(|| Error::invalid("requirements.lossPenRate", "missing"))?;
        for (name, rate) in [
            ("requirements.unavailPenRate", unavailability_penalty_rate),
            ("requirements.lossPenRate", loss_penalty_rate),
        ] {
            if !(rate.value() >= 0.0 && rate.is_finite()) {
                return Err(Error::invalid(name, "must be non-negative and finite"));
            }
        }
        for (name, objective) in [
            ("requirements.rto", self.recovery_time_objective),
            ("requirements.rpo", self.recovery_point_objective),
        ] {
            if let Some(value) = objective {
                if !(value.value() >= 0.0 && value.is_finite()) {
                    return Err(Error::invalid(name, "must be non-negative and finite"));
                }
            }
        }
        Ok(BusinessRequirements {
            unavailability_penalty_rate,
            loss_penalty_rate,
            recovery_time_objective: self.recovery_time_objective,
            recovery_point_objective: self.recovery_point_objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs() -> BusinessRequirements {
        BusinessRequirements::builder()
            .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
            .loss_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
            .build()
            .unwrap()
    }

    #[test]
    fn objectives_default_to_pass() {
        assert!(reqs().meets_objectives(TimeDelta::from_days(30.0), TimeDelta::from_days(365.0)));
    }

    #[test]
    fn objectives_are_enforced_when_set() {
        let reqs = BusinessRequirements::builder()
            .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(1.0))
            .loss_penalty_rate(MoneyRate::from_dollars_per_hour(1.0))
            .recovery_time_objective(TimeDelta::from_hours(4.0))
            .recovery_point_objective(TimeDelta::from_hours(24.0))
            .build()
            .unwrap();
        assert!(reqs.meets_objectives(TimeDelta::from_hours(4.0), TimeDelta::from_hours(24.0)));
        assert!(!reqs.meets_objectives(TimeDelta::from_hours(4.1), TimeDelta::from_hours(1.0)));
        assert!(!reqs.meets_objectives(TimeDelta::from_hours(1.0), TimeDelta::from_hours(24.1)));
    }

    #[test]
    fn builder_requires_rates() {
        assert!(BusinessRequirements::builder().build().is_err());
    }

    #[test]
    fn builder_rejects_negative_rates() {
        let err = BusinessRequirements::builder()
            .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(-1.0))
            .loss_penalty_rate(MoneyRate::from_dollars_per_hour(1.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unavailPenRate"));
    }

    #[test]
    fn builder_rejects_negative_objectives() {
        let err = BusinessRequirements::builder()
            .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(1.0))
            .loss_penalty_rate(MoneyRate::from_dollars_per_hour(1.0))
            .recovery_time_objective(TimeDelta::from_hours(-1.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rto"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = reqs();
        let json = serde_json::to_string(&r).unwrap();
        let back: BusinessRequirements = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}

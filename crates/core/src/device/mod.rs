//! Hardware device models (§3.2.2): capability, delay, cost, and sparing.
//!
//! Every storage or interconnect device is abstracted into one parameter
//! set: enclosures provide *capacity slots* (disks, tape cartridges) and
//! *bandwidth slots* (disks, tape drives), with optional aggregate
//! enclosure-bandwidth and per-access delay limits, plus a [`CostModel`]
//! and a [`SpareSpec`]. Couriers (physical tape shipment) are modeled as
//! interconnect devices with a large delay and per-shipment cost.

mod cost;
mod kind;
mod spare;

pub use cost::CostModel;
pub use kind::DeviceKind;
pub use spare::SpareSpec;

use crate::error::Error;
use crate::failure::Location;
use crate::units::{Bandwidth, Bytes, TimeDelta, Utilization};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a device within one [`StorageDesign`](crate::hierarchy::StorageDesign).
///
/// Obtained from [`StorageDesign`](crate::hierarchy::StorageDesign) when a
/// device is registered; stable for the lifetime of the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// The device's position in the design's registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// A hardware storage or interconnect device.
///
/// Construct with [`DeviceSpec::builder`]:
///
/// ```
/// use ssdep_core::device::{CostModel, DeviceKind, DeviceSpec, SpareSpec};
/// use ssdep_core::failure::Location;
/// use ssdep_core::units::{Bandwidth, Bytes, Money, TimeDelta};
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let array = DeviceSpec::builder("primary array", DeviceKind::disk_array(2.0))
///     .location(Location::new("us-west", "palo-alto", "bldg-1"))
///     .capacity_slots(256, Bytes::from_gib(73.0))
///     .bandwidth_slots(256, Bandwidth::from_mib_per_sec(25.0))
///     .enclosure_bandwidth(Bandwidth::from_mib_per_sec(512.0))
///     .cost(CostModel::builder().fixed(Money::from_dollars(123_297.0)).build())
///     .spare(SpareSpec::dedicated(TimeDelta::from_secs(60.0), 1.0))
///     .build()?;
/// assert_eq!(array.max_bandwidth(), Some(Bandwidth::from_mib_per_sec(512.0)));
/// // RAID-1 halves the usable capacity.
/// assert_eq!(array.usable_capacity(), Some(Bytes::from_gib(256.0 * 73.0 / 2.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    name: String,
    kind: DeviceKind,
    location: Location,
    capacity_slots: Option<SlotBank<Bytes>>,
    bandwidth_slots: Option<SlotBank<Bandwidth>>,
    enclosure_bandwidth: Option<Bandwidth>,
    access_delay: TimeDelta,
    cost: CostModel,
    spare: SpareSpec,
}

/// A bank of identical slots (disks, drives, cartridges, links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SlotBank<T> {
    count: u32,
    per_slot: T,
}

impl DeviceSpec {
    /// Starts building a device named `name` of the given kind.
    pub fn builder(name: impl Into<String>, kind: DeviceKind) -> DeviceSpecBuilder {
        DeviceSpecBuilder {
            name: name.into(),
            kind,
            location: Location::new("default", "default", "default"),
            capacity_slots: None,
            bandwidth_slots: None,
            enclosure_bandwidth: None,
            access_delay: TimeDelta::ZERO,
            cost: CostModel::free(),
            spare: SpareSpec::None,
        }
    }

    /// The device's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What sort of device this is.
    pub fn kind(&self) -> &DeviceKind {
        &self.kind
    }

    /// Where the device physically sits.
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// Per-access delay (`devDelay`): tape load + seek, link propagation,
    /// courier transit.
    pub fn access_delay(&self) -> TimeDelta {
        self.access_delay
    }

    /// The device's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The device's spare-resource specification.
    pub fn spare(&self) -> &SpareSpec {
        &self.spare
    }

    /// Raw capacity: `maxCapSlots × slotCap`, before any redundancy
    /// overhead. `None` means capacity is unconstrained (interconnects).
    pub fn raw_capacity(&self) -> Option<Bytes> {
        self.capacity_slots
            .map(|bank| bank.per_slot * bank.count as f64)
    }

    /// Usable capacity after the device kind's redundancy overhead (e.g.
    /// RAID-1 mirroring halves it). `None` means unconstrained.
    pub fn usable_capacity(&self) -> Option<Bytes> {
        self.raw_capacity()
            .map(|raw| raw / self.kind.capacity_overhead())
    }

    /// Maximum aggregate bandwidth: the *minimum* of the slot aggregate
    /// (`maxBWSlots × slotBW`) and the enclosure limit (`enclBW`). `None`
    /// means unconstrained (couriers).
    ///
    /// The paper's §3.3.1 text prints `max(...)`, but its Table 5 results
    /// (12.4 MB/s ≈ 2.4 % of the 512 MB/s enclosure limit) are only
    /// consistent with `min`; we follow the numbers.
    pub fn max_bandwidth(&self) -> Option<Bandwidth> {
        let slots = self
            .bandwidth_slots
            .map(|bank| bank.per_slot * bank.count as f64);
        match (slots, self.enclosure_bandwidth) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// The capacity utilization a demand of `used` bytes represents.
    /// Unconstrained devices always report zero.
    pub fn capacity_utilization(&self, used: Bytes) -> Utilization {
        match self.usable_capacity() {
            Some(max) if max.value() > 0.0 => Utilization::from_fraction(used / max),
            Some(_) => {
                if used.is_zero() {
                    Utilization::ZERO
                } else {
                    Utilization::from_fraction(f64::INFINITY)
                }
            }
            None => Utilization::ZERO,
        }
    }

    /// The bandwidth utilization a demand of `used` represents.
    /// Unconstrained devices always report zero.
    pub fn bandwidth_utilization(&self, used: Bandwidth) -> Utilization {
        match self.max_bandwidth() {
            Some(max) if max.value() > 0.0 => Utilization::from_fraction(used / max),
            Some(_) => {
                if used.is_zero() {
                    Utilization::ZERO
                } else {
                    Utilization::from_fraction(f64::INFINITY)
                }
            }
            None => Utilization::ZERO,
        }
    }

    /// Bandwidth left over once `committed` demands are being served;
    /// `None` when the device's bandwidth is unconstrained.
    pub fn available_bandwidth(&self, committed: Bandwidth) -> Option<Bandwidth> {
        self.max_bandwidth()
            .map(|max| (max - committed).clamp_non_negative())
    }

    /// Re-runs the builder's validation over a possibly-deserialized
    /// spec (serde bypasses [`DeviceSpec::builder`], so a JSON spec can
    /// carry values the builder would reject).
    ///
    /// # Errors
    ///
    /// As [`DeviceSpecBuilder::build`].
    pub fn validate(&self) -> Result<(), Error> {
        let prefix = |field: &str| format!("device[{}].{}", self.name, field);
        if self.name.is_empty() {
            return Err(Error::invalid("device.name", "must not be empty"));
        }
        if let Some(bank) = self.capacity_slots {
            if bank.count == 0 {
                return Err(Error::invalid(prefix("maxCapSlots"), "must be at least 1"));
            }
            if !(bank.per_slot.value() > 0.0 && bank.per_slot.is_finite()) {
                return Err(Error::invalid(
                    prefix("slotCap"),
                    "must be positive and finite",
                ));
            }
        }
        if let Some(bank) = self.bandwidth_slots {
            if bank.count == 0 {
                return Err(Error::invalid(prefix("maxBWSlots"), "must be at least 1"));
            }
            if !(bank.per_slot.value() > 0.0 && bank.per_slot.is_finite()) {
                return Err(Error::invalid(
                    prefix("slotBW"),
                    "must be positive and finite",
                ));
            }
        }
        if let Some(bw) = self.enclosure_bandwidth {
            if !(bw.value() > 0.0 && bw.is_finite()) {
                return Err(Error::invalid(
                    prefix("enclBW"),
                    "must be positive and finite",
                ));
            }
        }
        if !(self.access_delay.value() >= 0.0 && self.access_delay.is_finite()) {
            return Err(Error::invalid(
                prefix("devDelay"),
                "must be non-negative and finite",
            ));
        }
        self.cost.validate(&self.name)?;
        self.spare.validate(&self.name)?;
        if !(self.kind.capacity_overhead() >= 1.0 && self.kind.capacity_overhead().is_finite()) {
            return Err(Error::invalid(
                prefix("capacityOverhead"),
                "redundancy overhead must be >= 1",
            ));
        }
        Ok(())
    }

    /// A copy of this spec under a different name (used by the repair
    /// pass to deduplicate device names).
    pub(crate) fn with_name(&self, name: impl Into<String>) -> DeviceSpec {
        DeviceSpec {
            name: name.into(),
            ..self.clone()
        }
    }

    /// A copy of this spec with a different spare specification (used by
    /// the repair pass to clamp bad spare values or add coverage).
    pub(crate) fn with_spare(&self, spare: SpareSpec) -> DeviceSpec {
        DeviceSpec {
            spare,
            ..self.clone()
        }
    }
}

/// Incremental builder for [`DeviceSpec`]; see [`DeviceSpec::builder`].
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    name: String,
    kind: DeviceKind,
    location: Location,
    capacity_slots: Option<SlotBank<Bytes>>,
    bandwidth_slots: Option<SlotBank<Bandwidth>>,
    enclosure_bandwidth: Option<Bandwidth>,
    access_delay: TimeDelta,
    cost: CostModel,
    spare: SpareSpec,
}

impl DeviceSpecBuilder {
    /// Sets the device's physical location (default: a shared
    /// `"default"` location, suitable for single-site designs).
    pub fn location(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Provides `count` capacity slots of `per_slot` bytes each
    /// (`maxCapSlots @ slotCap`). Omit for devices without storage
    /// capacity (links, couriers).
    pub fn capacity_slots(mut self, count: u32, per_slot: Bytes) -> Self {
        self.capacity_slots = Some(SlotBank { count, per_slot });
        self
    }

    /// Provides `count` bandwidth slots of `per_slot` each
    /// (`maxBWSlots @ slotBW`). Omit for devices without a bandwidth
    /// constraint (vault shelves, couriers).
    pub fn bandwidth_slots(mut self, count: u32, per_slot: Bandwidth) -> Self {
        self.bandwidth_slots = Some(SlotBank { count, per_slot });
        self
    }

    /// Sets the aggregate enclosure bandwidth limit (`enclBW`).
    pub fn enclosure_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.enclosure_bandwidth = Some(bandwidth);
        self
    }

    /// Sets the per-access delay (`devDelay`, default zero).
    pub fn access_delay(mut self, delay: TimeDelta) -> Self {
        self.access_delay = delay;
        self
    }

    /// Sets the cost model (default: free).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the spare specification (default: no spare).
    pub fn spare(mut self, spare: SpareSpec) -> Self {
        self.spare = spare;
        self
    }

    /// Validates and builds the [`DeviceSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a magnitude is negative or
    /// non-finite, a slot bank has zero slots, or the device has neither a
    /// capacity nor a bandwidth/delay role (it would be inert).
    pub fn build(self) -> Result<DeviceSpec, Error> {
        let spec = DeviceSpec {
            name: self.name,
            kind: self.kind,
            location: self.location,
            capacity_slots: self.capacity_slots,
            bandwidth_slots: self.bandwidth_slots,
            enclosure_bandwidth: self.enclosure_bandwidth,
            access_delay: self.access_delay,
            cost: self.cost,
            spare: self.spare,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Money;

    fn array() -> DeviceSpec {
        DeviceSpec::builder("array", DeviceKind::disk_array(2.0))
            .capacity_slots(256, Bytes::from_gib(73.0))
            .bandwidth_slots(256, Bandwidth::from_mib_per_sec(25.0))
            .enclosure_bandwidth(Bandwidth::from_mib_per_sec(512.0))
            .cost(
                CostModel::builder()
                    .fixed(Money::from_dollars(123_297.0))
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn bandwidth_takes_min_of_slots_and_enclosure() {
        let a = array();
        // 256 × 25 MiB/s = 6400 MiB/s dwarfs the 512 MiB/s enclosure.
        assert_eq!(a.max_bandwidth(), Some(Bandwidth::from_mib_per_sec(512.0)));

        let tape = DeviceSpec::builder("tape", DeviceKind::TapeLibrary)
            .capacity_slots(500, Bytes::from_gib(400.0))
            .bandwidth_slots(2, Bandwidth::from_mib_per_sec(60.0))
            .enclosure_bandwidth(Bandwidth::from_mib_per_sec(240.0))
            .build()
            .unwrap();
        // Two drives limit below the enclosure.
        assert_eq!(
            tape.max_bandwidth(),
            Some(Bandwidth::from_mib_per_sec(120.0))
        );
    }

    #[test]
    fn raid_overhead_reduces_usable_capacity() {
        let a = array();
        assert_eq!(a.raw_capacity(), Some(Bytes::from_gib(256.0 * 73.0)));
        assert_eq!(
            a.usable_capacity(),
            Some(Bytes::from_gib(256.0 * 73.0 / 2.0))
        );
    }

    #[test]
    fn utilization_matches_paper_foreground_share() {
        let a = array();
        // 1360 GiB on a 9344 GiB usable array = 14.6 %.
        let util = a.capacity_utilization(Bytes::from_gib(1360.0));
        assert!((util.as_percent() - 14.56).abs() < 0.01);
        // 1028 KiB/s on 512 MiB/s = 0.196 %.
        let util = a.bandwidth_utilization(Bandwidth::from_kib_per_sec(1028.0));
        assert!((util.as_percent() - 0.196).abs() < 0.01);
    }

    #[test]
    fn unconstrained_resources_report_zero_utilization() {
        let courier = DeviceSpec::builder("air shipment", DeviceKind::Courier)
            .access_delay(TimeDelta::from_hours(24.0))
            .build()
            .unwrap();
        assert_eq!(courier.max_bandwidth(), None);
        assert_eq!(courier.usable_capacity(), None);
        assert_eq!(
            courier.bandwidth_utilization(Bandwidth::from_mib_per_sec(1e6)),
            Utilization::ZERO
        );
        assert_eq!(
            courier.capacity_utilization(Bytes::from_tib(1e6)),
            Utilization::ZERO
        );
    }

    #[test]
    fn available_bandwidth_saturates_at_zero() {
        let a = array();
        let avail = a
            .available_bandwidth(Bandwidth::from_mib_per_sec(600.0))
            .unwrap();
        assert_eq!(avail, Bandwidth::ZERO);
        let avail = a
            .available_bandwidth(Bandwidth::from_mib_per_sec(12.0))
            .unwrap();
        assert_eq!(avail, Bandwidth::from_mib_per_sec(500.0));
    }

    #[test]
    fn builder_rejects_zero_slots() {
        let err = DeviceSpec::builder("x", DeviceKind::TapeLibrary)
            .capacity_slots(0, Bytes::from_gib(400.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("maxCapSlots"));
    }

    #[test]
    fn builder_rejects_negative_delay() {
        let err = DeviceSpec::builder("x", DeviceKind::Courier)
            .access_delay(TimeDelta::from_hours(-1.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("devDelay"));
    }

    #[test]
    fn builder_rejects_empty_name() {
        let err = DeviceSpec::builder("", DeviceKind::Courier)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("name"));
    }

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId(3).to_string(), "device#3");
        assert_eq!(DeviceId(3).index(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let a = array();
        let json = serde_json::to_string(&a).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

/// Structural fingerprinting (cache keys) — lives here because the
/// fields are private. Every serialized field is visited in declaration
/// order; see `crate::fingerprint` for the stability contract.
mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for DeviceId {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            hasher.write_len(self.0);
        }
    }

    impl<T: Fingerprintable> Fingerprintable for SlotBank<T> {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            // Count and per-slot size hash separately: two banks with
            // the same product are different devices.
            self.count.fingerprint_into(hasher);
            self.per_slot.fingerprint_into(hasher);
        }
    }

    impl Fingerprintable for DeviceSpec {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.name.fingerprint_into(hasher);
            self.kind.fingerprint_into(hasher);
            self.location.fingerprint_into(hasher);
            self.capacity_slots.fingerprint_into(hasher);
            self.bandwidth_slots.fingerprint_into(hasher);
            self.enclosure_bandwidth.fingerprint_into(hasher);
            self.access_delay.fingerprint_into(hasher);
            self.cost.fingerprint_into(hasher);
            self.spare.fingerprint_into(hasher);
        }
    }
}

//! Device outlay cost models (§3.3.5).
//!
//! Each device's annualized outlays decompose into a fixed component
//! (enclosure, service contract, floorspace), a per-capacity component
//! (disks, tape media, variable cooling/power), a per-bandwidth component
//! (disks, tape drives, link rental), and — for couriers — a per-shipment
//! component. The paper's Table 4 quotes these as `fixed + c·X + b·Y + s·Z`
//! with `c` in GB, `b` in MB/s and `s` in shipments/year; use
//! [`CostModelBuilder::per_gib`] and [`CostModelBuilder::per_mib_per_sec`]
//! to enter them directly.

use crate::error::Error;
use crate::units::{Bandwidth, Bytes, Money};
use serde::{Deserialize, Serialize};

/// An annualized outlay cost model for one device.
///
/// ```
/// use ssdep_core::device::CostModel;
/// use ssdep_core::units::{Bandwidth, Bytes, Money};
///
/// // The paper's tape library: 98895 + c*0.4 + b*108.6 (c in GB, b in MB/s).
/// let tape = CostModel::builder()
///     .fixed(Money::from_dollars(98_895.0))
///     .per_gib(Money::from_dollars(0.4))
///     .per_mib_per_sec(Money::from_dollars(108.6))
///     .build();
/// let annual = tape.annual_outlay(
///     Bytes::from_gib(6800.0),
///     Bandwidth::from_mib_per_sec(8.1),
///     0.0,
/// );
/// assert!((annual.as_dollars() - (98_895.0 + 6800.0 * 0.4 + 8.1 * 108.6)).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    fixed: Money,
    per_gib: Money,
    per_mib_per_sec: Money,
    per_shipment: Money,
}

impl CostModel {
    /// A cost model with every component zero.
    pub fn free() -> CostModel {
        CostModel {
            fixed: Money::ZERO,
            per_gib: Money::ZERO,
            per_mib_per_sec: Money::ZERO,
            per_shipment: Money::ZERO,
        }
    }

    /// Starts building a cost model (all components default to zero).
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::free(),
        }
    }

    /// The fixed annual component (`fixCost`).
    pub fn fixed(&self) -> Money {
        self.fixed
    }

    /// The annual cost of holding `capacity` on this device (`capCost`).
    pub fn capacity_cost(&self, capacity: Bytes) -> Money {
        self.per_gib * capacity.as_gib()
    }

    /// The annual cost of provisioning `bandwidth` on this device
    /// (`bwCost`).
    pub fn bandwidth_cost(&self, bandwidth: Bandwidth) -> Money {
        self.per_mib_per_sec * bandwidth.as_mib_per_sec()
    }

    /// The annual cost of `shipments_per_year` shipments.
    pub fn shipment_cost(&self, shipments_per_year: f64) -> Money {
        self.per_shipment * shipments_per_year
    }

    /// Total annual outlay for the given usage.
    pub fn annual_outlay(
        &self,
        capacity: Bytes,
        bandwidth: Bandwidth,
        shipments_per_year: f64,
    ) -> Money {
        self.fixed
            + self.capacity_cost(capacity)
            + self.bandwidth_cost(bandwidth)
            + self.shipment_cost(shipments_per_year)
    }

    pub(crate) fn validate(&self, device: &str) -> Result<(), Error> {
        for (field, value) in [
            ("fixCost", self.fixed),
            ("capCost", self.per_gib),
            ("bwCost", self.per_mib_per_sec),
            ("shipCost", self.per_shipment),
        ] {
            if !(value.value() >= 0.0 && value.is_finite()) {
                return Err(Error::invalid(
                    format!("device[{device}].{field}"),
                    "must be non-negative and finite",
                ));
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`CostModel`]; see [`CostModel::builder`].
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets the fixed annual cost.
    pub fn fixed(mut self, cost: Money) -> Self {
        self.model.fixed = cost;
        self
    }

    /// Sets the annual cost per GiB of stored capacity.
    pub fn per_gib(mut self, cost: Money) -> Self {
        self.model.per_gib = cost;
        self
    }

    /// Sets the annual cost per MiB/s of provisioned bandwidth.
    pub fn per_mib_per_sec(mut self, cost: Money) -> Self {
        self.model.per_mib_per_sec = cost;
        self
    }

    /// Sets the cost per shipment (couriers).
    pub fn per_shipment(mut self, cost: Money) -> Self {
        self.model.per_shipment = cost;
        self
    }

    /// Builds the cost model. Validation happens when the owning device
    /// is built.
    pub fn build(self) -> CostModel {
        self.model
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_costs_nothing() {
        let outlay = CostModel::free().annual_outlay(
            Bytes::from_tib(100.0),
            Bandwidth::from_mib_per_sec(1000.0),
            52.0,
        );
        assert_eq!(outlay, Money::ZERO);
    }

    #[test]
    fn components_add_independently() {
        let model = CostModel::builder()
            .fixed(Money::from_dollars(100.0))
            .per_gib(Money::from_dollars(2.0))
            .per_mib_per_sec(Money::from_dollars(5.0))
            .per_shipment(Money::from_dollars(50.0))
            .build();
        assert_eq!(model.fixed(), Money::from_dollars(100.0));
        assert_eq!(
            model.capacity_cost(Bytes::from_gib(10.0)),
            Money::from_dollars(20.0)
        );
        assert_eq!(
            model.bandwidth_cost(Bandwidth::from_mib_per_sec(3.0)),
            Money::from_dollars(15.0)
        );
        assert_eq!(model.shipment_cost(13.0), Money::from_dollars(650.0));
        let total = model.annual_outlay(
            Bytes::from_gib(10.0),
            Bandwidth::from_mib_per_sec(3.0),
            13.0,
        );
        assert_eq!(total, Money::from_dollars(785.0));
    }

    #[test]
    fn paper_array_cost_formula() {
        // Disk array: 123297 + c * 17.2.
        let model = CostModel::builder()
            .fixed(Money::from_dollars(123_297.0))
            .per_gib(Money::from_dollars(17.2))
            .build();
        let outlay = model.annual_outlay(Bytes::from_gib(8160.0), Bandwidth::ZERO, 0.0);
        assert!((outlay.as_dollars() - (123_297.0 + 8160.0 * 17.2)).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_negative_components() {
        let model = CostModel::builder()
            .fixed(Money::from_dollars(-1.0))
            .build();
        assert!(model.validate("x").is_err());
        assert!(CostModel::free().validate("x").is_ok());
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for CostModel {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.fixed.fingerprint_into(hasher);
            self.per_gib.fingerprint_into(hasher);
            self.per_mib_per_sec.fingerprint_into(hasher);
            self.per_shipment.fingerprint_into(hasher);
        }
    }
}

//! Spare resource specifications (§3.2.2).
//!
//! A device may have a spare that replaces it after a failure. Dedicated
//! hot spares provision quickly but cost as much as the original; shared
//! resources (e.g. a remote hosting facility that must be drained and
//! scrubbed) provision slowly but cost a fraction.

use crate::error::Error;
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How (and whether) a device can be replaced after it fails.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SpareSpec {
    /// No spare: if the device fails and no wider recovery facility is
    /// available, recovery cannot rebuild it.
    #[default]
    None,
    /// A dedicated spare reserved for this device.
    Dedicated {
        /// Time to bring the spare into service (`spareTime`).
        provisioning_time: TimeDelta,
        /// Cost as a fraction of the original device's outlay
        /// (`spareDisc`, typically `1.0` for dedicated spares).
        cost_factor: f64,
    },
    /// A shared spare pool; slower to provision, cheaper to hold.
    Shared {
        /// Time to drain, scrub, and provision shared resources.
        provisioning_time: TimeDelta,
        /// Cost as a fraction of the original device's outlay
        /// (e.g. `0.2` for a 20 % share).
        cost_factor: f64,
    },
}

impl SpareSpec {
    /// Convenience constructor for [`SpareSpec::Dedicated`].
    pub fn dedicated(provisioning_time: TimeDelta, cost_factor: f64) -> SpareSpec {
        SpareSpec::Dedicated {
            provisioning_time,
            cost_factor,
        }
    }

    /// Convenience constructor for [`SpareSpec::Shared`].
    pub fn shared(provisioning_time: TimeDelta, cost_factor: f64) -> SpareSpec {
        SpareSpec::Shared {
            provisioning_time,
            cost_factor,
        }
    }

    /// Time to provision the spare, or `None` when there is no spare.
    pub fn provisioning_time(&self) -> Option<TimeDelta> {
        match self {
            SpareSpec::None => None,
            SpareSpec::Dedicated {
                provisioning_time, ..
            }
            | SpareSpec::Shared {
                provisioning_time, ..
            } => Some(*provisioning_time),
        }
    }

    /// The spare's annual cost as a fraction of the device outlay (zero
    /// when there is no spare).
    pub fn cost_factor(&self) -> f64 {
        match self {
            SpareSpec::None => 0.0,
            SpareSpec::Dedicated { cost_factor, .. } | SpareSpec::Shared { cost_factor, .. } => {
                *cost_factor
            }
        }
    }

    /// Whether any spare exists.
    pub fn exists(&self) -> bool {
        !matches!(self, SpareSpec::None)
    }

    pub(crate) fn validate(&self, device: &str) -> Result<(), Error> {
        if let Some(t) = self.provisioning_time() {
            if !(t.value() >= 0.0 && t.is_finite()) {
                return Err(Error::invalid(
                    format!("device[{device}].spareTime"),
                    "must be non-negative and finite",
                ));
            }
        }
        let factor = self.cost_factor();
        if !(factor >= 0.0 && factor.is_finite()) {
            return Err(Error::invalid(
                format!("device[{device}].spareDisc"),
                "must be non-negative and finite",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for SpareSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpareSpec::None => f.write_str("no spare"),
            SpareSpec::Dedicated {
                provisioning_time, ..
            } => {
                write!(f, "dedicated spare ({provisioning_time} to provision)")
            }
            SpareSpec::Shared {
                provisioning_time,
                cost_factor,
            } => write!(
                f,
                "shared spare ({provisioning_time} to provision, {:.0}% cost)",
                cost_factor * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_time_and_zero_cost() {
        assert_eq!(SpareSpec::None.provisioning_time(), None);
        assert_eq!(SpareSpec::None.cost_factor(), 0.0);
        assert!(!SpareSpec::None.exists());
    }

    #[test]
    fn dedicated_hot_spare_provisions_fast_at_full_cost() {
        let spare = SpareSpec::dedicated(TimeDelta::from_secs(60.0), 1.0);
        assert_eq!(spare.provisioning_time(), Some(TimeDelta::from_secs(60.0)));
        assert_eq!(spare.cost_factor(), 1.0);
        assert!(spare.exists());
    }

    #[test]
    fn shared_facility_provisions_slowly_at_discount() {
        let spare = SpareSpec::shared(TimeDelta::from_hours(9.0), 0.2);
        assert_eq!(spare.provisioning_time(), Some(TimeDelta::from_hours(9.0)));
        assert!((spare.cost_factor() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_values() {
        assert!(SpareSpec::dedicated(TimeDelta::from_secs(-1.0), 1.0)
            .validate("x")
            .is_err());
        assert!(SpareSpec::shared(TimeDelta::from_hours(1.0), -0.5)
            .validate("x")
            .is_err());
        assert!(SpareSpec::None.validate("x").is_ok());
    }

    #[test]
    fn display_mentions_provisioning() {
        let text = SpareSpec::shared(TimeDelta::from_hours(9.0), 0.2).to_string();
        assert!(text.contains("9.0 hr"));
        assert!(text.contains("20%"));
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for SpareSpec {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                SpareSpec::None => hasher.write_u8(0),
                SpareSpec::Dedicated {
                    provisioning_time,
                    cost_factor,
                } => {
                    hasher.write_u8(1);
                    provisioning_time.fingerprint_into(hasher);
                    cost_factor.fingerprint_into(hasher);
                }
                SpareSpec::Shared {
                    provisioning_time,
                    cost_factor,
                } => {
                    hasher.write_u8(2);
                    provisioning_time.fingerprint_into(hasher);
                    cost_factor.fingerprint_into(hasher);
                }
            }
        }
    }
}

//! The kinds of hardware device the framework distinguishes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What sort of device a [`DeviceSpec`](super::DeviceSpec) describes.
///
/// The kind mostly affects interpretation (reporting, recovery semantics);
/// the quantitative capability comes from the spec's slot/bandwidth/delay
/// parameters. The one numeric consequence is the disk array's redundancy
/// overhead: internal RAID protection consumes raw capacity, so usable
/// capacity is `raw / capacity_overhead`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceKind {
    /// A disk array holding online (random-access) copies.
    DiskArray {
        /// Raw-to-usable capacity factor of the internal RAID scheme:
        /// `2.0` for RAID-1 mirroring, `1.25` for 4+1 RAID-5, `1.0` for
        /// unprotected JBOD.
        capacity_overhead: f64,
    },
    /// A tape library: drives provide bandwidth, cartridges capacity.
    TapeLibrary,
    /// An off-site vault shelf: capacity only, no online bandwidth.
    VaultShelf,
    /// A network interconnect (SAN or WAN links). Bandwidth slots
    /// represent individual links.
    NetworkLink,
    /// A physical transportation method (e.g. overnight air courier):
    /// no capacity or bandwidth constraint, but a large access delay and
    /// per-shipment cost.
    Courier,
}

impl DeviceKind {
    /// Convenience constructor for a disk array with the given
    /// redundancy overhead.
    pub fn disk_array(capacity_overhead: f64) -> DeviceKind {
        DeviceKind::DiskArray { capacity_overhead }
    }

    /// The raw-to-usable capacity factor (1.0 for everything except
    /// RAID-protected arrays).
    pub fn capacity_overhead(&self) -> f64 {
        match self {
            DeviceKind::DiskArray { capacity_overhead } => *capacity_overhead,
            _ => 1.0,
        }
    }

    /// Whether the device stores data online (can serve as a recovery
    /// *source or destination* that streams bytes), as opposed to a pure
    /// transport.
    pub fn is_storage(&self) -> bool {
        matches!(
            self,
            DeviceKind::DiskArray { .. } | DeviceKind::TapeLibrary | DeviceKind::VaultShelf
        )
    }

    /// Whether the device is a transport between storage devices.
    pub fn is_transport(&self) -> bool {
        matches!(self, DeviceKind::NetworkLink | DeviceKind::Courier)
    }

    /// A short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::DiskArray { .. } => "disk array",
            DeviceKind::TapeLibrary => "tape library",
            DeviceKind::VaultShelf => "vault",
            DeviceKind::NetworkLink => "network link",
            DeviceKind::Courier => "courier",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_applies_only_to_arrays() {
        assert_eq!(DeviceKind::disk_array(2.0).capacity_overhead(), 2.0);
        assert_eq!(DeviceKind::TapeLibrary.capacity_overhead(), 1.0);
        assert_eq!(DeviceKind::Courier.capacity_overhead(), 1.0);
    }

    #[test]
    fn storage_and_transport_partition_the_kinds() {
        let kinds = [
            DeviceKind::disk_array(1.0),
            DeviceKind::TapeLibrary,
            DeviceKind::VaultShelf,
            DeviceKind::NetworkLink,
            DeviceKind::Courier,
        ];
        for kind in kinds {
            assert_ne!(kind.is_storage(), kind.is_transport(), "{kind}");
        }
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(DeviceKind::disk_array(2.0).to_string(), "disk array");
        assert_eq!(DeviceKind::TapeLibrary.to_string(), "tape library");
        assert_eq!(DeviceKind::VaultShelf.to_string(), "vault");
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for DeviceKind {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                DeviceKind::DiskArray { capacity_overhead } => {
                    hasher.write_u8(0);
                    capacity_overhead.fingerprint_into(hasher);
                }
                DeviceKind::TapeLibrary => hasher.write_u8(1),
                DeviceKind::VaultShelf => hasher.write_u8(2),
                DeviceKind::NetworkLink => hasher.write_u8(3),
                DeviceKind::Courier => hasher.write_u8(4),
            }
        }
    }
}

//! Models of the individual data protection techniques (§3.2).
//!
//! Every technique is described by the common
//! [`ProtectionParams`] vocabulary plus a small amount of
//! technique-specific configuration, and answers the same three
//! questions:
//!
//! 1. **Demands** — what bandwidth/capacity does maintaining its RPs cost
//!    on each device ([`Technique::demands`])?
//! 2. **Timing** — how stale are its RPs ([`Technique::worst_own_lag`],
//!    [`Technique::transit_lag`]) and how long are they retained
//!    ([`Technique::retention_span`])?
//! 3. **Recovery** — how many bytes must be restored from it
//!    ([`Technique::worst_restore_bytes`])?
//!
//! The composition analyses in [`crate::analysis`] are written purely in
//! terms of these answers, which is what makes new techniques easy to
//! add.

mod backup;
mod k_out_of_n;
mod params;
mod primary;
mod remote_mirror;
mod snapshot;
mod split_mirror;
mod vault;

pub use backup::{Backup, IncrementalMode, IncrementalPolicy};
pub use k_out_of_n::{KOutOfN, RepairStrategy};
pub use params::{CopyRepresentation, ProtectionParams};
pub use primary::PrimaryCopy;
pub use remote_mirror::{MirrorMode, RemoteMirror};
pub use snapshot::VirtualSnapshot;
pub use split_mirror::SplitMirror;
pub use vault::RemoteVault;

use crate::demands::DemandContribution;
use crate::device::DeviceId;
use crate::error::Error;
use crate::units::{Bytes, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything a technique model needs to know about its place in the
/// hierarchy when computing demands.
#[derive(Debug, Clone)]
pub struct LevelContext<'a> {
    /// The foreground workload being protected.
    pub workload: &'a Workload,
    /// This level's zero-based index in the hierarchy.
    pub level_index: usize,
    /// The device hosting the *previous* (higher, fresher) level's RPs —
    /// the source this level's propagations read from. `None` for
    /// level 0.
    pub source_host: Option<DeviceId>,
    /// The device hosting this level's RPs.
    pub host: DeviceId,
    /// Interconnect devices carrying propagations into this level.
    pub transports: &'a [DeviceId],
    /// The previous level's retention window, when there is one — the
    /// vault model needs it for the extra-copy rule.
    pub prev_retention_window: Option<TimeDelta>,
}

/// A data protection technique instance, configured for one hierarchy
/// level.
///
/// This is a closed enum rather than a trait object so that designs are
/// plain serializable data; the variants delegate to per-technique
/// modules. (A design with a genuinely novel technique can usually be
/// expressed by configuring one of these models — that is the point of
/// the common parameter set.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Technique {
    /// The primary (level-0) copy serving the foreground workload.
    PrimaryCopy(PrimaryCopy),
    /// Split-mirror point-in-time copies on the primary array.
    SplitMirror(SplitMirror),
    /// Copy-on-write virtual snapshots on the primary array.
    VirtualSnapshot(VirtualSnapshot),
    /// Inter-array mirroring (synchronous, asynchronous, or batched).
    RemoteMirror(RemoteMirror),
    /// Backup to separate hardware (tape library, disk, optical).
    Backup(Backup),
    /// Periodic shipment of backup media to an off-site vault.
    RemoteVault(RemoteVault),
    /// Erasure-coded fragments: any `k` of `n` reconstruct the dataset.
    KOutOfN(KOutOfN),
}

impl Technique {
    /// The technique's display name, matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::PrimaryCopy(_) => "primary copy",
            Technique::SplitMirror(_) => "split mirror",
            Technique::VirtualSnapshot(_) => "virtual snapshot",
            Technique::RemoteMirror(m) => m.name(),
            Technique::Backup(_) => "backup",
            Technique::RemoteVault(_) => "remote vaulting",
            Technique::KOutOfN(_) => "k-out-of-n",
        }
    }

    /// The common window/retention parameters, where the technique has
    /// them. Level 0 (the live primary copy) and synchronous/plain
    /// asynchronous mirrors (which track the primary continuously) return
    /// `None`.
    pub fn params(&self) -> Option<&ProtectionParams> {
        match self {
            Technique::PrimaryCopy(_) => None,
            Technique::SplitMirror(t) => Some(t.params()),
            Technique::VirtualSnapshot(t) => Some(t.params()),
            Technique::RemoteMirror(t) => t.params(),
            Technique::Backup(t) => Some(t.full_params()),
            Technique::RemoteVault(t) => Some(t.params()),
            Technique::KOutOfN(t) => Some(t.params()),
        }
    }

    /// Worst-case staleness of the freshest RP *restorable from this
    /// level*, counting only this level's own windows:
    /// `max_rep(holdW + propW) + arrival period` (§3.3.2–3.3.3).
    pub fn worst_own_lag(&self) -> TimeDelta {
        match self {
            Technique::PrimaryCopy(_) => TimeDelta::ZERO,
            Technique::SplitMirror(t) => t.params().worst_own_lag(),
            Technique::VirtualSnapshot(t) => t.params().worst_own_lag(),
            Technique::RemoteMirror(t) => t.worst_own_lag(),
            Technique::Backup(t) => t.worst_own_lag(),
            Technique::RemoteVault(t) => t.params().worst_own_lag(),
            Technique::KOutOfN(t) => t.params().worst_own_lag(),
        }
    }

    /// The lag this level adds to RPs that continue to lower levels:
    /// `holdW + propW` of the representation that is propagated onward
    /// (the full, for cyclic policies).
    pub fn transit_lag(&self) -> TimeDelta {
        match self {
            Technique::PrimaryCopy(_) => TimeDelta::ZERO,
            Technique::SplitMirror(t) => t.params().transit_lag(),
            Technique::VirtualSnapshot(t) => t.params().transit_lag(),
            Technique::RemoteMirror(t) => t.transit_lag(),
            Technique::Backup(t) => t.full_params().transit_lag(),
            Technique::RemoteVault(t) => t.params().transit_lag(),
            Technique::KOutOfN(t) => t.params().transit_lag(),
        }
    }

    /// How often new RPs arrive at this level once running steadily (the
    /// worst-case data loss when the recovery target is retained here).
    pub fn arrival_period(&self) -> TimeDelta {
        match self {
            Technique::PrimaryCopy(_) => TimeDelta::ZERO,
            Technique::SplitMirror(t) => t.params().accumulation_window(),
            Technique::VirtualSnapshot(t) => t.params().accumulation_window(),
            Technique::RemoteMirror(t) => t.arrival_period(),
            Technique::Backup(t) => t.arrival_period(),
            Technique::RemoteVault(t) => t.params().accumulation_window(),
            Technique::KOutOfN(t) => t.params().accumulation_window(),
        }
    }

    /// The span of past time covered by the RPs guaranteed retained at
    /// this level: `(retCnt − 1) × cyclePer`. Zero for levels that keep
    /// only the current state (mirrors, the primary).
    pub fn retention_span(&self) -> TimeDelta {
        match self {
            Technique::PrimaryCopy(_) => TimeDelta::ZERO,
            Technique::SplitMirror(t) => t.params().retention_span(),
            Technique::VirtualSnapshot(t) => t.params().retention_span(),
            Technique::RemoteMirror(t) => t.retention_span(),
            Technique::Backup(t) => t.full_params().retention_span(),
            Technique::RemoteVault(t) => t.params().retention_span(),
            Technique::KOutOfN(t) => t.params().retention_span(),
        }
    }

    /// The bytes that must be read from this level to restore `needed`
    /// bytes of data. Restoring a whole dataset from a cyclic backup may
    /// need a full *plus* incrementals, so this can exceed `needed`.
    pub fn worst_restore_bytes(&self, workload: &Workload, needed: Bytes) -> Bytes {
        match self {
            Technique::Backup(t) => t.worst_restore_bytes(workload, needed),
            _ => needed,
        }
    }

    /// Converts the technique's policy into normal-mode device demands
    /// (§3.2.3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the context is
    /// inconsistent with the technique (e.g. a mirror level with no
    /// source).
    pub fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        match self {
            Technique::PrimaryCopy(t) => t.demands(ctx),
            Technique::SplitMirror(t) => t.demands(ctx),
            Technique::VirtualSnapshot(t) => t.demands(ctx),
            Technique::RemoteMirror(t) => t.demands(ctx),
            Technique::Backup(t) => t.demands(ctx),
            Technique::RemoteVault(t) => t.demands(ctx),
            Technique::KOutOfN(t) => t.demands(ctx),
        }
    }

    /// Re-runs construction-time validation over a possibly-deserialized
    /// technique (serde bypasses the constructors, so a JSON spec can
    /// carry parameters the constructors would reject).
    ///
    /// # Errors
    ///
    /// As [`ProtectionParams::validate`] plus the technique-specific
    /// constructor checks ([`Backup::full_only`],
    /// [`Backup::with_incrementals`], a finite non-negative asynchronous
    /// mirror write lag).
    pub fn validate(&self) -> Result<(), Error> {
        if let Some(params) = self.params() {
            params.validate()?;
        }
        match self {
            Technique::Backup(t) => match t.incremental() {
                None => Backup::full_only(*t.full_params()).map(|_| ()),
                Some(incr) => Backup::with_incrementals(*t.full_params(), *incr).map(|_| ()),
            },
            Technique::RemoteMirror(t) => {
                if let MirrorMode::Asynchronous { write_lag } = *t.mode() {
                    if !(write_lag.value() >= 0.0 && write_lag.is_finite()) {
                        return Err(Error::invalid(
                            "remoteMirror.writeLag",
                            "must be non-negative and finite",
                        ));
                    }
                }
                Ok(())
            }
            Technique::KOutOfN(t) => t.validate(),
            _ => Ok(()),
        }
    }

    /// How many concurrent streams a restore from this level reads with.
    /// One for every technique except a parallel-repair
    /// [`Technique::KOutOfN`] level, which streams its `k` fragments
    /// concurrently and divides the restore transfer time accordingly.
    pub fn repair_parallelism(&self) -> f64 {
        match self {
            Technique::KOutOfN(t) => t.repair_parallelism(),
            _ => 1.0,
        }
    }

    /// Whether this level's RPs live on the same device as the primary
    /// copy (PiT techniques) — such levels are destroyed with the primary
    /// array and add no transfer hop during full-dataset recovery.
    pub fn is_point_in_time(&self) -> bool {
        matches!(
            self,
            Technique::SplitMirror(_) | Technique::VirtualSnapshot(_)
        )
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cello() -> Workload {
        crate::presets::cello_workload()
    }

    fn params(acc_hours: f64, ret: u32) -> ProtectionParams {
        ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(acc_hours))
            .propagation_window(TimeDelta::ZERO)
            .retention_count(ret)
            .build()
            .unwrap()
    }

    #[test]
    fn names_match_paper_terminology() {
        let t = Technique::SplitMirror(SplitMirror::new(params(12.0, 4)));
        assert_eq!(t.name(), "split mirror");
        assert_eq!(t.to_string(), "split mirror");
        let t = Technique::PrimaryCopy(PrimaryCopy::new());
        assert_eq!(t.name(), "primary copy");
    }

    #[test]
    fn primary_copy_has_no_lag_or_retention() {
        let t = Technique::PrimaryCopy(PrimaryCopy::new());
        assert_eq!(t.worst_own_lag(), TimeDelta::ZERO);
        assert_eq!(t.transit_lag(), TimeDelta::ZERO);
        assert_eq!(t.retention_span(), TimeDelta::ZERO);
        assert!(t.params().is_none());
    }

    #[test]
    fn split_mirror_lag_is_its_accumulation_window() {
        let t = Technique::SplitMirror(SplitMirror::new(params(12.0, 4)));
        assert_eq!(t.worst_own_lag(), TimeDelta::from_hours(12.0));
        assert_eq!(t.transit_lag(), TimeDelta::ZERO);
        assert_eq!(t.retention_span(), TimeDelta::from_hours(36.0));
    }

    #[test]
    fn pit_classification() {
        assert!(Technique::SplitMirror(SplitMirror::new(params(12.0, 4))).is_point_in_time());
        assert!(
            Technique::VirtualSnapshot(VirtualSnapshot::new(params(12.0, 4))).is_point_in_time()
        );
        assert!(!Technique::PrimaryCopy(PrimaryCopy::new()).is_point_in_time());
    }

    #[test]
    fn non_backup_restore_bytes_equal_need() {
        let wl = cello();
        let t = Technique::SplitMirror(SplitMirror::new(params(12.0, 4)));
        let needed = Bytes::from_mib(1.0);
        assert_eq!(t.worst_restore_bytes(&wl, needed), needed);
    }

    #[test]
    fn repair_parallelism_is_one_except_for_parallel_erasure_coding() {
        assert_eq!(
            Technique::PrimaryCopy(PrimaryCopy::new()).repair_parallelism(),
            1.0
        );
        let parallel = Technique::KOutOfN(KOutOfN::new(
            4,
            6,
            params(24.0, 4),
            RepairStrategy::Parallel,
        ));
        assert_eq!(parallel.repair_parallelism(), 4.0);
        assert_eq!(parallel.name(), "k-out-of-n");
        let serial =
            Technique::KOutOfN(KOutOfN::new(4, 6, params(24.0, 4), RepairStrategy::Serial));
        assert_eq!(serial.repair_parallelism(), 1.0);
        assert!(!serial.is_point_in_time());
    }

    #[test]
    fn serde_roundtrip_for_enum() {
        let t = Technique::RemoteMirror(RemoteMirror::synchronous());
        let json = serde_json::to_string(&t).unwrap();
        let back: Technique = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

mod technique_fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for Technique {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                Technique::PrimaryCopy(t) => {
                    hasher.write_u8(0);
                    t.fingerprint_into(hasher);
                }
                Technique::SplitMirror(t) => {
                    hasher.write_u8(1);
                    t.fingerprint_into(hasher);
                }
                Technique::VirtualSnapshot(t) => {
                    hasher.write_u8(2);
                    t.fingerprint_into(hasher);
                }
                Technique::RemoteMirror(t) => {
                    hasher.write_u8(3);
                    t.fingerprint_into(hasher);
                }
                Technique::Backup(t) => {
                    hasher.write_u8(4);
                    t.fingerprint_into(hasher);
                }
                Technique::RemoteVault(t) => {
                    hasher.write_u8(5);
                    t.fingerprint_into(hasher);
                }
                Technique::KOutOfN(t) => {
                    hasher.write_u8(6);
                    t.fingerprint_into(hasher);
                }
            }
        }
    }
}

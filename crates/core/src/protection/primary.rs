//! The primary copy (hierarchy level 0).

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::LevelContext;
use serde::{Deserialize, Serialize};

/// The primary copy of the data, serving the foreground workload.
///
/// Level 0 of every hierarchy. Its demands on the hosting array are the
/// foreground workload itself: the average access rate in bandwidth and
/// the dataset size in capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrimaryCopy {}

impl PrimaryCopy {
    /// Creates the primary-copy model.
    pub fn new() -> PrimaryCopy {
        PrimaryCopy {}
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let mut contribution = DemandContribution::none(ctx.host);
        contribution.bandwidth = ctx.workload.avg_access_rate();
        contribution.capacity = ctx.workload.data_capacity();
        Ok(vec![contribution])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::{Bandwidth, Bytes};

    #[test]
    fn demands_equal_foreground_workload() {
        let workload = crate::presets::cello_workload();
        let ctx = LevelContext {
            workload: &workload,
            level_index: 0,
            source_host: None,
            host: DeviceId(0),
            transports: &[],
            prev_retention_window: None,
        };
        let demands = PrimaryCopy::new().demands(&ctx).unwrap();
        assert_eq!(demands.len(), 1);
        assert_eq!(demands[0].device, DeviceId(0));
        assert_eq!(demands[0].bandwidth, Bandwidth::from_kib_per_sec(1028.0));
        assert_eq!(demands[0].capacity, Bytes::from_gib(1360.0));
        assert_eq!(demands[0].shipments_per_year, 0.0);
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for PrimaryCopy {
        fn fingerprint_into(&self, _hasher: &mut FingerprintHasher) {
            // No fields; the Technique discriminant tag identifies it.
        }
    }
}

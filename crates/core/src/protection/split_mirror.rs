//! Split-mirror point-in-time copies (§3.2.3).
//!
//! A circular buffer of `retCnt + 1` full mirrors is maintained on the
//! same array as the primary: `retCnt` accessible split mirrors plus one
//! undergoing *resilvering* (being brought back up to date before its next
//! split). Resilvering must propagate every unique update since that
//! mirror was last split — `(retCnt + 1)` accumulation windows ago — by
//! reading the new values from the primary and writing them to the
//! mirror.

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};

/// A split-mirror PiT level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitMirror {
    params: ProtectionParams,
}

impl SplitMirror {
    /// Creates a split-mirror level with the given window/retention
    /// parameters. A new mirror is split every
    /// [`accumulation_window`](ProtectionParams::accumulation_window).
    pub fn new(params: ProtectionParams) -> SplitMirror {
        SplitMirror { params }
    }

    /// The level's window/retention parameters.
    pub fn params(&self) -> &ProtectionParams {
        &self.params
    }

    /// Total number of mirror copies held: `retCnt` accessible plus one
    /// resilvering.
    pub fn mirror_count(&self) -> u32 {
        self.params.retention_count() + 1
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let workload = ctx.workload;
        let mut contribution = DemandContribution::none(ctx.host);

        // retCnt + 1 full copies of the dataset.
        contribution.capacity = workload.data_capacity() * self.mirror_count() as f64;

        // Resilvering: the eligible mirror is (retCnt + 1) windows stale;
        // its catch-up bytes must move within one accumulation window,
        // and each byte is read from the primary and written to the
        // mirror on the same array.
        let acc = self.params.accumulation_window();
        let staleness: TimeDelta = acc * self.mirror_count() as f64;
        let catch_up = workload.unique_bytes(staleness);
        contribution.bandwidth = (catch_up / acc) * 2.0;

        Ok(vec![contribution])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::{Bandwidth, Bytes};

    fn paper_split_mirror() -> SplitMirror {
        SplitMirror::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(12.0))
                .propagation_window(TimeDelta::ZERO)
                .retention_count(4)
                .build()
                .unwrap(),
        )
    }

    fn ctx(workload: &crate::workload::Workload) -> LevelContext<'_> {
        LevelContext {
            workload,
            level_index: 1,
            source_host: Some(DeviceId(0)),
            host: DeviceId(0),
            transports: &[],
            prev_retention_window: None,
        }
    }

    #[test]
    fn five_mirrors_for_retention_count_four() {
        assert_eq!(paper_split_mirror().mirror_count(), 5);
    }

    #[test]
    fn capacity_is_five_full_copies() {
        let workload = crate::presets::cello_workload();
        let demands = paper_split_mirror().demands(&ctx(&workload)).unwrap();
        assert_eq!(demands[0].capacity, Bytes::from_gib(5.0 * 1360.0));
    }

    #[test]
    fn resilver_bandwidth_matches_paper_table_5() {
        // 60 hours of unique updates at 317 KiB/s, moved in 12 hours,
        // read + written: 2 × 317 × 5 = 3170 KiB/s ≈ 3.1 MiB/s, which is
        // the paper's 0.6 % of the 512 MiB/s array.
        let workload = crate::presets::cello_workload();
        let demands = paper_split_mirror().demands(&ctx(&workload)).unwrap();
        let expected = Bandwidth::from_kib_per_sec(2.0 * 317.0 * 5.0);
        assert!(
            demands[0].bandwidth.approx_eq(expected, 1e-6),
            "got {}, expected {}",
            demands[0].bandwidth,
            expected
        );
        let array_bw = Bandwidth::from_mib_per_sec(512.0);
        let percent = demands[0].bandwidth / array_bw * 100.0;
        assert!((percent - 0.6).abs() < 0.05, "resilver share {percent:.2}%");
    }

    #[test]
    fn more_retained_mirrors_cost_more_of_both() {
        let workload = crate::presets::cello_workload();
        let small = paper_split_mirror().demands(&ctx(&workload)).unwrap()[0];
        let big = SplitMirror::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(12.0))
                .propagation_window(TimeDelta::ZERO)
                .retention_count(8)
                .build()
                .unwrap(),
        )
        .demands(&ctx(&workload))
        .unwrap()[0];
        assert!(big.capacity > small.capacity);
        assert!(big.bandwidth >= small.bandwidth);
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for SplitMirror {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.params.fingerprint_into(hasher);
        }
    }
}

//! Backup to separate hardware (§2, §3.2.3).
//!
//! A backup cycle combines one *full* propagation with zero or more
//! incrementals: **cumulative** incrementals copy everything changed
//! since the last full (each larger than the previous), **differential**
//! incrementals copy only what changed since the last backup of any
//! kind.
//!
//! The model assumes a consistent source copy is provided by another
//! technique (a split mirror or snapshot level above), so backup itself
//! places only *read bandwidth* on the source array. The backup device
//! needs bandwidth for the larger of the full and the biggest
//! incremental, and capacity for `retCnt` full cycles plus one extra full
//! (so a failure during an in-progress full never leaves the system
//! without a complete backup).

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use crate::units::{Bandwidth, Bytes, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// How incremental backups accumulate changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncrementalMode {
    /// Everything changed since the last **full** backup.
    Cumulative,
    /// Everything changed since the last backup of **any** kind.
    Differential,
}

/// The incremental half of a backup cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalPolicy {
    /// Cumulative or differential accumulation.
    pub mode: IncrementalMode,
    /// Window over which each incremental accumulates updates.
    pub accumulation_window: TimeDelta,
    /// Window during which each incremental is transferred.
    pub propagation_window: TimeDelta,
    /// Delay before each incremental's transfer starts.
    pub hold_window: TimeDelta,
    /// Number of incrementals between fulls (`cycleCnt`).
    pub count: u32,
}

/// A backup level (full, or full + incremental cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backup {
    full: ProtectionParams,
    incremental: Option<IncrementalPolicy>,
}

impl Backup {
    /// Creates a fulls-only backup policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the full's propagation
    /// window is zero (a backup transfer takes real time; the window
    /// sizes the required bandwidth).
    pub fn full_only(full: ProtectionParams) -> Result<Backup, Error> {
        Backup::validate_full(&full)?;
        Ok(Backup {
            full,
            incremental: None,
        })
    }

    /// Creates a full + incremental cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if either propagation window
    /// is zero, the incremental has zero count, or the incrementals do
    /// not fit between fulls
    /// (`count × incr.accW` must be less than the full cycle period).
    pub fn with_incrementals(
        full: ProtectionParams,
        incremental: IncrementalPolicy,
    ) -> Result<Backup, Error> {
        Backup::validate_full(&full)?;
        if incremental.count == 0 {
            return Err(Error::invalid(
                "backup.incremental.count",
                "use Backup::full_only for a policy without incrementals",
            ));
        }
        for (name, window) in [
            ("backup.incremental.accW", incremental.accumulation_window),
            ("backup.incremental.propW", incremental.propagation_window),
            ("backup.incremental.holdW", incremental.hold_window),
        ] {
            if !(window.value() >= 0.0 && window.is_finite()) {
                return Err(Error::invalid(name, "must be non-negative and finite"));
            }
        }
        if incremental.propagation_window.value() <= 0.0 {
            return Err(Error::invalid(
                "backup.incremental.propW",
                "must be positive to size the transfer bandwidth",
            ));
        }
        if incremental.accumulation_window.value() <= 0.0 {
            return Err(Error::invalid(
                "backup.incremental.accW",
                "must be positive",
            ));
        }
        let incr_span = incremental.accumulation_window * incremental.count as f64;
        if incr_span >= full.cycle_period() {
            return Err(Error::invalid(
                "backup.incremental.count",
                "incrementals must fit within the full cycle period",
            ));
        }
        Ok(Backup {
            full,
            incremental: Some(incremental),
        })
    }

    fn validate_full(full: &ProtectionParams) -> Result<(), Error> {
        if full.propagation_window().value() <= 0.0 {
            return Err(Error::invalid(
                "backup.full.propW",
                "must be positive to size the transfer bandwidth",
            ));
        }
        Ok(())
    }

    /// The full backup's window/retention parameters.
    pub fn full_params(&self) -> &ProtectionParams {
        &self.full
    }

    /// The incremental policy, when the cycle has one.
    pub fn incremental(&self) -> Option<&IncrementalPolicy> {
        self.incremental.as_ref()
    }

    /// Size of the `k`-th (1-based) incremental in a cycle.
    pub fn incremental_bytes(&self, workload: &Workload, k: u32) -> Bytes {
        match &self.incremental {
            None => Bytes::ZERO,
            Some(incr) => {
                let window = match incr.mode {
                    IncrementalMode::Cumulative => {
                        incr.accumulation_window * k.min(incr.count) as f64
                    }
                    IncrementalMode::Differential => incr.accumulation_window,
                };
                workload.unique_bytes(window)
            }
        }
    }

    /// Size of the largest incremental in a cycle (the last cumulative,
    /// or any differential).
    pub fn largest_incremental_bytes(&self, workload: &Workload) -> Bytes {
        match &self.incremental {
            None => Bytes::ZERO,
            Some(incr) => self.incremental_bytes(workload, incr.count),
        }
    }

    /// The bandwidth the backup needs on both the source array and the
    /// backup device: the max of the full transfer rate and the largest
    /// incremental transfer rate.
    pub fn required_bandwidth(&self, workload: &Workload) -> Bandwidth {
        let full_rate = workload.data_capacity() / self.full.propagation_window();
        let incr_rate = match &self.incremental {
            None => Bandwidth::ZERO,
            Some(incr) => self.largest_incremental_bytes(workload) / incr.propagation_window,
        };
        full_rate.max(incr_rate)
    }

    /// Bytes stored by one complete cycle: a full plus its incrementals.
    pub fn cycle_bytes(&self, workload: &Workload) -> Bytes {
        let mut total = workload.data_capacity();
        if let Some(incr) = &self.incremental {
            for k in 1..=incr.count {
                total += self.incremental_bytes(workload, k);
            }
        }
        total
    }

    /// Capacity the backup device must hold: `retCnt` cycles plus one
    /// extra full.
    pub fn required_capacity(&self, workload: &Workload) -> Bytes {
        self.cycle_bytes(workload) * self.full.retention_count() as f64 + workload.data_capacity()
    }

    pub(crate) fn arrival_period(&self) -> TimeDelta {
        match &self.incremental {
            None => self.full.accumulation_window(),
            Some(incr) => incr.accumulation_window,
        }
    }

    pub(crate) fn worst_own_lag(&self) -> TimeDelta {
        let full_latency = self.full.transit_lag();
        let latency = match &self.incremental {
            None => full_latency,
            Some(incr) => full_latency.max(incr.hold_window + incr.propagation_window),
        };
        latency + self.arrival_period()
    }

    /// Bytes that must be restored to recover `needed` bytes of data. A
    /// whole-dataset restore needs the newest full plus, in the worst
    /// case, the incrementals on top of it.
    pub fn worst_restore_bytes(&self, workload: &Workload, needed: Bytes) -> Bytes {
        if needed < workload.data_capacity() {
            // Object-level restore reads just the object (plus its
            // incremental deltas, which are negligible by comparison).
            return needed;
        }
        let incrementals = match &self.incremental {
            None => Bytes::ZERO,
            Some(incr) => match incr.mode {
                IncrementalMode::Cumulative => self.largest_incremental_bytes(workload),
                IncrementalMode::Differential => {
                    self.incremental_bytes(workload, 1) * incr.count as f64
                }
            },
        };
        needed + incrementals
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let source = ctx.source_host.ok_or_else(|| {
            Error::invalid(
                "backup.source",
                "a backup level needs a source copy to read",
            )
        })?;
        let rate = self.required_bandwidth(ctx.workload);

        let mut demands = Vec::with_capacity(2 + ctx.transports.len());
        // Reads on the source array; no capacity (consistency comes from
        // the PiT level above).
        demands.push(DemandContribution::bandwidth(source, rate));
        // Writes plus retention capacity on the backup device.
        let mut host = DemandContribution::bandwidth(ctx.host, rate);
        host.capacity = self.required_capacity(ctx.workload);
        demands.push(host);
        // Any interconnect in between carries the stream.
        for &transport in ctx.transports {
            demands.push(DemandContribution::bandwidth(transport, rate));
        }
        Ok(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;

    fn weekly_full() -> ProtectionParams {
        ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_weeks(1.0))
            .propagation_window(TimeDelta::from_hours(48.0))
            .hold_window(TimeDelta::from_hours(1.0))
            .retention_count(4)
            .build()
            .unwrap()
    }

    fn daily_incrementals(mode: IncrementalMode) -> IncrementalPolicy {
        IncrementalPolicy {
            mode,
            accumulation_window: TimeDelta::from_hours(24.0),
            propagation_window: TimeDelta::from_hours(12.0),
            hold_window: TimeDelta::from_hours(1.0),
            count: 5,
        }
    }

    fn ctx(workload: &crate::workload::Workload) -> LevelContext<'_> {
        LevelContext {
            workload,
            level_index: 2,
            source_host: Some(DeviceId(0)),
            host: DeviceId(1),
            transports: &[],
            prev_retention_window: None,
        }
    }

    #[test]
    fn baseline_full_only_matches_paper_numbers() {
        let workload = crate::presets::cello_workload();
        let backup = Backup::full_only(weekly_full()).unwrap();
        // 1360 GiB over 48 hours ≈ 8.06 MiB/s (paper: 8.1 MB/s).
        let bw = backup.required_bandwidth(&workload);
        assert!((bw.as_mib_per_sec() - 8.06).abs() < 0.01);
        // 4 cycles + 1 extra full = 5 × 1360 GiB = 6.64 TiB (paper 6.6 TB).
        let cap = backup.required_capacity(&workload);
        assert!((cap.as_tib() - 6.64).abs() < 0.01);
        // Worst-case lag 1 wk + 1 hr + 48 hr = 217 hr (paper Table 6).
        assert!((backup.worst_own_lag().as_hours() - 217.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_incrementals_grow_and_lag_matches_table_7() {
        let workload = crate::presets::cello_workload();
        let backup = Backup::with_incrementals(
            weekly_full(),
            daily_incrementals(IncrementalMode::Cumulative),
        )
        .unwrap();
        let first = backup.incremental_bytes(&workload, 1);
        let last = backup.incremental_bytes(&workload, 5);
        assert!(
            last > first,
            "cumulative incrementals grow within the cycle"
        );
        // Worst lag: full completion latency (1 + 48) + daily arrivals
        // (24) = 73 hr, Table 7's F+I data loss for array failures.
        assert!((backup.worst_own_lag().as_hours() - 73.0).abs() < 1e-9);
    }

    #[test]
    fn differential_incrementals_stay_flat() {
        let workload = crate::presets::cello_workload();
        let backup = Backup::with_incrementals(
            weekly_full(),
            daily_incrementals(IncrementalMode::Differential),
        )
        .unwrap();
        let first = backup.incremental_bytes(&workload, 1);
        let last = backup.incremental_bytes(&workload, 5);
        assert_eq!(first, last);
    }

    #[test]
    fn restore_needs_full_plus_incrementals() {
        let workload = crate::presets::cello_workload();
        let full_only = Backup::full_only(weekly_full()).unwrap();
        let with_incr = Backup::with_incrementals(
            weekly_full(),
            daily_incrementals(IncrementalMode::Cumulative),
        )
        .unwrap();
        let cap = workload.data_capacity();
        assert_eq!(full_only.worst_restore_bytes(&workload, cap), cap);
        assert!(with_incr.worst_restore_bytes(&workload, cap) > cap);
        // Object restores read only the object.
        let object = Bytes::from_mib(1.0);
        assert_eq!(with_incr.worst_restore_bytes(&workload, object), object);
    }

    #[test]
    fn demands_land_on_source_and_destination() {
        let workload = crate::presets::cello_workload();
        let backup = Backup::full_only(weekly_full()).unwrap();
        let demands = backup.demands(&ctx(&workload)).unwrap();
        assert_eq!(demands.len(), 2);
        // Source: bandwidth only.
        assert_eq!(demands[0].device, DeviceId(0));
        assert!(demands[0].bandwidth.value() > 0.0);
        assert_eq!(demands[0].capacity, Bytes::ZERO);
        // Destination: bandwidth + capacity.
        assert_eq!(demands[1].device, DeviceId(1));
        assert_eq!(demands[1].bandwidth, demands[0].bandwidth);
        assert!(demands[1].capacity > Bytes::ZERO);
    }

    #[test]
    fn rejects_zero_propagation_window() {
        let bad = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_weeks(1.0))
            .propagation_window(TimeDelta::ZERO)
            .retention_count(4)
            .build()
            .unwrap();
        assert!(Backup::full_only(bad).is_err());
    }

    #[test]
    fn rejects_incrementals_that_do_not_fit() {
        let mut incr = daily_incrementals(IncrementalMode::Cumulative);
        incr.count = 8; // 8 days of dailies inside a one-week cycle
        let err = Backup::with_incrementals(weekly_full(), incr).unwrap_err();
        assert!(err.to_string().contains("fit"));
    }

    #[test]
    fn rejects_zero_count_incrementals() {
        let mut incr = daily_incrementals(IncrementalMode::Cumulative);
        incr.count = 0;
        assert!(Backup::with_incrementals(weekly_full(), incr).is_err());
    }

    #[test]
    fn backup_without_source_is_rejected() {
        let workload = crate::presets::cello_workload();
        let backup = Backup::full_only(weekly_full()).unwrap();
        let mut context = ctx(&workload);
        context.source_host = None;
        assert!(backup.demands(&context).is_err());
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for IncrementalMode {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                IncrementalMode::Cumulative => hasher.write_u8(0),
                IncrementalMode::Differential => hasher.write_u8(1),
            }
        }
    }

    impl Fingerprintable for IncrementalPolicy {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.mode.fingerprint_into(hasher);
            self.accumulation_window.fingerprint_into(hasher);
            self.propagation_window.fingerprint_into(hasher);
            self.hold_window.fingerprint_into(hasher);
            self.count.fingerprint_into(hasher);
        }
    }

    impl Fingerprintable for Backup {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.full.fingerprint_into(hasher);
            self.incremental.fingerprint_into(hasher);
        }
    }
}

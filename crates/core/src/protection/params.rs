//! The common configuration parameter set shared by every data protection
//! technique (§3.2.1).
//!
//! The paper's key insight is that backup, mirroring, point-in-time copies
//! and vaulting all reduce to the *creation, retention, and propagation of
//! retrieval points* (RPs), so a single parameter vocabulary describes
//! them all:
//!
//! * every `accW` (accumulation window), a new RP becomes eligible,
//! * it waits `holdW` (hold window) before transmission,
//! * it is transferred during `propW` (propagation window),
//! * the level retains `retCnt` RPs, one per `cyclePer`, for `retW` each.

use crate::error::Error;
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a retrieval point is kept / transmitted as a complete copy of
/// the dataset or as only the changed portion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyRepresentation {
    /// A complete copy of the dataset.
    Full,
    /// Only the unique updates since the previous RP.
    Partial,
}

impl fmt::Display for CopyRepresentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyRepresentation::Full => f.write_str("full"),
            CopyRepresentation::Partial => f.write_str("partial"),
        }
    }
}

/// The window/retention parameter set describing one protection level.
///
/// Construct with [`ProtectionParams::builder`]. Time relationships are
/// validated per the paper's composition conventions: `propW ≤ accW` (the
/// level must keep up with RP arrivals) and
/// `retW ≥ (retCnt − 1) × cyclePer` (retained RPs must actually span the
/// advertised retention).
///
/// ```
/// use ssdep_core::protection::ProtectionParams;
/// use ssdep_core::units::TimeDelta;
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// // The paper's tape backup level: weekly fulls over a 48-hour window,
/// // held one hour, four cycles retained.
/// let backup = ProtectionParams::builder()
///     .accumulation_window(TimeDelta::from_weeks(1.0))
///     .propagation_window(TimeDelta::from_hours(48.0))
///     .hold_window(TimeDelta::from_hours(1.0))
///     .retention_count(4)
///     .build()?;
/// assert_eq!(backup.cycle_period(), TimeDelta::from_weeks(1.0));
/// assert_eq!(backup.retention_span(), TimeDelta::from_weeks(3.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionParams {
    accumulation_window: TimeDelta,
    propagation_window: TimeDelta,
    hold_window: TimeDelta,
    cycle_count: u32,
    cycle_period: TimeDelta,
    retention_count: u32,
    retention_window: TimeDelta,
    copy_representation: CopyRepresentation,
    propagation_representation: CopyRepresentation,
}

impl ProtectionParams {
    /// Starts building a parameter set.
    ///
    /// Defaults: zero hold window, `propW = accW` (continuous
    /// propagation), one representation per cycle (`cycleCnt = 1`),
    /// `cyclePer = accW`, `retW = retCnt × cyclePer`, full copy and
    /// propagation representations.
    pub fn builder() -> ProtectionParamsBuilder {
        ProtectionParamsBuilder::default()
    }

    /// Period over which updates are batched to create an RP (`accW`).
    pub fn accumulation_window(&self) -> TimeDelta {
        self.accumulation_window
    }

    /// RP transmission period (`propW`).
    pub fn propagation_window(&self) -> TimeDelta {
        self.propagation_window
    }

    /// Delay between an RP becoming eligible and its transmission
    /// starting (`holdW`).
    pub fn hold_window(&self) -> TimeDelta {
        self.hold_window
    }

    /// Number of secondary windows between primary windows (`cycleCnt`).
    pub fn cycle_count(&self) -> u32 {
        self.cycle_count
    }

    /// Length of one full policy cycle (`cyclePer`).
    pub fn cycle_period(&self) -> TimeDelta {
        self.cycle_period
    }

    /// Number of cycles of RPs simultaneously retained (`retCnt`).
    pub fn retention_count(&self) -> u32 {
        self.retention_count
    }

    /// How long one RP is retained (`retW`).
    pub fn retention_window(&self) -> TimeDelta {
        self.retention_window
    }

    /// How RPs are stored at this level (`copyRep`).
    pub fn copy_representation(&self) -> CopyRepresentation {
        self.copy_representation
    }

    /// How RPs are transmitted to this level (`propRep`).
    pub fn propagation_representation(&self) -> CopyRepresentation {
        self.propagation_representation
    }

    /// The *transit lag* this level adds to RPs passing through it on the
    /// way to lower levels: `holdW + propW` (Figure 3's minimum
    /// out-of-dateness).
    pub fn transit_lag(&self) -> TimeDelta {
        self.hold_window + self.propagation_window
    }

    /// The worst-case out-of-dateness contributed by this level just
    /// before a new RP arrives: `holdW + propW + accW`.
    pub fn worst_own_lag(&self) -> TimeDelta {
        self.transit_lag() + self.accumulation_window
    }

    /// The span of time covered by the RPs *guaranteed* to be retained:
    /// `(retCnt − 1) × cyclePer`.
    pub fn retention_span(&self) -> TimeDelta {
        self.cycle_period * (self.retention_count.saturating_sub(1)) as f64
    }

    /// Re-runs the builder's validation over a possibly-deserialized
    /// parameter set (serde bypasses [`ProtectionParams::builder`], so a
    /// JSON spec can carry relationships the builder would reject).
    ///
    /// # Errors
    ///
    /// As [`ProtectionParamsBuilder::build`].
    pub fn validate(&self) -> Result<(), Error> {
        ProtectionParams::builder()
            .accumulation_window(self.accumulation_window)
            .propagation_window(self.propagation_window)
            .hold_window(self.hold_window)
            .cycle_count(self.cycle_count)
            .cycle_period(self.cycle_period)
            .retention_count(self.retention_count)
            .retention_window(self.retention_window)
            .copy_representation(self.copy_representation)
            .propagation_representation(self.propagation_representation)
            .build()
            .map(|_| ())
    }
}

/// Incremental builder for [`ProtectionParams`].
#[derive(Debug, Clone, Default)]
pub struct ProtectionParamsBuilder {
    accumulation_window: Option<TimeDelta>,
    propagation_window: Option<TimeDelta>,
    hold_window: Option<TimeDelta>,
    cycle_count: Option<u32>,
    cycle_period: Option<TimeDelta>,
    retention_count: Option<u32>,
    retention_window: Option<TimeDelta>,
    copy_representation: Option<CopyRepresentation>,
    propagation_representation: Option<CopyRepresentation>,
}

impl ProtectionParamsBuilder {
    /// Sets the accumulation window (`accW`, required).
    pub fn accumulation_window(mut self, window: TimeDelta) -> Self {
        self.accumulation_window = Some(window);
        self
    }

    /// Sets the propagation window (`propW`, defaults to `accW`).
    pub fn propagation_window(mut self, window: TimeDelta) -> Self {
        self.propagation_window = Some(window);
        self
    }

    /// Sets the hold window (`holdW`, defaults to zero).
    pub fn hold_window(mut self, window: TimeDelta) -> Self {
        self.hold_window = Some(window);
        self
    }

    /// Sets the cycle count (`cycleCnt`, defaults to 1).
    pub fn cycle_count(mut self, count: u32) -> Self {
        self.cycle_count = Some(count);
        self
    }

    /// Sets the cycle period (`cyclePer`, defaults to `accW`).
    pub fn cycle_period(mut self, period: TimeDelta) -> Self {
        self.cycle_period = Some(period);
        self
    }

    /// Sets the retention count (`retCnt`, required, ≥ 1).
    pub fn retention_count(mut self, count: u32) -> Self {
        self.retention_count = Some(count);
        self
    }

    /// Sets the retention window (`retW`, defaults to
    /// `retCnt × cyclePer`).
    pub fn retention_window(mut self, window: TimeDelta) -> Self {
        self.retention_window = Some(window);
        self
    }

    /// Sets how RPs are stored (`copyRep`, defaults to full).
    pub fn copy_representation(mut self, rep: CopyRepresentation) -> Self {
        self.copy_representation = Some(rep);
        self
    }

    /// Sets how RPs are transmitted (`propRep`, defaults to full).
    pub fn propagation_representation(mut self, rep: CopyRepresentation) -> Self {
        self.propagation_representation = Some(rep);
        self
    }

    /// Validates the parameter relationships and builds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a window is negative or
    /// non-finite, `accW` or `retCnt` is missing, `accW` is zero,
    /// `propW > accW` (the level would fall behind), `cyclePer < accW`,
    /// or `retW < (retCnt − 1) × cyclePer`.
    pub fn build(self) -> Result<ProtectionParams, Error> {
        let accumulation_window = self
            .accumulation_window
            .ok_or_else(|| Error::invalid("params.accW", "missing"))?;
        if !(accumulation_window.value() > 0.0 && accumulation_window.is_finite()) {
            return Err(Error::invalid("params.accW", "must be positive and finite"));
        }
        let propagation_window = self.propagation_window.unwrap_or(accumulation_window);
        let hold_window = self.hold_window.unwrap_or(TimeDelta::ZERO);
        let cycle_count = self.cycle_count.unwrap_or(1);
        let cycle_period = self.cycle_period.unwrap_or(accumulation_window);
        let retention_count = self
            .retention_count
            .ok_or_else(|| Error::invalid("params.retCnt", "missing"))?;
        if retention_count == 0 {
            return Err(Error::invalid(
                "params.retCnt",
                "must retain at least one RP",
            ));
        }
        if cycle_count == 0 {
            return Err(Error::invalid("params.cycleCnt", "must be at least 1"));
        }
        for (name, window) in [
            ("params.propW", propagation_window),
            ("params.holdW", hold_window),
            ("params.cyclePer", cycle_period),
        ] {
            if !(window.value() >= 0.0 && window.is_finite()) {
                return Err(Error::invalid(name, "must be non-negative and finite"));
            }
        }
        if propagation_window > accumulation_window {
            return Err(Error::invalid(
                "params.propW",
                "must not exceed accW, or the level cannot keep up with RP arrivals",
            ));
        }
        if cycle_period < accumulation_window {
            return Err(Error::invalid(
                "params.cyclePer",
                "a cycle must span at least one accumulation window",
            ));
        }
        let retention_window = self
            .retention_window
            .unwrap_or(cycle_period * retention_count as f64);
        if !(retention_window.value() >= 0.0 && retention_window.is_finite()) {
            return Err(Error::invalid(
                "params.retW",
                "must be non-negative and finite",
            ));
        }
        let min_retention = cycle_period * (retention_count - 1) as f64;
        if retention_window < min_retention {
            return Err(Error::invalid(
                "params.retW",
                format!(
                    "retaining {retention_count} RPs spaced {cycle_period} apart requires \
                     retW >= {min_retention}"
                ),
            ));
        }
        Ok(ProtectionParams {
            accumulation_window,
            propagation_window,
            hold_window,
            cycle_count,
            cycle_period,
            retention_count,
            retention_window,
            copy_representation: self.copy_representation.unwrap_or(CopyRepresentation::Full),
            propagation_representation: self
                .propagation_representation
                .unwrap_or(CopyRepresentation::Full),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split_mirror() -> ProtectionParams {
        ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(12.0))
            .propagation_window(TimeDelta::ZERO)
            .retention_count(4)
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_fill_in_derived_values() {
        let p = split_mirror();
        assert_eq!(p.hold_window(), TimeDelta::ZERO);
        assert_eq!(p.cycle_count(), 1);
        assert_eq!(p.cycle_period(), TimeDelta::from_hours(12.0));
        assert_eq!(p.retention_window(), TimeDelta::from_days(2.0));
        assert_eq!(p.copy_representation(), CopyRepresentation::Full);
    }

    #[test]
    fn lag_helpers_match_figure_3() {
        let backup = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_weeks(1.0))
            .propagation_window(TimeDelta::from_hours(48.0))
            .hold_window(TimeDelta::from_hours(1.0))
            .retention_count(4)
            .build()
            .unwrap();
        assert_eq!(backup.transit_lag(), TimeDelta::from_hours(49.0));
        assert_eq!(backup.worst_own_lag(), TimeDelta::from_hours(217.0));
        assert_eq!(backup.retention_span(), TimeDelta::from_weeks(3.0));
    }

    #[test]
    fn vault_retention_spans_three_years() {
        let vault = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_weeks(4.0))
            .propagation_window(TimeDelta::from_hours(24.0))
            .hold_window(TimeDelta::from_weeks(4.0) + TimeDelta::from_hours(12.0))
            .retention_count(39)
            .build()
            .unwrap();
        assert_eq!(vault.retention_span(), TimeDelta::from_weeks(152.0));
        // retW defaults to retCnt × cyclePer = 156 weeks ≈ 3 years.
        assert!((vault.retention_window().as_years() - 2.99).abs() < 0.01);
    }

    #[test]
    fn single_rp_has_zero_retention_span() {
        let p = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(1.0))
            .retention_count(1)
            .build()
            .unwrap();
        assert_eq!(p.retention_span(), TimeDelta::ZERO);
    }

    #[test]
    fn rejects_propagation_longer_than_accumulation() {
        let err = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(1.0))
            .propagation_window(TimeDelta::from_hours(2.0))
            .retention_count(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("propW"));
    }

    #[test]
    fn rejects_cycle_shorter_than_accumulation() {
        let err = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(4.0))
            .cycle_period(TimeDelta::from_hours(2.0))
            .retention_count(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cyclePer"));
    }

    #[test]
    fn rejects_retention_window_shorter_than_span() {
        let err = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(12.0))
            .retention_count(4)
            .retention_window(TimeDelta::from_hours(12.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("retW"));
    }

    #[test]
    fn rejects_zero_retention_and_missing_fields() {
        assert!(ProtectionParams::builder().build().is_err());
        let err = ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(1.0))
            .retention_count(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("retCnt"));
    }

    #[test]
    fn representation_display() {
        assert_eq!(CopyRepresentation::Full.to_string(), "full");
        assert_eq!(CopyRepresentation::Partial.to_string(), "partial");
    }

    #[test]
    fn serde_roundtrip() {
        let p = split_mirror();
        let json = serde_json::to_string(&p).unwrap();
        let back: ProtectionParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for CopyRepresentation {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                CopyRepresentation::Full => hasher.write_u8(0),
                CopyRepresentation::Partial => hasher.write_u8(1),
            }
        }
    }

    impl Fingerprintable for ProtectionParams {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.accumulation_window.fingerprint_into(hasher);
            self.propagation_window.fingerprint_into(hasher);
            self.hold_window.fingerprint_into(hasher);
            self.cycle_count.fingerprint_into(hasher);
            self.cycle_period.fingerprint_into(hasher);
            self.retention_count.fingerprint_into(hasher);
            self.retention_window.fingerprint_into(hasher);
            self.copy_representation.fingerprint_into(hasher);
            self.propagation_representation.fingerprint_into(hasher);
        }
    }
}

//! Inter-array mirroring: synchronous, asynchronous, and batched
//! asynchronous (§2, §3.2.3).
//!
//! Mirroring keeps an isolated copy of the *current* data on another
//! array, placing bandwidth demands on the interconnect links and the
//! destination array and a full dataset's capacity demand on the
//! destination. The protocols differ in how much update traffic they
//! push:
//!
//! * **synchronous** — every update is applied remotely before write
//!   completion, so the links must absorb the *peak* update rate;
//! * **asynchronous** — updates propagate in the background from a small
//!   buffer, so the links see the *average* update rate;
//! * **batched asynchronous** — overwrites within an accumulation window
//!   coalesce, so the links see only the *unique* update rate of the
//!   window, smoothed over the propagation window.
//!
//! Per the paper, inter-array mirroring uses the array's alternate
//! (mirror) interface, so no demand lands on the source array's client
//! interface; asynchronous buffers are a small fraction of array cache
//! and are not modeled.

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use crate::units::{Bandwidth, TimeDelta};
use serde::{Deserialize, Serialize};

/// Which mirroring protocol a [`RemoteMirror`] level runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MirrorMode {
    /// Updates applied to the secondary before write completion.
    Synchronous,
    /// Updates propagated in the background; `write_lag` bounds how far
    /// the secondary trails the primary (the buffer drain time).
    Asynchronous {
        /// Worst-case staleness of the secondary copy.
        write_lag: TimeDelta,
    },
    /// Updates coalesced over an accumulation window and sent as an
    /// atomic batch (e.g. Seneca / SnapMirror).
    Batched {
        /// Window/retention parameters of the batch schedule.
        params: ProtectionParams,
    },
}

/// An inter-array mirroring level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteMirror {
    mode: MirrorMode,
}

impl RemoteMirror {
    /// Creates a synchronous mirror.
    pub fn synchronous() -> RemoteMirror {
        RemoteMirror {
            mode: MirrorMode::Synchronous,
        }
    }

    /// Creates an asynchronous (write-behind) mirror whose secondary
    /// trails the primary by at most `write_lag`.
    pub fn asynchronous(write_lag: TimeDelta) -> RemoteMirror {
        RemoteMirror {
            mode: MirrorMode::Asynchronous { write_lag },
        }
    }

    /// Creates a batched asynchronous mirror with the given batch
    /// schedule.
    pub fn batched(params: ProtectionParams) -> RemoteMirror {
        RemoteMirror {
            mode: MirrorMode::Batched { params },
        }
    }

    /// The protocol this mirror runs.
    pub fn mode(&self) -> &MirrorMode {
        &self.mode
    }

    /// The batch schedule, for batched mirrors.
    pub fn params(&self) -> Option<&ProtectionParams> {
        match &self.mode {
            MirrorMode::Batched { params } => Some(params),
            _ => None,
        }
    }

    pub(crate) fn name(&self) -> &'static str {
        match self.mode {
            MirrorMode::Synchronous => "sync mirror",
            MirrorMode::Asynchronous { .. } => "async mirror",
            MirrorMode::Batched { .. } => "async batch mirror",
        }
    }

    pub(crate) fn worst_own_lag(&self) -> TimeDelta {
        match &self.mode {
            MirrorMode::Synchronous => TimeDelta::ZERO,
            MirrorMode::Asynchronous { write_lag } => *write_lag,
            MirrorMode::Batched { params } => params.worst_own_lag(),
        }
    }

    pub(crate) fn transit_lag(&self) -> TimeDelta {
        match &self.mode {
            MirrorMode::Synchronous => TimeDelta::ZERO,
            MirrorMode::Asynchronous { write_lag } => *write_lag,
            MirrorMode::Batched { params } => params.transit_lag(),
        }
    }

    pub(crate) fn arrival_period(&self) -> TimeDelta {
        match &self.mode {
            MirrorMode::Synchronous | MirrorMode::Asynchronous { .. } => TimeDelta::ZERO,
            MirrorMode::Batched { params } => params.accumulation_window(),
        }
    }

    pub(crate) fn retention_span(&self) -> TimeDelta {
        match &self.mode {
            MirrorMode::Synchronous | MirrorMode::Asynchronous { .. } => TimeDelta::ZERO,
            MirrorMode::Batched { params } => params.retention_span(),
        }
    }

    /// The sustained rate the mirror pushes over the interconnect.
    pub fn propagation_rate(&self, workload: &crate::workload::Workload) -> Bandwidth {
        match &self.mode {
            MirrorMode::Synchronous => workload.peak_update_rate(),
            MirrorMode::Asynchronous { .. } => workload.avg_update_rate(),
            MirrorMode::Batched { params } => {
                let acc = params.accumulation_window();
                let batch = workload.unique_bytes(acc);
                let prop = params.propagation_window();
                let window = if prop > TimeDelta::ZERO { prop } else { acc };
                batch / window
            }
        }
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        if ctx.source_host.is_none() {
            return Err(Error::invalid(
                "remoteMirror.source",
                "a mirror level needs a primary copy to mirror",
            ));
        }
        let rate = self.propagation_rate(ctx.workload);

        let mut demands = Vec::with_capacity(1 + ctx.transports.len());
        // Destination array: mirror writes plus a full dataset of
        // capacity.
        let mut host = DemandContribution::bandwidth(ctx.host, rate);
        host.capacity = ctx.workload.data_capacity();
        demands.push(host);
        // Every interconnect link carries the propagation stream.
        for &transport in ctx.transports {
            demands.push(DemandContribution::bandwidth(transport, rate));
        }
        Ok(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::Bytes;

    fn one_minute_batch() -> ProtectionParams {
        ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_minutes(1.0))
            .retention_count(1)
            .build()
            .unwrap()
    }

    fn ctx<'a>(
        workload: &'a crate::workload::Workload,
        transports: &'a [DeviceId],
    ) -> LevelContext<'a> {
        LevelContext {
            workload,
            level_index: 1,
            source_host: Some(DeviceId(0)),
            host: DeviceId(1),
            transports,
            prev_retention_window: None,
        }
    }

    #[test]
    fn sync_pushes_peak_async_pushes_average_batch_pushes_unique() {
        let workload = crate::presets::cello_workload();
        let sync = RemoteMirror::synchronous().propagation_rate(&workload);
        let asynch =
            RemoteMirror::asynchronous(TimeDelta::from_minutes(1.0)).propagation_rate(&workload);
        let batch = RemoteMirror::batched(one_minute_batch()).propagation_rate(&workload);
        assert!(sync > asynch, "sync must absorb bursts");
        assert!(asynch > batch, "batching coalesces overwrites");
        assert!((sync.as_kib_per_sec() - 7990.0).abs() < 1e-6);
        assert!((asynch.as_kib_per_sec() - 799.0).abs() < 1e-6);
        assert!((batch.as_kib_per_sec() - 727.0).abs() < 1e-6);
    }

    #[test]
    fn demands_cover_destination_and_every_link() {
        let workload = crate::presets::cello_workload();
        let links = [DeviceId(2), DeviceId(3)];
        let demands = RemoteMirror::batched(one_minute_batch())
            .demands(&ctx(&workload, &links))
            .unwrap();
        assert_eq!(demands.len(), 3);
        assert_eq!(demands[0].device, DeviceId(1));
        assert_eq!(demands[0].capacity, Bytes::from_gib(1360.0));
        assert_eq!(demands[1].device, DeviceId(2));
        assert_eq!(demands[1].bandwidth, demands[0].bandwidth);
        assert_eq!(demands[2].capacity, Bytes::ZERO);
    }

    #[test]
    fn lag_semantics_per_mode() {
        assert_eq!(RemoteMirror::synchronous().worst_own_lag(), TimeDelta::ZERO);
        let asynch = RemoteMirror::asynchronous(TimeDelta::from_secs(30.0));
        assert_eq!(asynch.worst_own_lag(), TimeDelta::from_secs(30.0));
        // One-minute batches, propagated within the next minute: worst
        // staleness two minutes — the paper's what-if DL of 0.03 hr.
        let batch = RemoteMirror::batched(one_minute_batch());
        assert_eq!(batch.worst_own_lag(), TimeDelta::from_minutes(2.0));
    }

    #[test]
    fn mirror_without_source_is_rejected() {
        let workload = crate::presets::cello_workload();
        let mut context = ctx(&workload, &[]);
        context.source_host = None;
        let err = RemoteMirror::synchronous().demands(&context).unwrap_err();
        assert!(err.to_string().contains("mirror"));
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(RemoteMirror::synchronous().name(), "sync mirror");
        assert_eq!(
            RemoteMirror::asynchronous(TimeDelta::from_secs(1.0)).name(),
            "async mirror"
        );
        assert_eq!(
            RemoteMirror::batched(one_minute_batch()).name(),
            "async batch mirror"
        );
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for MirrorMode {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                MirrorMode::Synchronous => hasher.write_u8(0),
                MirrorMode::Asynchronous { write_lag } => {
                    hasher.write_u8(1);
                    write_lag.fingerprint_into(hasher);
                }
                MirrorMode::Batched { params } => {
                    hasher.write_u8(2);
                    params.fingerprint_into(hasher);
                }
            }
        }
    }

    impl Fingerprintable for RemoteMirror {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.mode.fingerprint_into(hasher);
        }
    }
}

//! Erasure-coded k-out-of-n protection with deterministic repair-time
//! math (Aggarwal et al., PAPERS.md).
//!
//! The dataset is encoded into `n` fragments of which any `k` suffice to
//! reconstruct it, giving a storage blow-up of `n / k` instead of the
//! full-copy factor of mirroring. The model reuses the common
//! [`ProtectionParams`] vocabulary for its capture schedule (an encoded
//! retrieval point is cut every accumulation window, propagated over the
//! propagation window, and `retCnt` encodings are retained), and adds the
//! repair-time distinction that matters downstream:
//!
//! * **parallel repair** streams the `k` needed fragments concurrently,
//!   dividing the transfer time of a restore by `k`;
//! * **serial repair** reads fragments one after another, so the restore
//!   transfer runs at single-stream speed.
//!
//! [`crate::analysis::recovery`] consumes this via
//! [`Technique::repair_parallelism`](crate::protection::Technique::repair_parallelism).

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use serde::{Deserialize, Serialize};

/// How a k-out-of-n level reads its fragments during a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// All `k` needed fragments stream concurrently: the restore transfer
    /// time is divided by `k`.
    Parallel,
    /// Fragments are read one after another at single-stream speed.
    Serial,
}

/// An erasure-coded protection level: any `k` of `n` fragments
/// reconstruct the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KOutOfN {
    data_fragments: u32,
    total_fragments: u32,
    params: ProtectionParams,
    repair: RepairStrategy,
}

impl KOutOfN {
    /// Creates a k-out-of-n level: `data_fragments` (k) of
    /// `total_fragments` (n) reconstruct the dataset, with the given
    /// capture schedule and repair strategy.
    pub fn new(
        data_fragments: u32,
        total_fragments: u32,
        params: ProtectionParams,
        repair: RepairStrategy,
    ) -> KOutOfN {
        KOutOfN {
            data_fragments,
            total_fragments,
            params,
            repair,
        }
    }

    /// The number of fragments needed to reconstruct the dataset (k).
    pub fn data_fragments(&self) -> u32 {
        self.data_fragments
    }

    /// The total number of fragments stored (n).
    pub fn total_fragments(&self) -> u32 {
        self.total_fragments
    }

    /// The level's window/retention parameters.
    pub fn params(&self) -> &ProtectionParams {
        &self.params
    }

    /// The configured repair strategy.
    pub fn repair(&self) -> RepairStrategy {
        self.repair
    }

    /// The storage blow-up factor `n / k`.
    pub fn expansion_factor(&self) -> f64 {
        f64::from(self.total_fragments) / f64::from(self.data_fragments)
    }

    /// How many concurrent streams a restore reads with: `k` for
    /// [`RepairStrategy::Parallel`], one for [`RepairStrategy::Serial`].
    pub fn repair_parallelism(&self) -> f64 {
        match self.repair {
            RepairStrategy::Parallel => f64::from(self.data_fragments.max(1)),
            RepairStrategy::Serial => 1.0,
        }
    }

    /// Re-runs construction-time validation (serde bypasses the
    /// constructor, so a JSON spec can carry fragment counts the model
    /// cannot work with).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k` is zero or `n` does
    /// not exceed `k` (no redundancy), plus the common
    /// [`ProtectionParams::validate`] checks.
    pub fn validate(&self) -> Result<(), Error> {
        self.params.validate()?;
        if self.data_fragments == 0 {
            return Err(Error::invalid(
                "kOutOfN.dataFragments",
                "at least one data fragment is required to reconstruct the dataset",
            ));
        }
        if self.total_fragments <= self.data_fragments {
            return Err(Error::invalid(
                "kOutOfN.totalFragments",
                format!(
                    "must exceed the {} data fragment(s), or the encoding carries no redundancy",
                    self.data_fragments
                ),
            ));
        }
        Ok(())
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let source = ctx.source_host.ok_or_else(|| {
            Error::invalid(
                "kOutOfN.source",
                "a k-out-of-n level needs an upstream copy to encode from",
            )
        })?;
        let data = ctx.workload.data_capacity();
        let encoded = data * self.expansion_factor();
        // Each capture re-reads the window's updates from the source and
        // writes the encoded fragments over the propagation window (the
        // accumulation window when propagation is instantaneous).
        let window = if self.params.propagation_window().is_zero() {
            self.params.accumulation_window()
        } else {
            self.params.propagation_window()
        };
        let write_rate = encoded / window;

        let mut demands = Vec::with_capacity(2 + ctx.transports.len());
        let mut read = DemandContribution::none(source);
        read.bandwidth = data / self.params.accumulation_window();
        demands.push(read);

        let mut host = DemandContribution::bandwidth(ctx.host, write_rate);
        host.capacity = encoded * self.params.retention_count() as f64;
        demands.push(host);

        for &transport in ctx.transports {
            demands.push(DemandContribution::bandwidth(transport, write_rate));
        }
        Ok(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::TimeDelta;

    fn params() -> ProtectionParams {
        ProtectionParams::builder()
            .accumulation_window(TimeDelta::from_hours(24.0))
            .propagation_window(TimeDelta::from_hours(12.0))
            .retention_count(4)
            .build()
            .unwrap()
    }

    fn four_of_six() -> KOutOfN {
        KOutOfN::new(4, 6, params(), RepairStrategy::Parallel)
    }

    #[test]
    fn expansion_and_parallelism() {
        let t = four_of_six();
        assert!((t.expansion_factor() - 1.5).abs() < 1e-12);
        assert!((t.repair_parallelism() - 4.0).abs() < 1e-12);
        let serial = KOutOfN::new(4, 6, params(), RepairStrategy::Serial);
        assert!((serial.repair_parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_fragment_counts() {
        assert!(four_of_six().validate().is_ok());
        let no_data = KOutOfN::new(0, 6, params(), RepairStrategy::Parallel);
        let err = no_data.validate().unwrap_err();
        assert!(err.to_string().contains("kOutOfN.dataFragments"));
        let no_redundancy = KOutOfN::new(6, 6, params(), RepairStrategy::Serial);
        let err = no_redundancy.validate().unwrap_err();
        assert!(err.to_string().contains("kOutOfN.totalFragments"));
    }

    #[test]
    fn demands_scale_with_the_expansion_factor() {
        let workload = crate::presets::cello_workload();
        let ctx = LevelContext {
            workload: &workload,
            level_index: 1,
            source_host: Some(DeviceId(0)),
            host: DeviceId(1),
            transports: &[DeviceId(2)],
            prev_retention_window: None,
        };
        let demands = four_of_six().demands(&ctx).unwrap();
        assert_eq!(demands.len(), 3);
        let data = workload.data_capacity();
        // Host retains retCnt encodings of 1.5x the dataset.
        assert_eq!(demands[1].capacity, data * 1.5 * 4.0);
        // Encoded writes move 1.5x the dataset per 12-hour propagation.
        let expected = data * 1.5 / TimeDelta::from_hours(12.0);
        assert!((demands[1].bandwidth.value() - expected.value()).abs() < 1e-6);
        assert_eq!(demands[2].bandwidth, demands[1].bandwidth);
        // Source is read at dataset-per-accumulation-window speed.
        let read = data / TimeDelta::from_hours(24.0);
        assert!((demands[0].bandwidth.value() - read.value()).abs() < 1e-6);
    }

    #[test]
    fn missing_source_is_rejected() {
        let workload = crate::presets::cello_workload();
        let ctx = LevelContext {
            workload: &workload,
            level_index: 0,
            source_host: None,
            host: DeviceId(0),
            transports: &[],
            prev_retention_window: None,
        };
        assert!(four_of_six().demands(&ctx).is_err());
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for RepairStrategy {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            match self {
                RepairStrategy::Parallel => hasher.write_u8(0),
                RepairStrategy::Serial => hasher.write_u8(1),
            }
        }
    }

    impl Fingerprintable for KOutOfN {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.data_fragments.fingerprint_into(hasher);
            self.total_fragments.fingerprint_into(hasher);
            self.params.fingerprint_into(hasher);
            self.repair.fingerprint_into(hasher);
        }
    }
}

//! Copy-on-write virtual snapshots (§3.2.3).
//!
//! The model is the update-in-place variant: before a foreground write
//! lands, the old value is copied to a new location, costing one extra
//! read and one extra write per foreground write. Unmodified data shares
//! physical storage with the primary copy, so snapshots need only enough
//! additional capacity for the unique updates accumulated across the
//! retained snapshots' span.

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use serde::{Deserialize, Serialize};

/// A virtual-snapshot PiT level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualSnapshot {
    params: ProtectionParams,
}

impl VirtualSnapshot {
    /// Creates a virtual-snapshot level with the given window/retention
    /// parameters. A snapshot is taken every
    /// [`accumulation_window`](ProtectionParams::accumulation_window).
    pub fn new(params: ProtectionParams) -> VirtualSnapshot {
        VirtualSnapshot { params }
    }

    /// The level's window/retention parameters.
    pub fn params(&self) -> &ProtectionParams {
        &self.params
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let workload = ctx.workload;
        let mut contribution = DemandContribution::none(ctx.host);

        // Copy-on-write: an extra read + write for every foreground
        // write.
        contribution.bandwidth = workload.avg_update_rate() * 2.0;

        // Old values are kept for every block updated across the span the
        // retained snapshots cover (retention span plus the window
        // currently accumulating).
        let covered = self.params.retention_span() + self.params.accumulation_window();
        contribution.capacity = workload.unique_bytes(covered);

        Ok(vec![contribution])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::{Bandwidth, Bytes, TimeDelta};

    fn snapshot(ret: u32) -> VirtualSnapshot {
        VirtualSnapshot::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_hours(12.0))
                .propagation_window(TimeDelta::ZERO)
                .retention_count(ret)
                .build()
                .unwrap(),
        )
    }

    fn ctx(workload: &crate::workload::Workload) -> LevelContext<'_> {
        LevelContext {
            workload,
            level_index: 1,
            source_host: Some(DeviceId(0)),
            host: DeviceId(0),
            transports: &[],
            prev_retention_window: None,
        }
    }

    #[test]
    fn bandwidth_is_twice_the_update_rate() {
        let workload = crate::presets::cello_workload();
        let demands = snapshot(4).demands(&ctx(&workload)).unwrap();
        assert_eq!(
            demands[0].bandwidth,
            Bandwidth::from_kib_per_sec(2.0 * 799.0)
        );
    }

    #[test]
    fn capacity_is_far_below_full_mirrors() {
        // The whole point of Table 7's "snapshot" what-if: virtual
        // snapshots store only unique updates, not retCnt+1 full copies.
        let workload = crate::presets::cello_workload();
        let demands = snapshot(4).demands(&ctx(&workload)).unwrap();
        assert!(demands[0].capacity < Bytes::from_gib(100.0));
        assert!(demands[0].capacity > Bytes::ZERO);
    }

    #[test]
    fn capacity_grows_with_retention() {
        let workload = crate::presets::cello_workload();
        let few = snapshot(2).demands(&ctx(&workload)).unwrap()[0].capacity;
        let many = snapshot(12).demands(&ctx(&workload)).unwrap()[0].capacity;
        assert!(many > few);
    }

    #[test]
    fn capacity_never_exceeds_dataset() {
        let workload = crate::presets::cello_workload();
        let demands = snapshot(10_000).demands(&ctx(&workload)).unwrap();
        assert!(demands[0].capacity <= workload.data_capacity());
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for VirtualSnapshot {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.params.fingerprint_into(hasher);
        }
    }
}

//! Remote vaulting: off-site archival of backup media (§2, §3.2.3).
//!
//! Every accumulation window, the oldest full backup's media are shipped
//! (by the level's courier transport) to an off-site vault, which retains
//! `retCnt` fulls. When the vault's hold window is at least the backup
//! level's retention window, the tapes being shipped are exactly the ones
//! whose retention just expired — vaulting then costs the tape library
//! nothing. If media must leave *before* their backup retention expires
//! (`holdW < retW_backup`), the library has to cut an extra copy for each
//! shipment, adding read+write bandwidth and one full of capacity.

use crate::demands::DemandContribution;
use crate::error::Error;
use crate::protection::{LevelContext, ProtectionParams};
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};

/// A remote-vaulting level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteVault {
    params: ProtectionParams,
}

impl RemoteVault {
    /// Creates a vaulting level with the given window/retention
    /// parameters. One shipment leaves per
    /// [`accumulation_window`](ProtectionParams::accumulation_window).
    pub fn new(params: ProtectionParams) -> RemoteVault {
        RemoteVault { params }
    }

    /// The level's window/retention parameters.
    pub fn params(&self) -> &ProtectionParams {
        &self.params
    }

    /// Shipments dispatched per year.
    pub fn shipments_per_year(&self) -> f64 {
        TimeDelta::from_years(1.0) / self.params.accumulation_window()
    }

    /// Whether the tape library must cut extra copies because media ship
    /// before their backup retention expires.
    pub fn needs_extra_copy(&self, backup_retention: TimeDelta) -> bool {
        self.params.hold_window() < backup_retention
    }

    pub(crate) fn demands(&self, ctx: &LevelContext<'_>) -> Result<Vec<DemandContribution>, Error> {
        let source = ctx.source_host.ok_or_else(|| {
            Error::invalid(
                "vault.source",
                "a vault level needs a backup level to ship from",
            )
        })?;
        let data_capacity = ctx.workload.data_capacity();

        let mut demands = Vec::with_capacity(2 + ctx.transports.len());

        // Extra-copy rule on the source tape library.
        let mut source_demand = DemandContribution::none(source);
        if let Some(backup_retention) = ctx.prev_retention_window {
            if self.needs_extra_copy(backup_retention) {
                // One additional full copied (read + write on the same
                // library) once per shipment cycle.
                source_demand.bandwidth = (data_capacity / self.params.accumulation_window()) * 2.0;
                source_demand.capacity = data_capacity;
            }
        }
        demands.push(source_demand);

        // The vault shelf retains retCnt fulls. Only full backups are
        // sent off site.
        demands.push(DemandContribution::capacity(
            ctx.host,
            data_capacity * self.params.retention_count() as f64,
        ));

        // Courier transports carry the shipments (cost only — couriers
        // have no bandwidth constraint).
        for &transport in ctx.transports {
            let mut courier = DemandContribution::none(transport);
            courier.shipments_per_year = self.shipments_per_year();
            demands.push(courier);
        }
        Ok(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::units::{Bandwidth, Bytes};

    fn baseline_vault() -> RemoteVault {
        RemoteVault::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_weeks(4.0))
                .propagation_window(TimeDelta::from_hours(24.0))
                .hold_window(TimeDelta::from_weeks(4.0) + TimeDelta::from_hours(12.0))
                .retention_count(39)
                .build()
                .unwrap(),
        )
    }

    fn ctx<'a>(
        workload: &'a crate::workload::Workload,
        transports: &'a [DeviceId],
        backup_retention: TimeDelta,
    ) -> LevelContext<'a> {
        LevelContext {
            workload,
            level_index: 3,
            source_host: Some(DeviceId(1)),
            host: DeviceId(2),
            transports,
            prev_retention_window: Some(backup_retention),
        }
    }

    #[test]
    fn vault_capacity_is_39_fulls() {
        let workload = crate::presets::cello_workload();
        let couriers = [DeviceId(3)];
        let demands = baseline_vault()
            .demands(&ctx(&workload, &couriers, TimeDelta::from_weeks(4.0)))
            .unwrap();
        // Paper Table 5: 39 × 1360 GiB = 51.8 TiB.
        let vault_cap = demands[1].capacity;
        assert!((vault_cap.as_tib() - 51.8).abs() < 0.05);
    }

    #[test]
    fn matched_hold_window_costs_the_library_nothing() {
        let workload = crate::presets::cello_workload();
        let demands = baseline_vault()
            .demands(&ctx(&workload, &[], TimeDelta::from_weeks(4.0)))
            .unwrap();
        assert_eq!(demands[0].bandwidth, Bandwidth::ZERO);
        assert_eq!(demands[0].capacity, Bytes::ZERO);
    }

    #[test]
    fn early_shipment_requires_extra_copies() {
        // The "weekly vault" what-if: 12-hour hold, far below the
        // four-week backup retention.
        let weekly = RemoteVault::new(
            ProtectionParams::builder()
                .accumulation_window(TimeDelta::from_weeks(1.0))
                .propagation_window(TimeDelta::from_hours(24.0))
                .hold_window(TimeDelta::from_hours(12.0))
                .retention_count(156)
                .build()
                .unwrap(),
        );
        assert!(weekly.needs_extra_copy(TimeDelta::from_weeks(4.0)));
        let workload = crate::presets::cello_workload();
        let demands = weekly
            .demands(&ctx(&workload, &[], TimeDelta::from_weeks(4.0)))
            .unwrap();
        assert!(demands[0].bandwidth > Bandwidth::ZERO);
        assert_eq!(demands[0].capacity, workload.data_capacity());
    }

    #[test]
    fn shipments_per_year() {
        // Every four weeks → 13.03 shipments per year.
        assert!((baseline_vault().shipments_per_year() - 365.0 / 28.0).abs() < 1e-9);
    }

    #[test]
    fn courier_receives_shipment_demand() {
        let workload = crate::presets::cello_workload();
        let couriers = [DeviceId(3)];
        let demands = baseline_vault()
            .demands(&ctx(&workload, &couriers, TimeDelta::from_weeks(4.0)))
            .unwrap();
        let courier = demands
            .iter()
            .find(|d| d.device == DeviceId(3))
            .expect("courier demand present");
        assert!((courier.shipments_per_year - 365.0 / 28.0).abs() < 1e-9);
        assert_eq!(courier.bandwidth, Bandwidth::ZERO);
    }

    #[test]
    fn vault_without_source_is_rejected() {
        let workload = crate::presets::cello_workload();
        let mut context = ctx(&workload, &[], TimeDelta::from_weeks(4.0));
        context.source_host = None;
        assert!(baseline_vault().demands(&context).is_err());
    }
}

mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for RemoteVault {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.params.fingerprint_into(hasher);
        }
    }
}

//! Ready-made workloads, devices, and designs from the paper's case study
//! (§4, Tables 2–4 and Figure 1) plus its what-if variants (Table 7).
//!
//! These presets are both a convenience for users and the fixture set the
//! reproduction benchmarks run against.

// The preset modules carry file-level `#![allow(clippy::expect_used)]`:
// their constructors `expect` on builders fed only compile-time
// constants from the paper's tables, so a failure is a programming error
// in the preset itself, caught by the test suite. The panic-free
// obligation applies to user-supplied inputs, not these fixtures.
mod baseline;
mod devices;
mod scenarios;
mod whatif;
mod workloads;

pub use baseline::{baseline_design, paper_requirements};
pub use devices::{
    air_courier_spec, disk_backup_spec, oc3_links_spec, primary_array_spec, remote_array_spec,
    tape_library_spec, vault_spec, PRIMARY_LOCATION, REMOTE_LOCATION,
};
pub use scenarios::{paper_failure_scenarios, paper_scenario_catalog};
pub use whatif::{
    async_batch_mirror_design, disk_backup_design, k_out_of_n_design, k_out_of_n_design_with,
    snapshot_design, weekly_vault_daily_full_design, weekly_vault_design,
    weekly_vault_full_incremental_design, what_if_designs,
};
pub use workloads::cello_workload;

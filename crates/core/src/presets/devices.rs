//! Device presets (paper Table 4).

// Preset constructors `expect` on builders fed only compile-time
// constants from the paper's tables: a failure is a programming error in
// the preset itself, caught by the test suite. The panic-free obligation
// applies to user-supplied inputs, not these fixtures.
#![allow(clippy::expect_used)]
use crate::device::{CostModel, DeviceKind, DeviceSpec, SpareSpec};
use crate::failure::Location;
use crate::units::{Bandwidth, Bytes, Money, TimeDelta};

/// The primary data center location used by the case-study presets.
pub const PRIMARY_LOCATION: (&str, &str, &str) = ("us-west", "primary-site", "dc-1");

/// The remote location (vault / mirror target / recovery facility) used
/// by the case-study presets. A different region, so even a regional
/// disaster at the primary leaves it intact.
pub const REMOTE_LOCATION: (&str, &str, &str) = ("us-east", "remote-site", "dc-r");

fn primary_location() -> Location {
    Location::new(PRIMARY_LOCATION.0, PRIMARY_LOCATION.1, PRIMARY_LOCATION.2)
}

fn remote_location() -> Location {
    Location::new(REMOTE_LOCATION.0, REMOTE_LOCATION.1, REMOTE_LOCATION.2)
}

/// The mid-range primary disk array (modeled on HP's EVA): up to 256
/// 73-GB disks behind a 512 MB/s enclosure, RAID-1 internally (usable
/// capacity is half of raw), with a dedicated hot spare.
///
/// Cost model: `123297 + c × 17.2` dollars/year (`c` in GB).
pub fn primary_array_spec() -> DeviceSpec {
    array_spec("primary array", primary_location())
}

/// An identical array at the remote site, used as the target of
/// inter-array mirroring designs. No dedicated spare — it *is* the
/// redundancy.
pub fn remote_array_spec() -> DeviceSpec {
    array_spec("remote array", remote_location())
}

fn array_spec(name: &str, location: Location) -> DeviceSpec {
    let spare = if name == "primary array" {
        SpareSpec::dedicated(TimeDelta::from_hours(0.02), 1.0)
    } else {
        SpareSpec::None
    };
    DeviceSpec::builder(name, DeviceKind::disk_array(2.0))
        .location(location)
        .capacity_slots(256, Bytes::from_gib(73.0))
        .bandwidth_slots(256, Bandwidth::from_mib_per_sec(25.0))
        .enclosure_bandwidth(Bandwidth::from_mib_per_sec(512.0))
        .cost(
            CostModel::builder()
                .fixed(Money::from_dollars(123_297.0))
                .per_gib(Money::from_dollars(17.2))
                .build(),
        )
        .spare(spare)
        .build()
        .expect("array preset parameters are valid")
}

/// The tape library (modeled on HP's ESL9595): up to 500 400-GB LTO
/// cartridges and 16 60-MB/s drives behind a 240 MB/s enclosure, 0.01 hr
/// load+seek delay, with a dedicated hot spare.
///
/// Cost model: `98895 + c × 0.4 + b × 108.6` dollars/year
/// (`c` in GB, `b` in MB/s).
pub fn tape_library_spec() -> DeviceSpec {
    DeviceSpec::builder("tape library", DeviceKind::TapeLibrary)
        .location(primary_location())
        .capacity_slots(500, Bytes::from_gib(400.0))
        .bandwidth_slots(16, Bandwidth::from_mib_per_sec(60.0))
        .enclosure_bandwidth(Bandwidth::from_mib_per_sec(240.0))
        .access_delay(TimeDelta::from_hours(0.01))
        .cost(
            CostModel::builder()
                .fixed(Money::from_dollars(98_895.0))
                .per_gib(Money::from_dollars(0.4))
                .per_mib_per_sec(Money::from_dollars(108.6))
                .build(),
        )
        .spare(SpareSpec::dedicated(TimeDelta::from_hours(0.02), 1.0))
        .build()
        .expect("tape library preset parameters are valid")
}

/// The off-site tape vault: 5000 cartridge shelf slots, no online
/// bandwidth, no sparing.
///
/// Cost model: `25000 + c × 0.4` dollars/year (`c` in GB).
pub fn vault_spec() -> DeviceSpec {
    DeviceSpec::builder("tape vault", DeviceKind::VaultShelf)
        .location(remote_location())
        .capacity_slots(5000, Bytes::from_gib(400.0))
        .cost(
            CostModel::builder()
                .fixed(Money::from_dollars(25_000.0))
                .per_gib(Money::from_dollars(0.4))
                .build(),
        )
        .build()
        .expect("vault preset parameters are valid")
}

/// Overnight air shipment to the vault: a 24-hour transit, $50 per
/// shipment, no capacity or bandwidth constraint.
pub fn air_courier_spec() -> DeviceSpec {
    DeviceSpec::builder("air shipment", DeviceKind::Courier)
        .location(remote_location())
        .access_delay(TimeDelta::from_hours(24.0))
        .cost(
            CostModel::builder()
                .per_shipment(Money::from_dollars(50.0))
                .build(),
        )
        .build()
        .expect("courier preset parameters are valid")
}

/// A disk-based backup appliance (virtual tape library): 48 bays of
/// 750-GB nearline disks behind a 400 MB/s enclosure, no mechanical
/// load/seek delay, with a dedicated hot spare.
///
/// Not part of the paper's Table 4 — an extension preset showing how a
/// disk-to-disk tier changes the recovery-time story (restores stream at
/// disk speed with no media handling). Cost model:
/// `40000 + c × 1.1 + b × 60` dollars/year.
pub fn disk_backup_spec() -> DeviceSpec {
    DeviceSpec::builder("disk backup appliance", DeviceKind::disk_array(1.25))
        .location(primary_location())
        .capacity_slots(48, Bytes::from_gib(750.0))
        .bandwidth_slots(48, Bandwidth::from_mib_per_sec(70.0))
        .enclosure_bandwidth(Bandwidth::from_mib_per_sec(400.0))
        .cost(
            CostModel::builder()
                .fixed(Money::from_dollars(40_000.0))
                .per_gib(Money::from_dollars(1.1))
                .per_mib_per_sec(Money::from_dollars(60.0))
                .build(),
        )
        .spare(SpareSpec::dedicated(TimeDelta::from_hours(0.02), 1.0))
        .build()
        .expect("disk backup preset parameters are valid")
}

/// A bundle of `count` OC-3 (155 Mbit/s) wide-area links between the
/// primary and remote arrays.
///
/// Cost model: `b × 23535` dollars/year with `b` the *provisioned* link
/// bandwidth in MB/s — whole links are rented, so the cost analysis
/// charges network links for their full bandwidth rather than the used
/// share.
pub fn oc3_links_spec(count: u32) -> DeviceSpec {
    DeviceSpec::builder(format!("OC-3 x{count}"), DeviceKind::NetworkLink)
        .location(remote_location())
        .bandwidth_slots(count, Bandwidth::from_megabits_per_sec(155.0))
        .cost(
            CostModel::builder()
                .per_mib_per_sec(Money::from_dollars(23_535.0))
                .build(),
        )
        .build()
        .expect("link preset parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_capability_matches_table_4() {
        let array = primary_array_spec();
        assert_eq!(
            array.max_bandwidth(),
            Some(Bandwidth::from_mib_per_sec(512.0))
        );
        assert_eq!(array.raw_capacity(), Some(Bytes::from_gib(18_688.0)));
        assert_eq!(array.usable_capacity(), Some(Bytes::from_gib(9_344.0)));
        assert!(array.spare().exists());
    }

    #[test]
    fn tape_library_capability_matches_table_4() {
        let tape = tape_library_spec();
        assert_eq!(
            tape.max_bandwidth(),
            Some(Bandwidth::from_mib_per_sec(240.0))
        );
        assert_eq!(tape.usable_capacity(), Some(Bytes::from_gib(200_000.0)));
        assert_eq!(tape.access_delay(), TimeDelta::from_hours(0.01));
    }

    #[test]
    fn vault_has_capacity_but_no_bandwidth() {
        let vault = vault_spec();
        assert_eq!(vault.usable_capacity(), Some(Bytes::from_gib(2_000_000.0)));
        assert_eq!(vault.max_bandwidth(), None);
        assert!(!vault.spare().exists());
    }

    #[test]
    fn courier_is_delay_and_cost_only() {
        let courier = air_courier_spec();
        assert_eq!(courier.access_delay(), TimeDelta::from_hours(24.0));
        assert_eq!(courier.max_bandwidth(), None);
        assert_eq!(
            courier.cost().shipment_cost(13.0),
            Money::from_dollars(650.0)
        );
    }

    #[test]
    fn link_bundles_scale_with_count() {
        let one = oc3_links_spec(1).max_bandwidth().unwrap();
        let ten = oc3_links_spec(10).max_bandwidth().unwrap();
        assert!(ten.approx_eq(one * 10.0, 1e-12));
        assert!((one.value() - 155.0e6 / 8.0).abs() < 1.0);
    }

    #[test]
    fn locations_separate_primary_from_remote() {
        let array = primary_array_spec();
        let vault = vault_spec();
        assert!(!array.location().same_region(vault.location()));
        let tape = tape_library_spec();
        assert!(array.location().same_site(tape.location()));
    }
}

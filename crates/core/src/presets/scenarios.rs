//! Failure-scenario presets: the case study's three failures (§4) and a
//! frequency-weighted catalog for annualized analyses.

use crate::analysis::WeightedScenario;
use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
use crate::units::{Bytes, TimeDelta};

/// The §4 case-study scenarios: a 1 MB object corrupted 24 hours ago, a
/// primary-array failure, and a site disaster (both recovering to
/// "now").
pub fn paper_failure_scenarios() -> Vec<FailureScenario> {
    vec![
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ]
}

/// The same scenarios annotated with plausible annual frequencies
/// (monthly user errors, an array loss per decade, a site disaster per
/// half-century) — the default catalog for expected-cost, risk-profile,
/// and optimizer analyses.
pub fn paper_scenario_catalog() -> Vec<WeightedScenario> {
    let frequencies = [12.0, 0.1, 0.02];
    paper_failure_scenarios()
        .into_iter()
        .zip(frequencies)
        .map(|(scenario, frequency)| WeightedScenario::new(scenario, frequency))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_the_case_study() {
        let scenarios = paper_failure_scenarios();
        assert_eq!(scenarios.len(), 3);
        assert!(matches!(
            scenarios[0].scope,
            FailureScope::DataObject { .. }
        ));
        assert_eq!(scenarios[0].target.age(), TimeDelta::from_hours(24.0));
        assert!(matches!(scenarios[2].scope, FailureScope::Site));
    }

    #[test]
    fn catalog_weights_are_ordered_by_rarity() {
        let catalog = paper_scenario_catalog();
        for pair in catalog.windows(2) {
            assert!(pair[0].annual_frequency > pair[1].annual_frequency);
        }
    }

    #[test]
    fn catalog_is_usable_end_to_end() {
        let workload = super::super::cello_workload();
        let design = super::super::baseline_design();
        let requirements = super::super::paper_requirements();
        let profile = crate::analysis::risk_profile(
            &design,
            &workload,
            &requirements,
            &paper_scenario_catalog(),
        )
        .unwrap();
        assert!(profile.availability > 0.999);
    }
}

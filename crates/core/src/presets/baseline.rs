//! The baseline storage system design of the paper's case study
//! (Figure 1, Table 3) and its business requirements.

// Preset constructors `expect` on builders fed only compile-time
// constants from the paper's tables: a failure is a programming error in
// the preset itself, caught by the test suite. The panic-free obligation
// applies to user-supplied inputs, not these fixtures.
#![allow(clippy::expect_used)]
use crate::failure::Location;
use crate::hierarchy::{Level, RecoverySite, StorageDesign};
use crate::protection::{
    Backup, PrimaryCopy, ProtectionParams, RemoteVault, SplitMirror, Technique,
};
use crate::requirements::BusinessRequirements;
use crate::units::{MoneyRate, TimeDelta};

use super::devices::{
    air_courier_spec, primary_array_spec, tape_library_spec, vault_spec, REMOTE_LOCATION,
};

/// The case study's business requirements: $50,000 per hour for both data
/// unavailability and recent data loss.
pub fn paper_requirements() -> BusinessRequirements {
    BusinessRequirements::builder()
        .unavailability_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
        .loss_penalty_rate(MoneyRate::from_dollars_per_hour(50_000.0))
        .build()
        .expect("paper penalty rates are valid")
}

/// The split-mirror parameters of Table 3: a mirror split every 12 hours,
/// four accessible mirrors retained for two days.
pub(crate) fn split_mirror_params() -> ProtectionParams {
    ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(12.0))
        .propagation_window(TimeDelta::ZERO)
        .hold_window(TimeDelta::ZERO)
        .retention_count(4)
        .build()
        .expect("split mirror preset parameters are valid")
}

/// The tape backup parameters of Table 3: weekend full backups over a
/// 48-hour window after a one-hour hold, four weekly cycles retained.
pub(crate) fn weekly_full_backup() -> Backup {
    let full = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_weeks(1.0))
        .propagation_window(TimeDelta::from_hours(48.0))
        .hold_window(TimeDelta::from_hours(1.0))
        .retention_count(4)
        .build()
        .expect("backup preset parameters are valid");
    Backup::full_only(full).expect("backup preset policy is valid")
}

/// The remote-vaulting parameters of Table 3: a shipment every four
/// weeks, held four weeks + 12 hours (until backup retention expires),
/// 39 fulls (three years) retained at the vault.
pub(crate) fn baseline_vault_params() -> ProtectionParams {
    ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_weeks(4.0))
        .propagation_window(TimeDelta::from_hours(24.0))
        .hold_window(TimeDelta::from_weeks(4.0) + TimeDelta::from_hours(12.0))
        .retention_count(39)
        .build()
        .expect("vault preset parameters are valid")
}

/// The shared remote recovery facility assumed by the case study:
/// provisioned (drained of other workloads and scrubbed) within nine
/// hours, at 20 % of the dedicated resource cost.
pub(crate) fn paper_recovery_site() -> RecoverySite {
    RecoverySite {
        location: Location::new(REMOTE_LOCATION.0, REMOTE_LOCATION.1, REMOTE_LOCATION.2),
        provisioning_time: TimeDelta::from_hours(9.0),
        cost_factor: 0.2,
    }
}

/// The baseline design of Figure 1: split mirrors and weekly tape backup
/// at the primary site, four-weekly vaulting by air shipment.
pub fn baseline_design() -> StorageDesign {
    let mut builder = StorageDesign::builder("baseline");
    let array = builder
        .add_device(primary_array_spec())
        .expect("fresh builder has no duplicates");
    let tape = builder
        .add_device(tape_library_spec())
        .expect("unique name");
    let vault = builder.add_device(vault_spec()).expect("unique name");
    let courier = builder.add_device(air_courier_spec()).expect("unique name");

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    builder.add_level(Level::new(
        "split mirror",
        Technique::SplitMirror(SplitMirror::new(split_mirror_params())),
        array,
    ));
    builder.add_level(Level::new(
        "tape backup",
        Technique::Backup(weekly_full_backup()),
        tape,
    ));
    builder.add_level(
        Level::new(
            "remote vaulting",
            Technique::RemoteVault(RemoteVault::new(baseline_vault_params())),
            vault,
        )
        .with_transports([courier]),
    );
    builder.recovery_site(paper_recovery_site());
    builder
        .build()
        .expect("baseline preset is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_four_levels_in_figure_1_order() {
        let design = baseline_design();
        let names: Vec<&str> = design.levels().iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            [
                "primary copy",
                "split mirror",
                "tape backup",
                "remote vaulting"
            ]
        );
    }

    #[test]
    fn split_mirror_and_primary_share_the_array() {
        let design = baseline_design();
        assert_eq!(design.levels()[0].host(), design.levels()[1].host());
        assert_ne!(design.levels()[1].host(), design.levels()[2].host());
    }

    #[test]
    fn vault_ships_by_courier() {
        let design = baseline_design();
        let vault_level = &design.levels()[3];
        assert_eq!(vault_level.transports().len(), 1);
        let courier = design.device(vault_level.transports()[0]);
        assert_eq!(courier.name(), "air shipment");
    }

    #[test]
    fn requirements_are_50k_per_hour() {
        let reqs = paper_requirements();
        assert!((reqs.unavailability_penalty_rate().as_dollars_per_hour() - 50_000.0).abs() < 1e-9);
        assert!((reqs.loss_penalty_rate().as_dollars_per_hour() - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_site_is_remote_shared() {
        let design = baseline_design();
        let site = design
            .recovery_site()
            .expect("baseline has a recovery facility");
        assert_eq!(site.provisioning_time, TimeDelta::from_hours(9.0));
        assert!((site.cost_factor - 0.2).abs() < 1e-12);
        assert!(!site.location.same_region(design.primary_location()));
    }
}

//! Workload presets (paper Table 2).

// Preset constructors `expect` on builders fed only compile-time
// constants from the paper's tables: a failure is a programming error in
// the preset itself, caught by the test suite. The panic-free obligation
// applies to user-supplied inputs, not these fixtures.
#![allow(clippy::expect_used)]
use crate::units::{Bandwidth, Bytes, TimeDelta};
use crate::workload::Workload;

/// The *cello* workgroup file server workload of the paper's case study
/// (Table 2, measured at HP Labs; see also Ji et al., USENIX '03).
///
/// 1360 GB of data, 1028 KB/s of accesses, 799 KB/s of updates, 10×
/// bursts, and a batch-update-rate curve that flattens at 317 KB/s for
/// windows of a day or more.
pub fn cello_workload() -> Workload {
    Workload::builder("cello")
        .data_capacity(Bytes::from_gib(1360.0))
        .avg_access_rate(Bandwidth::from_kib_per_sec(1028.0))
        .avg_update_rate(Bandwidth::from_kib_per_sec(799.0))
        .burst_multiplier(10.0)
        .batch_rate(
            TimeDelta::from_minutes(1.0),
            Bandwidth::from_kib_per_sec(727.0),
        )
        .batch_rate(
            TimeDelta::from_hours(12.0),
            Bandwidth::from_kib_per_sec(350.0),
        )
        .batch_rate(
            TimeDelta::from_hours(24.0),
            Bandwidth::from_kib_per_sec(317.0),
        )
        .batch_rate(
            TimeDelta::from_hours(48.0),
            Bandwidth::from_kib_per_sec(317.0),
        )
        .batch_rate(
            TimeDelta::from_weeks(1.0),
            Bandwidth::from_kib_per_sec(317.0),
        )
        .build()
        .expect("cello parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cello_matches_table_2() {
        let wl = cello_workload();
        assert_eq!(wl.name(), "cello");
        assert_eq!(wl.data_capacity(), Bytes::from_gib(1360.0));
        assert_eq!(wl.avg_access_rate(), Bandwidth::from_kib_per_sec(1028.0));
        assert_eq!(wl.avg_update_rate(), Bandwidth::from_kib_per_sec(799.0));
        assert_eq!(wl.burst_multiplier(), 10.0);
        let rate = wl.batch_update_rate(TimeDelta::from_hours(48.0));
        assert!((rate.as_kib_per_sec() - 317.0).abs() < 1e-9);
    }
}

//! The what-if designs of the paper's Table 7.
//!
//! Each variant modifies the [baseline](super::baseline_design) to
//! improve some aspect of its dependability; policy parameters not
//! explicitly changed stay at their baseline values.

// Preset constructors `expect` on builders fed only compile-time
// constants from the paper's tables: a failure is a programming error in
// the preset itself, caught by the test suite. The panic-free obligation
// applies to user-supplied inputs, not these fixtures.
#![allow(clippy::expect_used)]
use crate::hierarchy::{Level, StorageDesign};
use crate::protection::{
    Backup, IncrementalMode, IncrementalPolicy, KOutOfN, PrimaryCopy, ProtectionParams,
    RemoteMirror, RemoteVault, RepairStrategy, SplitMirror, Technique, VirtualSnapshot,
};
use crate::units::TimeDelta;

use super::baseline::{paper_recovery_site, split_mirror_params, weekly_full_backup};
use super::devices::{
    air_courier_spec, oc3_links_spec, primary_array_spec, remote_array_spec, tape_library_spec,
    vault_spec,
};

/// Weekly vaulting: a one-week accumulation window and 12-hour hold at
/// the vault level (shipments leave before backup retention expires, so
/// the library cuts extra copies), still retaining three years of fulls.
pub(crate) fn weekly_vault_params() -> ProtectionParams {
    ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_weeks(1.0))
        .propagation_window(TimeDelta::from_hours(24.0))
        .hold_window(TimeDelta::from_hours(12.0))
        .retention_count(156)
        .build()
        .expect("weekly vault preset parameters are valid")
}

/// Daily full backups over a 12-hour window, four weeks retained.
fn daily_full_backup() -> Backup {
    let full = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(24.0))
        .propagation_window(TimeDelta::from_hours(12.0))
        .hold_window(TimeDelta::from_hours(1.0))
        .retention_count(28)
        .build()
        .expect("daily full preset parameters are valid");
    Backup::full_only(full).expect("daily full preset policy is valid")
}

/// Weekly fulls plus five daily cumulative incrementals (Table 7's
/// "F+I"): 48-hour accW/propW for fulls, 24-hour accW and 12-hour propW
/// for incrementals.
fn full_plus_incremental_backup() -> Backup {
    let full = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(48.0))
        .propagation_window(TimeDelta::from_hours(48.0))
        .hold_window(TimeDelta::from_hours(1.0))
        .cycle_period(TimeDelta::from_weeks(1.0))
        .cycle_count(6)
        .retention_count(4)
        .build()
        .expect("F+I full preset parameters are valid");
    let incremental = IncrementalPolicy {
        mode: IncrementalMode::Cumulative,
        accumulation_window: TimeDelta::from_hours(24.0),
        propagation_window: TimeDelta::from_hours(12.0),
        hold_window: TimeDelta::from_hours(1.0),
        count: 5,
    };
    Backup::with_incrementals(full, incremental).expect("F+I preset policy is valid")
}

/// Shared scaffolding: array + tape + vault + courier with configurable
/// PiT and backup levels and vault parameters.
fn tape_design(
    name: &str,
    pit: Technique,
    pit_name: &str,
    backup: Backup,
    vault_params: ProtectionParams,
) -> StorageDesign {
    let mut builder = StorageDesign::builder(name);
    let array = builder.add_device(primary_array_spec()).expect("unique");
    let tape = builder.add_device(tape_library_spec()).expect("unique");
    let vault = builder.add_device(vault_spec()).expect("unique");
    let courier = builder.add_device(air_courier_spec()).expect("unique");

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    builder.add_level(Level::new(pit_name, pit, array));
    builder.add_level(Level::new("tape backup", Technique::Backup(backup), tape));
    builder.add_level(
        Level::new(
            "remote vaulting",
            Technique::RemoteVault(RemoteVault::new(vault_params)),
            vault,
        )
        .with_transports([courier]),
    );
    builder.recovery_site(paper_recovery_site());
    builder
        .build()
        .expect("what-if preset is structurally valid")
}

/// Table 7 row 2: baseline policies with weekly vaulting.
pub fn weekly_vault_design() -> StorageDesign {
    tape_design(
        "weekly vault",
        Technique::SplitMirror(SplitMirror::new(split_mirror_params())),
        "split mirror",
        weekly_full_backup(),
        weekly_vault_params(),
    )
}

/// Table 7 row 3: weekly vaulting plus weekly fulls with daily
/// cumulative incrementals.
pub fn weekly_vault_full_incremental_design() -> StorageDesign {
    tape_design(
        "weekly vault, F+I",
        Technique::SplitMirror(SplitMirror::new(split_mirror_params())),
        "split mirror",
        full_plus_incremental_backup(),
        weekly_vault_params(),
    )
}

/// Table 7 row 4: weekly vaulting plus daily full backups.
pub fn weekly_vault_daily_full_design() -> StorageDesign {
    tape_design(
        "weekly vault, daily F",
        Technique::SplitMirror(SplitMirror::new(split_mirror_params())),
        "split mirror",
        daily_full_backup(),
        weekly_vault_params(),
    )
}

/// Table 7 row 5: as row 4, with virtual snapshots instead of split
/// mirrors (same windows and retention).
pub fn snapshot_design() -> StorageDesign {
    tape_design(
        "weekly vault, daily F, snapshot",
        Technique::VirtualSnapshot(VirtualSnapshot::new(split_mirror_params())),
        "virtual snapshot",
        daily_full_backup(),
        weekly_vault_params(),
    )
}

/// Table 7 rows 6–7: asynchronous batch mirroring over `links` OC-3
/// wide-area links with one-minute batches, replacing the tape hierarchy.
pub fn async_batch_mirror_design(links: u32) -> StorageDesign {
    let mut builder = StorageDesign::builder(format!("asyncB mirror, {links} link(s)"));
    let array = builder.add_device(primary_array_spec()).expect("unique");
    let remote = builder.add_device(remote_array_spec()).expect("unique");
    let wan = builder.add_device(oc3_links_spec(links)).expect("unique");

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    let batch = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_minutes(1.0))
        .retention_count(1)
        .build()
        .expect("batch mirror preset parameters are valid");
    builder.add_level(
        Level::new(
            "async batch mirror",
            Technique::RemoteMirror(RemoteMirror::batched(batch)),
            remote,
        )
        .with_transports([wan]),
    );
    builder.recovery_site(paper_recovery_site());
    builder
        .build()
        .expect("mirror preset is structurally valid")
}

/// Extension (not in the paper's Table 7): daily fulls to a
/// **disk-based backup appliance** instead of tape, plus the baseline
/// vaulting chain fed from the tape library. Restores stream at disk
/// speed with no media handling, trading higher per-GB outlays for a
/// much shorter array-failure recovery.
pub fn disk_backup_design() -> StorageDesign {
    let mut builder = StorageDesign::builder("disk-to-disk backup");
    let array = builder
        .add_device(super::devices::primary_array_spec())
        .expect("unique");
    let appliance = builder
        .add_device(super::devices::disk_backup_spec())
        .expect("unique");

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    builder.add_level(Level::new(
        "virtual snapshot",
        Technique::VirtualSnapshot(VirtualSnapshot::new(split_mirror_params())),
        array,
    ));
    let full = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(24.0))
        .propagation_window(TimeDelta::from_hours(4.0))
        .hold_window(TimeDelta::from_hours(0.5))
        .retention_count(14)
        .build()
        .expect("disk backup preset parameters are valid");
    builder.add_level(Level::new(
        "disk backup",
        Technique::Backup(Backup::full_only(full).expect("disk backup policy is valid")),
        appliance,
    ));
    builder.recovery_site(paper_recovery_site());
    builder
        .build()
        .expect("disk backup preset is structurally valid")
}

/// Extension (not in the paper's Table 7): the primary array protected
/// by a 4-of-6 erasure-coded remote level with parallel fragment repair,
/// shipped over ten OC-3 links.
pub fn k_out_of_n_design() -> StorageDesign {
    k_out_of_n_design_with(RepairStrategy::Parallel)
}

/// [`k_out_of_n_design`] with an explicit repair strategy, for comparing
/// parallel and serial fragment-repair times.
pub fn k_out_of_n_design_with(repair: RepairStrategy) -> StorageDesign {
    let strategy = match repair {
        RepairStrategy::Parallel => "parallel",
        RepairStrategy::Serial => "serial",
    };
    let mut builder = StorageDesign::builder(format!("4-of-6 erasure, {strategy} repair"));
    let array = builder.add_device(primary_array_spec()).expect("unique");
    let remote = builder.add_device(remote_array_spec()).expect("unique");
    let wan = builder.add_device(oc3_links_spec(10)).expect("unique");

    builder.add_level(Level::new(
        "primary copy",
        Technique::PrimaryCopy(PrimaryCopy::new()),
        array,
    ));
    let params = ProtectionParams::builder()
        .accumulation_window(TimeDelta::from_hours(24.0))
        .propagation_window(TimeDelta::from_hours(12.0))
        .retention_count(4)
        .build()
        .expect("erasure preset parameters are valid");
    builder.add_level(
        Level::new(
            "4-of-6 erasure coding",
            Technique::KOutOfN(KOutOfN::new(4, 6, params, repair)),
            remote,
        )
        .with_transports([wan]),
    );
    builder.recovery_site(paper_recovery_site());
    builder
        .build()
        .expect("erasure preset is structurally valid")
}

/// All seven designs of Table 7, baseline first, in row order.
pub fn what_if_designs() -> Vec<StorageDesign> {
    vec![
        super::baseline_design(),
        weekly_vault_design(),
        weekly_vault_full_incremental_design(),
        weekly_vault_daily_full_design(),
        snapshot_design(),
        async_batch_mirror_design(1),
        async_batch_mirror_design(10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_designs_in_table_order() {
        let designs = what_if_designs();
        assert_eq!(designs.len(), 7);
        assert_eq!(designs[0].name(), "baseline");
        assert_eq!(designs[4].name(), "weekly vault, daily F, snapshot");
        assert_eq!(designs[6].name(), "asyncB mirror, 10 link(s)");
    }

    #[test]
    fn weekly_vault_keeps_three_years_of_fulls() {
        let params = weekly_vault_params();
        assert!((params.retention_window().as_years() - 2.99).abs() < 0.01);
        assert_eq!(params.retention_count(), 156);
    }

    #[test]
    fn fi_design_has_incrementals() {
        let design = weekly_vault_full_incremental_design();
        let backup = match design.levels()[2].technique() {
            Technique::Backup(b) => b,
            other => panic!("expected backup, got {other}"),
        };
        let incr = backup.incremental().expect("F+I has incrementals");
        assert_eq!(incr.count, 5);
        assert_eq!(incr.mode, IncrementalMode::Cumulative);
    }

    #[test]
    fn snapshot_design_swaps_the_pit_level() {
        let design = snapshot_design();
        assert!(matches!(
            design.levels()[1].technique(),
            Technique::VirtualSnapshot(_)
        ));
        assert_eq!(design.levels()[1].name(), "virtual snapshot");
    }

    #[test]
    fn mirror_designs_have_two_levels_and_wan_links() {
        for links in [1, 10] {
            let design = async_batch_mirror_design(links);
            assert_eq!(design.levels().len(), 2);
            let wan = design.device(design.levels()[1].transports()[0]);
            assert!(wan.name().starts_with("OC-3"));
        }
    }

    #[test]
    fn mirror_arrays_are_in_different_regions() {
        let design = async_batch_mirror_design(1);
        let primary = design.device(design.levels()[0].host());
        let remote = design.device(design.levels()[1].host());
        assert!(!primary.location().same_region(remote.location()));
    }

    #[test]
    fn disk_backup_design_recovers_much_faster_than_tape() {
        use crate::analysis::evaluate;
        use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
        let workload = super::super::cello_workload();
        let requirements = super::super::paper_requirements();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let disk = evaluate(&disk_backup_design(), &workload, &requirements, &scenario).unwrap();
        let tape = evaluate(
            &super::super::baseline_design(),
            &workload,
            &requirements,
            &scenario,
        )
        .unwrap();
        // Disk restores stream at ~300 MiB/s with no media handling.
        assert!(disk.recovery.total_time < tape.recovery.total_time * 0.8);
        // And daily fulls cut the loss from 217 h to ~28.5 h.
        assert!(disk.loss.worst_loss < tape.loss.worst_loss / 5.0);
    }

    #[test]
    fn erasure_preset_is_feasible_and_parallel_repair_is_faster() {
        use crate::analysis::evaluate;
        use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
        let workload = super::super::cello_workload();
        let requirements = super::super::paper_requirements();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let parallel = evaluate(&k_out_of_n_design(), &workload, &requirements, &scenario).unwrap();
        let serial = evaluate(
            &k_out_of_n_design_with(RepairStrategy::Serial),
            &workload,
            &requirements,
            &scenario,
        )
        .unwrap();
        // Reading four fragments concurrently beats one stream.
        assert!(parallel.recovery.total_time < serial.recovery.total_time);
    }

    #[test]
    fn all_what_ifs_produce_demands() {
        let workload = super::super::cello_workload();
        for design in what_if_designs() {
            design
                .demands(&workload)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
        }
    }
}

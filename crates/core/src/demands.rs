//! Workload demands that data protection techniques place on devices
//! (§3.2.3).
//!
//! Each technique model converts its policy parameters into bandwidth and
//! capacity demands on the storage and interconnect devices it touches.
//! [`DemandSet`] collects every contribution, tagged by the hierarchy
//! level that caused it, so the utilization and cost analyses can report
//! per-technique breakdowns (paper Table 5).

use crate::device::DeviceId;
use crate::units::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One technique's demand on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandContribution {
    /// The device being demanded of.
    pub device: DeviceId,
    /// Sustained bandwidth required in normal mode.
    pub bandwidth: Bandwidth,
    /// Storage capacity held in normal mode.
    pub capacity: Bytes,
    /// Physical shipments per year (couriers only; drives per-shipment
    /// cost).
    pub shipments_per_year: f64,
}

impl DemandContribution {
    /// A contribution with every component zero, on `device`.
    pub fn none(device: DeviceId) -> DemandContribution {
        DemandContribution {
            device,
            bandwidth: Bandwidth::ZERO,
            capacity: Bytes::ZERO,
            shipments_per_year: 0.0,
        }
    }

    /// A pure bandwidth demand.
    pub fn bandwidth(device: DeviceId, bandwidth: Bandwidth) -> DemandContribution {
        DemandContribution {
            bandwidth,
            ..DemandContribution::none(device)
        }
    }

    /// A pure capacity demand.
    pub fn capacity(device: DeviceId, capacity: Bytes) -> DemandContribution {
        DemandContribution {
            capacity,
            ..DemandContribution::none(device)
        }
    }
}

/// The demands of one hierarchy level (one technique instance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelDemands {
    /// Zero-based hierarchy level that causes these demands.
    pub level: usize,
    /// The level's display name (e.g. `"split mirror"`).
    pub level_name: String,
    /// Per-device contributions. A device may appear at most once per
    /// level.
    pub contributions: Vec<DemandContribution>,
}

/// All demands of a storage design, level by level.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DemandSet {
    levels: Vec<LevelDemands>,
}

/// Aggregate demand on a single device, summed over levels.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceTotals {
    /// Total sustained bandwidth demanded.
    pub bandwidth: Bandwidth,
    /// Total capacity held.
    pub capacity: Bytes,
    /// Total shipments per year.
    pub shipments_per_year: f64,
}

impl DemandSet {
    /// Creates an empty demand set.
    pub fn new() -> DemandSet {
        DemandSet::default()
    }

    /// Records the demands of one level.
    pub fn push_level(&mut self, demands: LevelDemands) {
        self.levels.push(demands);
    }

    /// Iterates the per-level demand records, in level order.
    pub fn levels(&self) -> impl Iterator<Item = &LevelDemands> {
        self.levels.iter()
    }

    /// The contribution of a specific level to a specific device, if any.
    pub fn contribution(&self, level: usize, device: DeviceId) -> Option<DemandContribution> {
        self.levels
            .iter()
            .find(|l| l.level == level)?
            .contributions
            .iter()
            .find(|c| c.device == device)
            .copied()
    }

    /// Sums demands per device across all levels.
    pub fn device_totals(&self) -> BTreeMap<DeviceId, DeviceTotals> {
        let mut totals: BTreeMap<DeviceId, DeviceTotals> = BTreeMap::new();
        for level in &self.levels {
            for c in &level.contributions {
                let entry = totals.entry(c.device).or_default();
                entry.bandwidth += c.bandwidth;
                entry.capacity += c.capacity;
                entry.shipments_per_year += c.shipments_per_year;
            }
        }
        totals
    }

    /// Total bandwidth demanded of one device across all levels.
    pub fn bandwidth_on(&self, device: DeviceId) -> Bandwidth {
        self.levels
            .iter()
            .flat_map(|l| &l.contributions)
            .filter(|c| c.device == device)
            .map(|c| c.bandwidth)
            .sum()
    }

    /// Total capacity demanded of one device across all levels.
    pub fn capacity_on(&self, device: DeviceId) -> Bytes {
        self.levels
            .iter()
            .flat_map(|l| &l.contributions)
            .filter(|c| c.device == device)
            .map(|c| c.capacity)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: usize) -> DeviceId {
        DeviceId(n)
    }

    fn sample() -> DemandSet {
        let mut set = DemandSet::new();
        set.push_level(LevelDemands {
            level: 0,
            level_name: "primary".into(),
            contributions: vec![DemandContribution {
                device: id(0),
                bandwidth: Bandwidth::from_mib_per_sec(1.0),
                capacity: Bytes::from_gib(1360.0),
                shipments_per_year: 0.0,
            }],
        });
        set.push_level(LevelDemands {
            level: 1,
            level_name: "split mirror".into(),
            contributions: vec![DemandContribution {
                device: id(0),
                bandwidth: Bandwidth::from_mib_per_sec(3.0),
                capacity: Bytes::from_gib(6800.0),
                shipments_per_year: 0.0,
            }],
        });
        set.push_level(LevelDemands {
            level: 2,
            level_name: "vaulting".into(),
            contributions: vec![DemandContribution {
                device: id(1),
                bandwidth: Bandwidth::ZERO,
                capacity: Bytes::ZERO,
                shipments_per_year: 13.0,
            }],
        });
        set
    }

    #[test]
    fn totals_sum_across_levels() {
        let totals = sample().device_totals();
        let array = totals[&id(0)];
        assert_eq!(array.bandwidth, Bandwidth::from_mib_per_sec(4.0));
        assert_eq!(array.capacity, Bytes::from_gib(8160.0));
        let courier = totals[&id(1)];
        assert_eq!(courier.shipments_per_year, 13.0);
    }

    #[test]
    fn per_device_accessors_match_totals() {
        let set = sample();
        assert_eq!(set.bandwidth_on(id(0)), Bandwidth::from_mib_per_sec(4.0));
        assert_eq!(set.capacity_on(id(0)), Bytes::from_gib(8160.0));
        assert_eq!(set.bandwidth_on(id(1)), Bandwidth::ZERO);
    }

    #[test]
    fn contribution_lookup_by_level_and_device() {
        let set = sample();
        let c = set.contribution(1, id(0)).unwrap();
        assert_eq!(c.bandwidth, Bandwidth::from_mib_per_sec(3.0));
        assert!(set.contribution(1, id(1)).is_none());
        assert!(set.contribution(9, id(0)).is_none());
    }

    #[test]
    fn constructors_zero_unrelated_fields() {
        let c = DemandContribution::bandwidth(id(0), Bandwidth::from_mib_per_sec(2.0));
        assert_eq!(c.capacity, Bytes::ZERO);
        let c = DemandContribution::capacity(id(0), Bytes::from_gib(1.0));
        assert_eq!(c.bandwidth, Bandwidth::ZERO);
        assert_eq!(c.shipments_per_year, 0.0);
    }
}

//! Strongly typed scalar quantities used throughout the framework.
//!
//! All quantities are thin newtypes over `f64` ([C-NEWTYPE]): capacities in
//! bytes, rates in bytes per second, durations in seconds, money in US
//! dollars. The arithmetic that makes dimensional sense is implemented via
//! `std::ops` (e.g. [`Bandwidth`] × [`TimeDelta`] = [`Bytes`]); anything
//! else is a compile error, which catches the classic unit mix-ups these
//! models are prone to.
//!
//! Binary prefixes are used for storage sizes (1 GiB = 2³⁰ bytes), matching
//! the conventions of the paper's case study tables.
//!
//! ```
//! use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
//!
//! let window = TimeDelta::from_hours(48.0);
//! let dataset = Bytes::from_gib(1360.0);
//! let needed: Bandwidth = dataset / window;
//! assert!(needed < Bandwidth::from_mib_per_sec(8.5));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared trait surface for a scalar `f64` newtype.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $unit_desc:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw magnitude in the base unit.
            #[doc = concat!("The base unit is ", $unit_desc, ".")]
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the magnitude is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` when the magnitude is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Validates that the magnitude is finite (rejects NaN and
            /// ±∞), passing the value through unchanged.
            ///
            /// On failure the returned
            /// [`Error::NonFiniteInput`](crate::error::Error::NonFiniteInput)
            /// names `parameter` so callers can point at the offending
            /// input. Chain onto any constructor:
            ///
            /// ```
            /// use ssdep_core::units::TimeDelta;
            ///
            /// assert!(TimeDelta::from_hours(4.0).ensure_finite("lag").is_ok());
            /// assert!(TimeDelta::from_hours(f64::NAN).ensure_finite("lag").is_err());
            /// ```
            pub fn ensure_finite(self, parameter: &str) -> Result<$name, crate::error::Error> {
                if self.0.is_finite() {
                    Ok(self)
                } else {
                    Err(crate::error::Error::non_finite(parameter))
                }
            }

            /// Validates that the magnitude is finite *and* non-negative,
            /// passing the value through unchanged.
            pub fn ensure_non_negative(
                self,
                parameter: &str,
            ) -> Result<$name, crate::error::Error> {
                let checked = self.ensure_finite(parameter)?;
                if checked.0 < 0.0 {
                    Err(crate::error::Error::invalid(parameter, "must not be negative"))
                } else {
                    Ok(checked)
                }
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// `NaN` loses against any number, mirroring `f64::max`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Clamps negative magnitudes to zero.
            #[inline]
            pub fn clamp_non_negative(self) -> $name {
                $name(self.0.max(0.0))
            }

            /// Returns `true` if `self` and `other` differ by at most
            /// `tolerance` in relative terms (or absolutely, when either
            /// side is within `tolerance` of zero).
            pub fn approx_eq(self, other: $name, tolerance: f64) -> bool {
                let scale = self.0.abs().max(other.0.abs());
                if scale <= tolerance {
                    return true;
                }
                (self.0 - other.0).abs() <= tolerance * scale
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// The dimensionless ratio of two like quantities.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }
    };
}

scalar_unit!(
    /// A storage size or transfer amount, in bytes.
    ///
    /// Negative values are representable (differences) but every
    /// model-facing constructor produces non-negative sizes.
    Bytes,
    "bytes"
);

scalar_unit!(
    /// A data transfer rate, in bytes per second.
    Bandwidth,
    "bytes per second"
);

scalar_unit!(
    /// A span of time, in seconds.
    ///
    /// The framework works with spans (windows, lags, durations) rather
    /// than absolute timestamps, hence `TimeDelta` rather than `Instant`.
    TimeDelta,
    "seconds"
);

scalar_unit!(
    /// An amount of money, in US dollars.
    Money,
    "US dollars"
);

scalar_unit!(
    /// A money flow, in US dollars per second (penalty rates).
    MoneyRate,
    "US dollars per second"
);

const KIB: f64 = 1024.0;
const MIB: f64 = 1024.0 * 1024.0;
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
const TIB: f64 = 1024.0 * 1024.0 * 1024.0 * 1024.0;

const MINUTE: f64 = 60.0;
const HOUR: f64 = 3600.0;
const DAY: f64 = 24.0 * HOUR;
const WEEK: f64 = 7.0 * DAY;
/// Seconds per (365-day) year, the annualization basis for cost models.
const YEAR: f64 = 365.0 * DAY;

impl Bytes {
    /// Creates a size from a raw byte count.
    #[inline]
    pub fn from_bytes(bytes: f64) -> Bytes {
        Bytes(bytes)
    }

    /// Creates a size in KiB (2¹⁰ bytes).
    #[inline]
    pub fn from_kib(kib: f64) -> Bytes {
        Bytes(kib * KIB)
    }

    /// Creates a size in MiB (2²⁰ bytes).
    #[inline]
    pub fn from_mib(mib: f64) -> Bytes {
        Bytes(mib * MIB)
    }

    /// Creates a size in GiB (2³⁰ bytes).
    #[inline]
    pub fn from_gib(gib: f64) -> Bytes {
        Bytes(gib * GIB)
    }

    /// Creates a size in TiB (2⁴⁰ bytes).
    #[inline]
    pub fn from_tib(tib: f64) -> Bytes {
        Bytes(tib * TIB)
    }

    /// The size expressed in KiB.
    #[inline]
    pub fn as_kib(self) -> f64 {
        self.0 / KIB
    }

    /// The size expressed in MiB.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 / MIB
    }

    /// The size expressed in GiB.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 / GIB
    }

    /// The size expressed in TiB.
    #[inline]
    pub fn as_tib(self) -> f64 {
        self.0 / TIB
    }
}

impl Bandwidth {
    /// Creates a rate from raw bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Bandwidth {
        Bandwidth(bps)
    }

    /// Creates a rate in KiB/s.
    #[inline]
    pub fn from_kib_per_sec(kibps: f64) -> Bandwidth {
        Bandwidth(kibps * KIB)
    }

    /// Creates a rate in MiB/s.
    #[inline]
    pub fn from_mib_per_sec(mibps: f64) -> Bandwidth {
        Bandwidth(mibps * MIB)
    }

    /// Creates a rate from a link speed in megabits per second
    /// (10⁶ bits, the telecom convention — an OC-3 is 155 Mbit/s).
    #[inline]
    pub fn from_megabits_per_sec(mbps: f64) -> Bandwidth {
        Bandwidth(mbps * 1e6 / 8.0)
    }

    /// The rate expressed in KiB/s.
    #[inline]
    pub fn as_kib_per_sec(self) -> f64 {
        self.0 / KIB
    }

    /// The rate expressed in MiB/s.
    #[inline]
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 / MIB
    }
}

impl TimeDelta {
    /// Creates a span from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> TimeDelta {
        TimeDelta(secs)
    }

    /// Creates a span from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> TimeDelta {
        TimeDelta(minutes * MINUTE)
    }

    /// Creates a span from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> TimeDelta {
        TimeDelta(hours * HOUR)
    }

    /// Creates a span from days.
    #[inline]
    pub fn from_days(days: f64) -> TimeDelta {
        TimeDelta(days * DAY)
    }

    /// Creates a span from weeks.
    #[inline]
    pub fn from_weeks(weeks: f64) -> TimeDelta {
        TimeDelta(weeks * WEEK)
    }

    /// Creates a span from (365-day) years.
    #[inline]
    pub fn from_years(years: f64) -> TimeDelta {
        TimeDelta(years * YEAR)
    }

    /// The span expressed in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span expressed in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.0 / MINUTE
    }

    /// The span expressed in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / HOUR
    }

    /// The span expressed in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 / DAY
    }

    /// The span expressed in weeks.
    #[inline]
    pub fn as_weeks(self) -> f64 {
        self.0 / WEEK
    }

    /// The span expressed in (365-day) years.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.0 / YEAR
    }

    /// The span as a whole number of seconds, rounded toward zero.
    /// Negative and NaN spans collapse to 0; overflow saturates.
    #[inline]
    pub fn whole_secs(self) -> u64 {
        self.0.floor() as u64
    }

    /// How many whole `chunk`-sized pieces fit in this span (e.g. full
    /// slots in a trace). Zero when `chunk` is not positive, so callers
    /// cannot divide by zero by accident.
    #[inline]
    pub fn whole_divisions(self, chunk: TimeDelta) -> u64 {
        if chunk.0 > 0.0 {
            (self.0 / chunk.0).floor() as u64
        } else {
            0
        }
    }
}

/// Rounds to the nearest `u64`, collapsing NaN and negatives to 0 and
/// saturating at `u64::MAX`. The model's counts (slots, extents,
/// retained copies) come out of f64 arithmetic; this is the one sanctioned
/// way to land them in an integer — a bare `as` cast truncates
/// fractional values silently (and is flagged by `ssdep-lint` L005).
#[inline]
pub fn round_to_u64(x: f64) -> u64 {
    x.round() as u64
}

/// Rounds to the nearest `u32`; same edge-case policy as
/// [`round_to_u64`].
#[inline]
pub fn round_to_u32(x: f64) -> u32 {
    x.round() as u32
}

/// Rounds to the nearest `usize`; same edge-case policy as
/// [`round_to_u64`].
#[inline]
pub fn round_to_usize(x: f64) -> usize {
    x.round() as usize
}

impl Money {
    /// Creates an amount in US dollars.
    #[inline]
    pub fn from_dollars(dollars: f64) -> Money {
        Money(dollars)
    }

    /// The amount expressed in US dollars.
    #[inline]
    pub fn as_dollars(self) -> f64 {
        self.0
    }

    /// The amount expressed in millions of US dollars.
    #[inline]
    pub fn as_millions(self) -> f64 {
        self.0 / 1e6
    }
}

impl MoneyRate {
    /// Creates a rate in US dollars per second.
    #[inline]
    pub fn from_dollars_per_sec(rate: f64) -> MoneyRate {
        MoneyRate(rate)
    }

    /// Creates a rate in US dollars per hour (the business-continuity
    /// community quotes outage penalties per hour).
    #[inline]
    pub fn from_dollars_per_hour(rate: f64) -> MoneyRate {
        MoneyRate(rate / HOUR)
    }

    /// The rate expressed in US dollars per hour.
    #[inline]
    pub fn as_dollars_per_hour(self) -> f64 {
        self.0 * HOUR
    }
}

// --- Cross-unit arithmetic -------------------------------------------------

impl Mul<TimeDelta> for Bandwidth {
    type Output = Bytes;
    /// Bytes transferred at this rate over a span.
    #[inline]
    fn mul(self, rhs: TimeDelta) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

impl Mul<Bandwidth> for TimeDelta {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Bandwidth) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

impl Div<TimeDelta> for Bytes {
    type Output = Bandwidth;
    /// The rate needed to move this size within a span.
    #[inline]
    fn div(self, rhs: TimeDelta) -> Bandwidth {
        Bandwidth(self.0 / rhs.0)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = TimeDelta;
    /// The span needed to move this size at a rate.
    #[inline]
    fn div(self, rhs: Bandwidth) -> TimeDelta {
        TimeDelta(self.0 / rhs.0)
    }
}

impl Mul<TimeDelta> for MoneyRate {
    type Output = Money;
    /// The penalty accrued at this rate over a span.
    #[inline]
    fn mul(self, rhs: TimeDelta) -> Money {
        Money(self.0 * rhs.0)
    }
}

impl Mul<MoneyRate> for TimeDelta {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: MoneyRate) -> Money {
        Money(self.0 * rhs.0)
    }
}

// --- Utilization -----------------------------------------------------------

/// A utilization fraction, where `1.0` means a fully consumed resource.
///
/// Values above `1.0` are representable — they indicate an infeasible
/// design and make the global model report an error — but the type keeps
/// them so reports can show *how* overcommitted a device is.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Utilization(f64);

impl Utilization {
    /// The zero utilization.
    pub const ZERO: Utilization = Utilization(0.0);

    /// A fully consumed resource.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization from a fraction (`0.5` = 50 %).
    #[inline]
    pub fn from_fraction(fraction: f64) -> Utilization {
        Utilization(fraction)
    }

    /// Creates a utilization from a percentage (`50.0` = 50 %).
    #[inline]
    pub fn from_percent(percent: f64) -> Utilization {
        Utilization(percent / 100.0)
    }

    /// The utilization as a fraction.
    #[inline]
    pub fn as_fraction(self) -> f64 {
        self.0
    }

    /// The utilization as a percentage.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `true` when the resource demand exceeds its capability.
    #[inline]
    pub fn is_overcommitted(self) -> bool {
        self.0 > 1.0
    }

    /// Returns the larger of two utilizations.
    #[inline]
    pub fn max(self, other: Utilization) -> Utilization {
        Utilization(self.0.max(other.0))
    }
}

impl Add for Utilization {
    type Output = Utilization;
    #[inline]
    fn add(self, rhs: Utilization) -> Utilization {
        Utilization(self.0 + rhs.0)
    }
}

impl AddAssign for Utilization {
    #[inline]
    fn add_assign(&mut self, rhs: Utilization) {
        self.0 += rhs.0;
    }
}

impl Sum for Utilization {
    fn sum<I: Iterator<Item = Utilization>>(iter: I) -> Utilization {
        iter.fold(Utilization::ZERO, Add::add)
    }
}

// --- Display ---------------------------------------------------------------

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let magnitude = self.0.abs();
        if magnitude >= TIB {
            write!(f, "{:.1} TiB", self.as_tib())
        } else if magnitude >= GIB {
            write!(f, "{:.1} GiB", self.as_gib())
        } else if magnitude >= MIB {
            write!(f, "{:.1} MiB", self.as_mib())
        } else if magnitude >= KIB {
            write!(f, "{:.1} KiB", self.as_kib())
        } else {
            write!(f, "{:.0} B", self.0)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let magnitude = self.0.abs();
        if magnitude >= MIB {
            write!(f, "{:.1} MiB/s", self.as_mib_per_sec())
        } else if magnitude >= KIB {
            write!(f, "{:.1} KiB/s", self.as_kib_per_sec())
        } else {
            write!(f, "{:.0} B/s", self.0)
        }
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let magnitude = self.0.abs();
        if magnitude >= YEAR {
            write!(f, "{:.1} yr", self.as_years())
        } else if magnitude >= WEEK {
            write!(f, "{:.1} wk", self.as_weeks())
        } else if magnitude >= DAY {
            write!(f, "{:.1} d", self.as_days())
        } else if magnitude >= HOUR {
            write!(f, "{:.1} hr", self.as_hours())
        } else if magnitude >= MINUTE {
            write!(f, "{:.1} min", self.as_minutes())
        } else {
            write!(f, "{:.3} s", self.0)
        }
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let magnitude = self.0.abs();
        if magnitude >= 1e6 {
            write!(f, "${:.2}M", self.as_millions())
        } else if magnitude >= 1e3 {
            write!(f, "${:.1}k", self.0 / 1e3)
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

impl fmt::Display for MoneyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.0}/hr", self.as_dollars_per_hour())
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_scale_by_binary_prefixes() {
        assert_eq!(Bytes::from_kib(1.0).value(), 1024.0);
        assert_eq!(Bytes::from_mib(1.0).value(), 1024.0 * 1024.0);
        assert_eq!(Bytes::from_gib(2.0).as_mib(), 2048.0);
        assert_eq!(Bytes::from_tib(1.0).as_gib(), 1024.0);
    }

    #[test]
    fn time_constructors_compose() {
        assert_eq!(TimeDelta::from_minutes(1.0).as_secs(), 60.0);
        assert_eq!(TimeDelta::from_hours(1.0).as_minutes(), 60.0);
        assert_eq!(TimeDelta::from_days(7.0).as_weeks(), 1.0);
        assert_eq!(TimeDelta::from_years(1.0).as_days(), 365.0);
    }

    #[test]
    fn whole_conversions_round_and_saturate() {
        assert_eq!(TimeDelta::from_secs(90.9).whole_secs(), 90);
        assert_eq!(TimeDelta::from_secs(-5.0).whole_secs(), 0);
        assert_eq!(TimeDelta::from_secs(f64::NAN).whole_secs(), 0);
        let day = TimeDelta::from_days(1.0);
        assert_eq!(TimeDelta::from_hours(50.0).whole_divisions(day), 2);
        assert_eq!(day.whole_divisions(TimeDelta::from_secs(0.0)), 0);
        assert_eq!(day.whole_divisions(TimeDelta::from_secs(-1.0)), 0);
    }

    #[test]
    fn round_helpers_collapse_edge_cases() {
        assert_eq!(round_to_u64(2.5), 3);
        assert_eq!(round_to_u64(-1.0), 0);
        assert_eq!(round_to_u64(f64::NAN), 0);
        assert_eq!(round_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(round_to_u32(1e20), u32::MAX);
        assert_eq!(round_to_usize(7.49), 7);
    }

    #[test]
    fn bandwidth_times_time_is_bytes() {
        let moved = Bandwidth::from_mib_per_sec(8.0) * TimeDelta::from_secs(4.0);
        assert_eq!(moved.as_mib(), 32.0);
        // Commutes.
        let moved2 = TimeDelta::from_secs(4.0) * Bandwidth::from_mib_per_sec(8.0);
        assert_eq!(moved, moved2);
    }

    #[test]
    fn bytes_over_bandwidth_is_time() {
        let t = Bytes::from_gib(1.0) / Bandwidth::from_mib_per_sec(1024.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_over_time_is_bandwidth() {
        let bw = Bytes::from_gib(1360.0) / TimeDelta::from_hours(48.0);
        assert!((bw.as_mib_per_sec() - 8.059).abs() < 0.01);
    }

    #[test]
    fn money_rate_times_time_is_money() {
        let rate = MoneyRate::from_dollars_per_hour(50_000.0);
        let penalty = rate * TimeDelta::from_hours(217.0);
        assert!((penalty.as_millions() - 10.85).abs() < 0.001);
    }

    #[test]
    fn dollars_per_hour_roundtrip() {
        let rate = MoneyRate::from_dollars_per_hour(50_000.0);
        assert!((rate.as_dollars_per_hour() - 50_000.0).abs() < 1e-9);
        assert!((rate.value() - 50_000.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn megabits_use_decimal_convention() {
        let oc3 = Bandwidth::from_megabits_per_sec(155.0);
        assert!((oc3.value() - 19_375_000.0).abs() < 1.0);
    }

    #[test]
    fn ratio_of_like_units_is_dimensionless() {
        let ratio = Bytes::from_gib(10.0) / Bytes::from_gib(4.0);
        assert!((ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sums_accumulate() {
        let total: Bytes = [1.0, 2.0, 3.0].iter().map(|g| Bytes::from_gib(*g)).sum();
        assert_eq!(total, Bytes::from_gib(6.0));
        let total: Utilization = [0.1, 0.2]
            .iter()
            .map(|f| Utilization::from_fraction(*f))
            .sum();
        assert!((total.as_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn utilization_flags_overcommit() {
        assert!(!Utilization::from_percent(99.9).is_overcommitted());
        assert!(!Utilization::FULL.is_overcommitted());
        assert!(Utilization::from_percent(100.1).is_overcommitted());
    }

    #[test]
    fn min_max_and_clamp() {
        let a = TimeDelta::from_hours(2.0);
        let b = TimeDelta::from_hours(3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((a - b).clamp_non_negative(), TimeDelta::ZERO);
    }

    #[test]
    fn approx_eq_is_relative() {
        let a = Bytes::from_gib(100.0);
        let b = Bytes::from_gib(100.4);
        assert!(a.approx_eq(b, 0.005));
        assert!(!a.approx_eq(b, 0.001));
        assert!(Bytes::ZERO.approx_eq(Bytes::from_bytes(1e-13), 1e-12));
    }

    #[test]
    fn display_picks_sensible_scales() {
        assert_eq!(Bytes::from_gib(1360.0).to_string(), "1.3 TiB");
        assert_eq!(Bytes::from_mib(1.5).to_string(), "1.5 MiB");
        assert_eq!(Bytes::from_bytes(12.0).to_string(), "12 B");
        assert_eq!(Bandwidth::from_mib_per_sec(12.4).to_string(), "12.4 MiB/s");
        assert_eq!(TimeDelta::from_hours(26.4).to_string(), "1.1 d");
        assert_eq!(TimeDelta::from_secs(0.004).to_string(), "0.004 s");
        assert_eq!(Money::from_dollars(11_940_000.0).to_string(), "$11.94M");
        assert_eq!(Utilization::from_percent(87.4).to_string(), "87.4%");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Bytes::ZERO).is_empty());
        assert!(!format!("{:?}", Utilization::ZERO).is_empty());
    }

    #[test]
    fn ensure_finite_rejects_nan_and_infinities() {
        assert_eq!(
            Bytes::from_gib(2.0).ensure_finite("size"),
            Ok(Bytes::from_gib(2.0))
        );
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Bytes::from_bytes(bad).ensure_finite("size").unwrap_err();
            assert!(err.to_string().contains("size"), "message names parameter");
        }
    }

    #[test]
    fn ensure_non_negative_rejects_negatives_and_nan() {
        assert_eq!(
            TimeDelta::from_hours(1.0).ensure_non_negative("window"),
            Ok(TimeDelta::from_hours(1.0))
        );
        assert_eq!(
            TimeDelta::ZERO.ensure_non_negative("window"),
            Ok(TimeDelta::ZERO)
        );
        assert!(TimeDelta::from_secs(-1.0)
            .ensure_non_negative("window")
            .is_err());
        assert!(TimeDelta::from_secs(f64::NAN)
            .ensure_non_negative("window")
            .is_err());
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let b = Bytes::from_gib(3.5);
        let json = serde_json::to_string(&b).unwrap();
        // Transparent: a bare number, no struct wrapper.
        let raw: f64 = json.parse().unwrap();
        assert_eq!(raw, b.value());
        let back: Bytes = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

//! The protected data object and its update behaviour (§3.1.1).
//!
//! Data protection techniques exploit a workload's update properties: some
//! propagate every update (synchronous mirroring), others propagate only
//! the *unique* updates accumulated over a window (batched mirroring,
//! incremental backup, split-mirror resilvering). The [`Workload`] type
//! therefore captures, besides capacity and average rates, the **batch
//! update rate curve** `batchUpdR(win)`: the rate of unique (deduplicated)
//! updates as a function of the accumulation window length. Longer windows
//! absorb more overwrites, so the curve is non-increasing in the window.

use crate::error::Error;
use crate::units::{Bandwidth, Bytes, TimeDelta};
use serde::{Deserialize, Serialize};

/// A single measured point of the batch update rate curve: over windows of
/// length `window`, unique updates arrive at `rate` on average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchRatePoint {
    /// The accumulation window length this point was measured over.
    pub window: TimeDelta,
    /// The unique-update rate observed for that window length.
    pub rate: Bandwidth,
}

/// A description of the primary data object and the I/O workload applied
/// to it.
///
/// Construct with [`Workload::builder`], which validates the physical
/// consistency of the parameters.
///
/// ```
/// use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
/// use ssdep_core::workload::Workload;
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let wl = Workload::builder("cello")
///     .data_capacity(Bytes::from_gib(1360.0))
///     .avg_access_rate(Bandwidth::from_kib_per_sec(1028.0))
///     .avg_update_rate(Bandwidth::from_kib_per_sec(799.0))
///     .burst_multiplier(10.0)
///     .batch_rate(TimeDelta::from_minutes(1.0), Bandwidth::from_kib_per_sec(727.0))
///     .batch_rate(TimeDelta::from_hours(12.0), Bandwidth::from_kib_per_sec(350.0))
///     .batch_rate(TimeDelta::from_hours(24.0), Bandwidth::from_kib_per_sec(317.0))
///     .build()?;
/// assert!(wl.batch_update_rate(TimeDelta::from_hours(24.0)) < wl.avg_update_rate());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    data_capacity: Bytes,
    avg_access_rate: Bandwidth,
    avg_update_rate: Bandwidth,
    burst_multiplier: f64,
    batch_curve: Vec<BatchRatePoint>,
}

impl Workload {
    /// Starts building a workload description named `name`.
    pub fn builder(name: impl Into<String>) -> WorkloadBuilder {
        WorkloadBuilder {
            name: name.into(),
            data_capacity: None,
            avg_access_rate: None,
            avg_update_rate: None,
            burst_multiplier: 1.0,
            batch_curve: Vec::new(),
        }
    }

    /// The workload's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the protected data object (`dataCap`).
    pub fn data_capacity(&self) -> Bytes {
        self.data_capacity
    }

    /// Average rate of read **and** write accesses (`avgAccessR`).
    pub fn avg_access_rate(&self) -> Bandwidth {
        self.avg_access_rate
    }

    /// Average rate of (non-unique) updates (`avgUpdateR`).
    pub fn avg_update_rate(&self) -> Bandwidth {
        self.avg_update_rate
    }

    /// Ratio of peak update rate to average update rate (`burstM`).
    pub fn burst_multiplier(&self) -> f64 {
        self.burst_multiplier
    }

    /// Worst-case (peak) update rate: `burstM × avgUpdateR`.
    pub fn peak_update_rate(&self) -> Bandwidth {
        self.avg_update_rate * self.burst_multiplier
    }

    /// Worst-case (peak) access rate: `burstM × avgAccessR`.
    pub fn peak_access_rate(&self) -> Bandwidth {
        self.avg_access_rate * self.burst_multiplier
    }

    /// The measured batch-update-rate curve points, sorted by window.
    pub fn batch_curve(&self) -> &[BatchRatePoint] {
        &self.batch_curve
    }

    /// Unique bytes updated within an accumulation window of length
    /// `window` (`batchUpdR(win) × win`), the size of a *partial*
    /// retrieval-point propagation.
    ///
    /// The value interpolates linearly between measured curve points (in
    /// unique-bytes space, which keeps it monotone in `window`), is capped
    /// by the total update volume `avgUpdateR × window`, and by the data
    /// capacity — a window can never contain more unique bytes than the
    /// dataset holds.
    pub fn unique_bytes(&self, window: TimeDelta) -> Bytes {
        let raw = self.uncapped_unique_bytes(window);
        raw.min(self.avg_update_rate * window)
            .min(self.data_capacity)
            .clamp_non_negative()
    }

    /// The unique-update rate for windows of length `window`
    /// (`batchUpdR(win)`), derived from [`Workload::unique_bytes`].
    ///
    /// Returns the average update rate for zero-length windows (no
    /// overwrite absorption is possible in an instant).
    pub fn batch_update_rate(&self, window: TimeDelta) -> Bandwidth {
        if window <= TimeDelta::ZERO {
            return self.avg_update_rate;
        }
        self.unique_bytes(window) / window
    }

    /// A proportionally grown (or shrunk) copy of this workload:
    /// capacity, access/update rates, and the batch-update curve all
    /// scale by `factor`, modeling organic dataset growth with unchanged
    /// access patterns. The burst multiplier is shape, not volume, so it
    /// stays.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `factor` is not positive
    /// and finite.
    pub fn scaled(&self, factor: f64) -> Result<Workload, Error> {
        if !(factor > 0.0 && factor.is_finite()) {
            return Err(Error::invalid(
                "workload.growthFactor",
                "growth factor must be positive and finite",
            ));
        }
        let mut builder = Workload::builder(format!("{} x{factor:.2}", self.name))
            .data_capacity(self.data_capacity * factor)
            .avg_access_rate(self.avg_access_rate * factor)
            .avg_update_rate(self.avg_update_rate * factor)
            .burst_multiplier(self.burst_multiplier);
        for point in &self.batch_curve {
            builder = builder.batch_rate(point.window, point.rate * factor);
        }
        builder.build()
    }

    /// Re-runs the builder's validation over a possibly-deserialized
    /// workload (serde bypasses [`Workload::builder`], so a JSON spec can
    /// carry values the builder would reject).
    ///
    /// # Errors
    ///
    /// As [`WorkloadBuilder::build`].
    pub fn validate(&self) -> Result<(), Error> {
        let mut builder = Workload::builder(self.name.clone())
            .data_capacity(self.data_capacity)
            .avg_access_rate(self.avg_access_rate)
            .avg_update_rate(self.avg_update_rate)
            .burst_multiplier(self.burst_multiplier);
        for point in &self.batch_curve {
            builder = builder.batch_rate(point.window, point.rate);
        }
        builder.build().map(|_| ())
    }

    fn uncapped_unique_bytes(&self, window: TimeDelta) -> Bytes {
        let curve = &self.batch_curve;
        if window <= TimeDelta::ZERO {
            return Bytes::ZERO;
        }
        let Some(first) = curve.first() else {
            // No curve measured: assume no overwrite absorption at all.
            return self.avg_update_rate * window;
        };
        if window <= first.window {
            // Below the first measurement the first point's *rate* is the
            // best available estimate.
            return first.rate * window;
        }
        let last = curve.last().unwrap_or(first);
        if window >= last.window {
            // Beyond the last measurement, unique updates keep arriving at
            // the last observed rate.
            return last.rate * window;
        }
        // Interpolate linearly in unique-bytes space between the two
        // surrounding points.
        let (mut lo, mut hi) = (first, first);
        for point in curve.iter() {
            if point.window <= window {
                lo = point;
            } else {
                hi = point;
                break;
            }
        }
        let lo_bytes = lo.rate * lo.window;
        let hi_bytes = hi.rate * hi.window;
        let span = hi.window - lo.window;
        let frac = (window - lo.window) / span;
        lo_bytes + (hi_bytes - lo_bytes) * frac
    }
}

/// Incremental builder for [`Workload`]; see [`Workload::builder`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    data_capacity: Option<Bytes>,
    avg_access_rate: Option<Bandwidth>,
    avg_update_rate: Option<Bandwidth>,
    burst_multiplier: f64,
    batch_curve: Vec<BatchRatePoint>,
}

impl WorkloadBuilder {
    /// Sets the size of the protected data object (required).
    pub fn data_capacity(mut self, capacity: Bytes) -> Self {
        self.data_capacity = Some(capacity);
        self
    }

    /// Sets the average access (read+write) rate (required).
    pub fn avg_access_rate(mut self, rate: Bandwidth) -> Self {
        self.avg_access_rate = Some(rate);
        self
    }

    /// Sets the average update rate (required).
    pub fn avg_update_rate(mut self, rate: Bandwidth) -> Self {
        self.avg_update_rate = Some(rate);
        self
    }

    /// Sets the ratio of peak to average update rate (default `1.0`).
    pub fn burst_multiplier(mut self, multiplier: f64) -> Self {
        self.burst_multiplier = multiplier;
        self
    }

    /// Adds one measured point of the batch-update-rate curve. Points may
    /// be added in any order.
    pub fn batch_rate(mut self, window: TimeDelta, rate: Bandwidth) -> Self {
        self.batch_curve.push(BatchRatePoint { window, rate });
        self
    }

    /// Validates the accumulated parameters and builds the [`Workload`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a required field is
    /// missing, a magnitude is non-positive or non-finite, the update rate
    /// exceeds the access rate, the burst multiplier is below one, or the
    /// batch curve is physically inconsistent (rates increasing with
    /// window, unique bytes decreasing, rates above `avgUpdateR`).
    pub fn build(self) -> Result<Workload, Error> {
        let name = self.name;
        let data_capacity = self
            .data_capacity
            .ok_or_else(|| Error::invalid("workload.dataCap", "missing"))?;
        let avg_access_rate = self
            .avg_access_rate
            .ok_or_else(|| Error::invalid("workload.avgAccessR", "missing"))?;
        let avg_update_rate = self
            .avg_update_rate
            .ok_or_else(|| Error::invalid("workload.avgUpdateR", "missing"))?;

        if !(data_capacity.value() > 0.0 && data_capacity.is_finite()) {
            return Err(Error::invalid(
                "workload.dataCap",
                "must be positive and finite",
            ));
        }
        if !(avg_access_rate.value() > 0.0 && avg_access_rate.is_finite()) {
            return Err(Error::invalid(
                "workload.avgAccessR",
                "must be positive and finite",
            ));
        }
        if !(avg_update_rate.value() >= 0.0 && avg_update_rate.is_finite()) {
            return Err(Error::invalid(
                "workload.avgUpdateR",
                "must be non-negative and finite",
            ));
        }
        if avg_update_rate > avg_access_rate {
            return Err(Error::invalid(
                "workload.avgUpdateR",
                "updates are a subset of accesses, so avgUpdateR must not exceed avgAccessR",
            ));
        }
        if !(self.burst_multiplier >= 1.0 && self.burst_multiplier.is_finite()) {
            return Err(Error::invalid("workload.burstM", "must be >= 1 and finite"));
        }

        let mut batch_curve = self.batch_curve;
        batch_curve.sort_by(|a, b| a.window.value().total_cmp(&b.window.value()));
        for (i, point) in batch_curve.iter().enumerate() {
            let path = format!("workload.batchUpdR[{i}]");
            if !(point.window.value() > 0.0 && point.window.is_finite()) {
                return Err(Error::invalid(path, "window must be positive and finite"));
            }
            if !(point.rate.value() >= 0.0 && point.rate.is_finite()) {
                return Err(Error::invalid(path, "rate must be non-negative and finite"));
            }
            if point.rate > avg_update_rate {
                return Err(Error::invalid(
                    path,
                    "unique-update rate cannot exceed the total update rate",
                ));
            }
        }
        for pair in batch_curve.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.window == b.window {
                return Err(Error::invalid(
                    "workload.batchUpdR",
                    format!("duplicate window {}", a.window),
                ));
            }
            if b.rate > a.rate {
                return Err(Error::invalid(
                    "workload.batchUpdR",
                    "rates must be non-increasing with window length (overwrites only help)",
                ));
            }
            let (a_bytes, b_bytes) = (a.rate * a.window, b.rate * b.window);
            if b_bytes < a_bytes {
                return Err(Error::invalid(
                    "workload.batchUpdR",
                    "unique bytes must be non-decreasing with window length",
                ));
            }
        }

        Ok(Workload {
            name,
            data_capacity,
            avg_access_rate,
            avg_update_rate,
            burst_multiplier: self.burst_multiplier,
            batch_curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cello() -> Workload {
        Workload::builder("cello")
            .data_capacity(Bytes::from_gib(1360.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(1028.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(799.0))
            .burst_multiplier(10.0)
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(727.0),
            )
            .batch_rate(
                TimeDelta::from_hours(12.0),
                Bandwidth::from_kib_per_sec(350.0),
            )
            .batch_rate(
                TimeDelta::from_hours(24.0),
                Bandwidth::from_kib_per_sec(317.0),
            )
            .batch_rate(
                TimeDelta::from_hours(48.0),
                Bandwidth::from_kib_per_sec(317.0),
            )
            .batch_rate(
                TimeDelta::from_weeks(1.0),
                Bandwidth::from_kib_per_sec(317.0),
            )
            .build()
            .expect("cello parameters are valid")
    }

    #[test]
    fn exact_knots_return_measured_rates() {
        let wl = cello();
        let r = wl.batch_update_rate(TimeDelta::from_hours(12.0));
        assert!((r.as_kib_per_sec() - 350.0).abs() < 1e-6);
        let r = wl.batch_update_rate(TimeDelta::from_weeks(1.0));
        assert!((r.as_kib_per_sec() - 317.0).abs() < 1e-6);
    }

    #[test]
    fn below_first_knot_uses_first_rate() {
        let wl = cello();
        let r = wl.batch_update_rate(TimeDelta::from_secs(10.0));
        assert!((r.as_kib_per_sec() - 727.0).abs() < 1e-6);
    }

    #[test]
    fn beyond_last_knot_holds_last_rate() {
        let wl = cello();
        let r = wl.batch_update_rate(TimeDelta::from_weeks(3.0));
        assert!((r.as_kib_per_sec() - 317.0).abs() < 1e-6);
    }

    #[test]
    fn interpolation_is_monotone_in_unique_bytes() {
        let wl = cello();
        let mut prev = Bytes::ZERO;
        for hours in 1..200 {
            let bytes = wl.unique_bytes(TimeDelta::from_hours(hours as f64));
            assert!(
                bytes >= prev,
                "unique bytes decreased between {} and {} hours",
                hours - 1,
                hours
            );
            prev = bytes;
        }
    }

    #[test]
    fn unique_bytes_capped_by_dataset_size() {
        let wl = cello();
        let huge = wl.unique_bytes(TimeDelta::from_years(10.0));
        assert_eq!(huge, wl.data_capacity());
    }

    #[test]
    fn unique_bytes_capped_by_total_updates() {
        // A workload with no curve falls back to the raw update volume.
        let wl = Workload::builder("raw")
            .data_capacity(Bytes::from_gib(100.0))
            .avg_access_rate(Bandwidth::from_mib_per_sec(2.0))
            .avg_update_rate(Bandwidth::from_mib_per_sec(1.0))
            .build()
            .unwrap();
        let one_hour = wl.unique_bytes(TimeDelta::from_hours(1.0));
        assert_eq!(
            one_hour,
            Bandwidth::from_mib_per_sec(1.0) * TimeDelta::from_hours(1.0)
        );
    }

    #[test]
    fn zero_window_has_zero_unique_bytes_and_avg_rate() {
        let wl = cello();
        assert_eq!(wl.unique_bytes(TimeDelta::ZERO), Bytes::ZERO);
        assert_eq!(wl.batch_update_rate(TimeDelta::ZERO), wl.avg_update_rate());
    }

    #[test]
    fn peak_rates_scale_by_burst_multiplier() {
        let wl = cello();
        assert!((wl.peak_update_rate().as_kib_per_sec() - 7990.0).abs() < 1e-6);
        assert!((wl.peak_access_rate().as_kib_per_sec() - 10280.0).abs() < 1e-6);
    }

    #[test]
    fn builder_rejects_missing_fields() {
        let err = Workload::builder("x").build().unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn builder_rejects_update_exceeding_access() {
        let err = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(10.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(20.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("avgUpdateR"));
    }

    #[test]
    fn builder_rejects_increasing_batch_rates() {
        let err = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(100.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(100.0))
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(10.0),
            )
            .batch_rate(
                TimeDelta::from_hours(1.0),
                Bandwidth::from_kib_per_sec(50.0),
            )
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("non-increasing"));
    }

    #[test]
    fn builder_rejects_batch_rate_above_update_rate() {
        let err = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(100.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(50.0))
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(60.0),
            )
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unique-update rate"));
    }

    #[test]
    fn builder_rejects_burst_below_one() {
        let err = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(100.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(50.0))
            .burst_multiplier(0.5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("burstM"));
    }

    #[test]
    fn builder_rejects_duplicate_windows() {
        let err = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(100.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(50.0))
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(10.0),
            )
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(9.0),
            )
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate window"));
    }

    #[test]
    fn curve_points_sort_on_build() {
        let wl = Workload::builder("x")
            .data_capacity(Bytes::from_gib(1.0))
            .avg_access_rate(Bandwidth::from_kib_per_sec(100.0))
            .avg_update_rate(Bandwidth::from_kib_per_sec(50.0))
            .batch_rate(
                TimeDelta::from_hours(1.0),
                Bandwidth::from_kib_per_sec(10.0),
            )
            .batch_rate(
                TimeDelta::from_minutes(1.0),
                Bandwidth::from_kib_per_sec(40.0),
            )
            .build()
            .unwrap();
        assert!(wl.batch_curve()[0].window < wl.batch_curve()[1].window);
    }

    #[test]
    fn serde_roundtrip() {
        let wl = cello();
        let json = serde_json::to_string(&wl).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(wl, back);
    }

    #[test]
    fn scaling_multiplies_volumes_and_keeps_shape() {
        let wl = cello();
        let grown = wl.scaled(3.0).unwrap();
        assert_eq!(grown.data_capacity(), wl.data_capacity() * 3.0);
        assert_eq!(grown.avg_update_rate(), wl.avg_update_rate() * 3.0);
        assert_eq!(grown.burst_multiplier(), wl.burst_multiplier());
        let window = TimeDelta::from_hours(12.0);
        assert!(grown
            .batch_update_rate(window)
            .approx_eq(wl.batch_update_rate(window) * 3.0, 1e-12));
        // Shrinking works too.
        let shrunk = wl.scaled(0.5).unwrap();
        assert_eq!(shrunk.data_capacity(), wl.data_capacity() * 0.5);
    }

    #[test]
    fn scaling_rejects_nonpositive_factors() {
        assert!(cello().scaled(0.0).is_err());
        assert!(cello().scaled(-1.0).is_err());
        assert!(cello().scaled(f64::NAN).is_err());
        assert!(cello().scaled(f64::INFINITY).is_err());
    }
}

/// Structural fingerprinting (cache keys) — lives here because the
/// fields are private. Every serialized field is visited in declaration
/// order; see `crate::fingerprint` for the stability contract.
mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for BatchRatePoint {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.window.fingerprint_into(hasher);
            self.rate.fingerprint_into(hasher);
        }
    }

    impl Fingerprintable for Workload {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.name.fingerprint_into(hasher);
            self.data_capacity.fingerprint_into(hasher);
            self.avg_access_rate.fingerprint_into(hasher);
            self.avg_update_rate.fingerprint_into(hasher);
            self.burst_multiplier.fingerprint_into(hasher);
            self.batch_curve.fingerprint_into(hasher);
        }
    }
}

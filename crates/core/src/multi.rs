//! Multi-object workloads and dependency-aware recovery (§3.1.1's noted
//! extension).
//!
//! Real systems store many data objects — database tablespaces, logs,
//! file systems — protected by one hierarchy. The paper models a single
//! object "for simplicity" and notes the extension: track each object's
//! workload demands and the inter-object dependencies during recovery.
//! This module provides it:
//!
//! * every object carries its own [`Workload`]; demands on devices are
//!   the per-object demands summed;
//! * recovery restores objects as one serialized stream over the shared
//!   recovery path, ordered by dependencies then priority, so each
//!   object comes back at its own time ([`ObjectOutcome::ready_at`]);
//! * unavailability penalties accrue per object (weighted by capacity
//!   share) until *that* object is restored — restoring the critical
//!   database first genuinely reduces the bill.

use crate::analysis::{self, LossReport, UtilizationReport};
use crate::demands::{DemandContribution, DemandSet, LevelDemands};
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Bytes, Money, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One protected data object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    workload: Workload,
    restore_priority: u32,
    depends_on: Vec<String>,
    business_weight: Option<f64>,
}

impl ObjectSpec {
    /// Creates an object around its workload, with default priority and
    /// no dependencies. The object's name is its workload's name.
    pub fn new(workload: Workload) -> ObjectSpec {
        ObjectSpec {
            workload,
            restore_priority: 100,
            depends_on: Vec::new(),
            business_weight: None,
        }
    }

    /// Sets the restore priority (lower restores earlier; default 100).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> ObjectSpec {
        self.restore_priority = priority;
        self
    }

    /// Sets the object's share of the unavailability penalty rate (a
    /// small log can carry most of the business value). Shares should
    /// sum to roughly one across the set; objects without an explicit
    /// weight default to their capacity share — note that with capacity
    /// weights the total penalty is schedule-invariant (restore time is
    /// also proportional to capacity), so explicit weights are what make
    /// restore prioritization matter.
    #[must_use]
    pub fn with_business_weight(mut self, weight: f64) -> ObjectSpec {
        self.business_weight = Some(weight);
        self
    }

    /// Declares that this object is only usable once `name` has been
    /// restored (it will be scheduled after it).
    #[must_use]
    pub fn depends_on(mut self, name: impl Into<String>) -> ObjectSpec {
        self.depends_on.push(name.into());
        self
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        self.workload.name()
    }

    /// The object's workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }
}

/// A set of objects protected by one hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiObjectWorkload {
    objects: Vec<ObjectSpec>,
}

impl MultiObjectWorkload {
    /// Builds the set, validating names and dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the set is empty, names
    /// collide, a dependency names an unknown object, or the dependency
    /// graph has a cycle.
    pub fn new(objects: Vec<ObjectSpec>) -> Result<MultiObjectWorkload, Error> {
        if objects.is_empty() {
            return Err(Error::invalid(
                "multi.objects",
                "at least one object is required",
            ));
        }
        let mut seen = BTreeMap::new();
        for (index, object) in objects.iter().enumerate() {
            if seen.insert(object.name().to_string(), index).is_some() {
                return Err(Error::invalid(
                    "multi.objects",
                    format!("duplicate object name `{}`", object.name()),
                ));
            }
        }
        for object in &objects {
            for dep in &object.depends_on {
                if !seen.contains_key(dep) {
                    return Err(Error::invalid(
                        format!("multi.objects[{}].dependsOn", object.name()),
                        format!("unknown object `{dep}`"),
                    ));
                }
            }
        }
        let set = MultiObjectWorkload { objects };
        set.restore_order()?; // detects cycles
        Ok(set)
    }

    /// The objects, in declaration order.
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// Total capacity across objects.
    pub fn total_capacity(&self) -> Bytes {
        self.objects
            .iter()
            .map(|o| o.workload.data_capacity())
            .sum()
    }

    /// Collapses the set into one aggregate [`Workload`]: capacities and
    /// rates sum; the burst multiplier is the capacity-weighted mean (a
    /// burst in one object is diluted by the others); the batch-update
    /// curve sums each object's unique bytes at the union of their knot
    /// windows.
    ///
    /// Useful for quick single-object approximations of a multi-object
    /// system (the aggregate's demands match the per-object sum for
    /// capacity, and closely for bandwidth).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the summed rates overflow
    /// the builder's finiteness invariants (pathologically large
    /// aggregates).
    pub fn combined_workload(&self) -> Result<Workload, Error> {
        let mut windows: Vec<crate::units::TimeDelta> = self
            .objects
            .iter()
            .flat_map(|o| o.workload.batch_curve().iter().map(|p| p.window))
            .collect();
        windows.sort_by(|a, b| a.value().total_cmp(&b.value()));
        windows.dedup();

        let total_capacity = self.total_capacity();
        let mut access = crate::units::Bandwidth::ZERO;
        let mut update = crate::units::Bandwidth::ZERO;
        let mut burst = 0.0;
        for object in &self.objects {
            access += object.workload.avg_access_rate();
            update += object.workload.avg_update_rate();
            burst += object.workload.burst_multiplier()
                * (object.workload.data_capacity() / total_capacity);
        }

        let mut builder = Workload::builder("combined")
            .data_capacity(total_capacity)
            .avg_access_rate(access)
            .avg_update_rate(update)
            .burst_multiplier(burst.max(1.0));
        for window in windows {
            let unique: Bytes = self
                .objects
                .iter()
                .map(|o| o.workload.unique_bytes(window))
                .sum();
            builder = builder.batch_rate(window, unique / window);
        }
        builder.build()
    }

    /// The restore order: a topological order of the dependency graph,
    /// breaking ties by (priority, declaration order). Returns indices
    /// into [`objects`](MultiObjectWorkload::objects).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when dependencies are cyclic.
    pub fn restore_order(&self) -> Result<Vec<usize>, Error> {
        let index_of: BTreeMap<&str, usize> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name(), i))
            .collect();
        let mut remaining: Vec<usize> = (0..self.objects.len()).collect();
        let mut done: Vec<bool> = vec![false; self.objects.len()];
        let mut order = Vec::with_capacity(self.objects.len());
        while !remaining.is_empty() {
            // Among objects whose dependencies are all restored, pick the
            // lowest (priority, declaration index).
            let next = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    self.objects[i]
                        .depends_on
                        .iter()
                        .all(|dep| done[index_of[dep.as_str()]])
                })
                .min_by_key(|&i| (self.objects[i].restore_priority, i));
            let Some(next) = next else {
                return Err(Error::invalid(
                    "multi.objects",
                    "dependency cycle among objects",
                ));
            };
            done[next] = true;
            remaining.retain(|&i| i != next);
            order.push(next);
        }
        Ok(order)
    }

    /// Aggregates every object's demands on the design into one set,
    /// merged per (level, device).
    ///
    /// # Errors
    ///
    /// Propagates technique demand errors.
    pub fn demands(&self, design: &StorageDesign) -> Result<DemandSet, Error> {
        let mut merged: Vec<BTreeMap<crate::device::DeviceId, DemandContribution>> =
            vec![BTreeMap::new(); design.levels().len()];
        for object in &self.objects {
            let per_object = design.demands(&object.workload)?;
            for level in per_object.levels() {
                for c in &level.contributions {
                    let entry = merged[level.level]
                        .entry(c.device)
                        .or_insert_with(|| DemandContribution::none(c.device));
                    entry.bandwidth += c.bandwidth;
                    entry.capacity += c.capacity;
                    entry.shipments_per_year += c.shipments_per_year;
                }
            }
        }
        let mut set = DemandSet::new();
        for (index, contributions) in merged.into_iter().enumerate() {
            set.push_level(LevelDemands {
                level: index,
                level_name: design.levels()[index].name().to_string(),
                contributions: contributions.into_values().collect(),
            });
        }
        Ok(set)
    }
}

/// The recovery outcome for one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectOutcome {
    /// The object's name.
    pub name: String,
    /// Its position in the restore schedule (0 = first).
    pub restore_position: usize,
    /// Bytes its restore read from the source level.
    pub restore_bytes: Bytes,
    /// When the object is usable again, measured from the failure.
    pub ready_at: TimeDelta,
    /// The object's share of the unavailability penalty.
    pub unavailability_penalty: Money,
}

/// The evaluation of a multi-object system under one failure scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiEvaluation {
    /// Normal-mode utilization of the aggregated demands.
    pub utilization: UtilizationReport,
    /// Recovery source and worst-case loss (shared by all objects: the
    /// hierarchy's lag does not depend on which object is inside an RP).
    pub loss: LossReport,
    /// Per-object outcomes, in restore order.
    pub objects: Vec<ObjectOutcome>,
    /// When the last object is usable again.
    pub total_recovery_time: TimeDelta,
    /// Total loss penalty (capacity-weighted across objects this equals
    /// the single-object formula).
    pub loss_penalty: Money,
    /// Total unavailability penalty (sum of per-object shares).
    pub unavailability_penalty: Money,
}

impl MultiEvaluation {
    /// Looks an object outcome up by name.
    pub fn object(&self, name: &str) -> Option<&ObjectOutcome> {
        self.objects.iter().find(|o| o.name == name)
    }
}

/// Evaluates a multi-object system: aggregated utilization, shared loss
/// analysis, and a dependency-ordered serialized restore schedule.
///
/// # Errors
///
/// As [`analysis::evaluate`], plus multi-object validation errors.
pub fn evaluate_multi(
    design: &StorageDesign,
    multi: &MultiObjectWorkload,
    requirements: &BusinessRequirements,
    scenario: &FailureScenario,
) -> Result<MultiEvaluation, Error> {
    let demands = multi.demands(design)?;
    let utilization = analysis::utilization_from_demands(design, &demands);
    utilization.check()?;
    let loss = analysis::data_loss(design, scenario)?;
    let order = multi.restore_order()?;

    let total_capacity = multi.total_capacity();
    let technique = design.levels()[loss.source_level].technique();

    let mut objects = Vec::with_capacity(order.len());
    let mut cumulative_bytes = Bytes::ZERO;
    let mut unavailability_penalty = Money::ZERO;
    let mut total_recovery_time = TimeDelta::ZERO;
    for (position, &index) in order.iter().enumerate() {
        let object = &multi.objects()[index];
        let needed = scenario.recovery_size(object.workload.data_capacity());
        let restore_bytes = technique.worst_restore_bytes(&object.workload, needed);
        cumulative_bytes += restore_bytes;
        // Fixed overheads (provisioning, shipment, load) are shared; the
        // transfer is one serialized stream, so object k is ready when
        // the cumulative bytes through it have moved.
        let report = analysis::recovery_with_bytes(
            design,
            &demands,
            scenario,
            loss.source_level,
            cumulative_bytes,
        )?;
        let ready_at = report.total_time;
        let share = object
            .business_weight
            .unwrap_or_else(|| object.workload.data_capacity() / total_capacity);
        let penalty = requirements.unavailability_penalty_rate() * ready_at * share;
        unavailability_penalty += penalty;
        total_recovery_time = total_recovery_time.max(ready_at);
        objects.push(ObjectOutcome {
            name: object.name().to_string(),
            restore_position: position,
            restore_bytes,
            ready_at,
            unavailability_penalty: penalty,
        });
    }

    let loss_penalty = requirements.loss_penalty_rate() * loss.worst_loss;
    Ok(MultiEvaluation {
        utilization,
        loss,
        objects,
        total_recovery_time,
        loss_penalty,
        unavailability_penalty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::Bandwidth;

    fn object(name: &str, gib: f64) -> ObjectSpec {
        ObjectSpec::new(
            Workload::builder(name)
                .data_capacity(Bytes::from_gib(gib))
                .avg_access_rate(Bandwidth::from_kib_per_sec(400.0))
                .avg_update_rate(Bandwidth::from_kib_per_sec(300.0))
                .batch_rate(
                    TimeDelta::from_hours(12.0),
                    Bandwidth::from_kib_per_sec(120.0),
                )
                .build()
                .unwrap(),
        )
    }

    fn trio() -> MultiObjectWorkload {
        MultiObjectWorkload::new(vec![
            object("tablespace", 600.0)
                .with_priority(10)
                .depends_on("redo log"),
            object("redo log", 40.0).with_priority(1),
            object("archive", 700.0).with_priority(50),
        ])
        .unwrap()
    }

    fn scenario() -> FailureScenario {
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now)
    }

    #[test]
    fn restore_order_respects_dependencies_then_priority() {
        let order = trio().restore_order().unwrap();
        let names: Vec<&str> = order.iter().map(|&i| trio_name(i)).collect();
        assert_eq!(names, ["redo log", "tablespace", "archive"]);
    }

    fn trio_name(index: usize) -> &'static str {
        ["tablespace", "redo log", "archive"][index]
    }

    #[test]
    fn cycles_are_rejected() {
        let err = MultiObjectWorkload::new(vec![
            object("a", 1.0).depends_on("b"),
            object("b", 1.0).depends_on("a"),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn unknown_dependencies_and_duplicates_are_rejected() {
        let err = MultiObjectWorkload::new(vec![object("a", 1.0).depends_on("ghost")]).unwrap_err();
        assert!(err.to_string().contains("ghost"));
        let err = MultiObjectWorkload::new(vec![object("a", 1.0), object("a", 2.0)]).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        assert!(MultiObjectWorkload::new(vec![]).is_err());
    }

    #[test]
    fn aggregated_demands_equal_the_sum_of_objects() {
        let design = crate::presets::baseline_design();
        let multi = trio();
        let combined = multi.demands(&design).unwrap();
        let array = design.device_id("primary array").unwrap();
        let mut expected_cap = Bytes::ZERO;
        for object in multi.objects() {
            expected_cap += design
                .demands(object.workload())
                .unwrap()
                .capacity_on(array);
        }
        assert!(combined.capacity_on(array).approx_eq(expected_cap, 1e-12));
    }

    #[test]
    fn objects_come_back_in_schedule_order_with_growing_ready_times() {
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let evaluation = evaluate_multi(&design, &trio(), &requirements, &scenario()).unwrap();
        assert_eq!(evaluation.objects.len(), 3);
        assert_eq!(evaluation.objects[0].name, "redo log");
        for pair in evaluation.objects.windows(2) {
            assert!(pair[0].ready_at < pair[1].ready_at);
        }
        assert_eq!(
            evaluation.total_recovery_time,
            evaluation.objects.last().unwrap().ready_at
        );
        // The tiny redo log is back orders of magnitude sooner than the
        // archive.
        let log = evaluation.object("redo log").unwrap();
        let archive = evaluation.object("archive").unwrap();
        assert!(log.ready_at < archive.ready_at * 0.2);
    }

    #[test]
    fn capacity_weighted_penalties_are_schedule_invariant() {
        // With default (capacity-share) weights and transfer time
        // proportional to capacity, Σ cᵢ·ready(i) is symmetric in the
        // order — a useful sanity property the implementation must hit
        // exactly.
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let log_first = evaluate_multi(&design, &trio(), &requirements, &scenario()).unwrap();

        let archive_first = MultiObjectWorkload::new(vec![
            object("tablespace", 600.0)
                .with_priority(10)
                .depends_on("redo log"),
            object("redo log", 40.0).with_priority(60),
            object("archive", 700.0).with_priority(1),
        ])
        .unwrap();
        let archive_eval =
            evaluate_multi(&design, &archive_first, &requirements, &scenario()).unwrap();
        assert_eq!(archive_eval.objects[0].name, "archive");
        assert!(archive_eval
            .total_recovery_time
            .approx_eq(log_first.total_recovery_time, 1e-9));
        assert!(archive_eval
            .unavailability_penalty
            .approx_eq(log_first.unavailability_penalty, 1e-6));
    }

    #[test]
    fn business_weights_make_restore_priority_matter() {
        // The redo log carries most of the business value: restoring it
        // first must be cheaper than restoring it last.
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let weighted = |log_priority: u32| {
            MultiObjectWorkload::new(vec![
                object("tablespace", 600.0).with_business_weight(0.15),
                object("redo log", 40.0)
                    .with_priority(log_priority)
                    .with_business_weight(0.8),
                object("archive", 700.0).with_business_weight(0.05),
            ])
            .unwrap()
        };
        let log_first = evaluate_multi(&design, &weighted(1), &requirements, &scenario()).unwrap();
        let log_last = evaluate_multi(&design, &weighted(999), &requirements, &scenario()).unwrap();
        assert_eq!(log_first.objects[0].name, "redo log");
        assert_eq!(log_last.objects.last().unwrap().name, "redo log");
        assert!(
            log_first.unavailability_penalty < log_last.unavailability_penalty * 0.7,
            "{} vs {}",
            log_first.unavailability_penalty,
            log_last.unavailability_penalty
        );
    }

    #[test]
    fn loss_analysis_is_shared_across_objects() {
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let evaluation = evaluate_multi(&design, &trio(), &requirements, &scenario()).unwrap();
        assert_eq!(evaluation.loss.source_level_name(), Some("tape backup"));
        assert!((evaluation.loss.worst_loss.as_hours() - 217.0).abs() < 1e-6);
    }

    #[test]
    fn serde_roundtrip() {
        let multi = trio();
        let json = serde_json::to_string(&multi).unwrap();
        let back: MultiObjectWorkload = serde_json::from_str(&json).unwrap();
        assert_eq!(multi, back);
    }

    #[test]
    fn combined_workload_sums_volumes() {
        let multi = trio();
        let combined = multi.combined_workload().unwrap();
        assert_eq!(combined.data_capacity(), Bytes::from_gib(1340.0));
        assert!(combined
            .avg_update_rate()
            .approx_eq(Bandwidth::from_kib_per_sec(900.0), 1e-12));
        // Unique bytes sum at the shared knot.
        let window = TimeDelta::from_hours(12.0);
        let per_object: Bytes = multi
            .objects()
            .iter()
            .map(|o| o.workload().unique_bytes(window))
            .sum();
        assert!(combined.unique_bytes(window).approx_eq(per_object, 1e-9));
        // And the aggregate is a valid workload for direct evaluation.
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        crate::analysis::evaluate(&design, &combined, &requirements, &scenario()).unwrap();
    }
}

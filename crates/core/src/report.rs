//! Plain-text rendering of evaluation results, in the shape of the
//! paper's tables.
//!
//! These renderers back the CLI and the reproduction benchmarks; they are
//! deliberately simple fixed-width tables with no external dependencies.

use crate::analysis::Evaluation;
use crate::units::TimeDelta;
use std::fmt::Write as _;

/// A minimal fixed-width text table builder.
///
/// ```
/// use ssdep_core::report::TextTable;
///
/// let mut table = TextTable::new(["device", "bw", "cap"]);
/// table.row(["disk array", "2.4%", "87.4%"]);
/// let text = table.render();
/// assert!(text.contains("disk array"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with a header separator line.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(columns) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a duration the way the paper's tables quote them: seconds
/// below a minute, hours otherwise.
pub fn paper_time(t: TimeDelta) -> String {
    if t.as_secs() < 60.0 {
        format!("{:.3} s", t.as_secs())
    } else {
        format!("{:.1} hr", t.as_hours())
    }
}

/// Renders an evaluation's utilization in the shape of paper Table 5.
pub fn render_utilization(evaluation: &Evaluation) -> String {
    let mut table = TextTable::new(["Device / technique", "Bandwidth", "Capacity"]);
    for device in &evaluation.utilization.devices {
        table.row([
            device.device_name.clone(),
            format!(
                "{} ({})",
                device.bandwidth_utilization, device.bandwidth_demand
            ),
            format!(
                "{} ({})",
                device.capacity_utilization, device.capacity_demand
            ),
        ]);
        for share in &device.shares {
            table.row([
                format!("  {}", share.level_name),
                share.bandwidth_utilization.to_string(),
                share.capacity_utilization.to_string(),
            ]);
        }
    }
    table.row([
        "overall system".to_string(),
        evaluation.utilization.system_bandwidth.to_string(),
        evaluation.utilization.system_capacity.to_string(),
    ]);
    table.render()
}

/// Renders recovery/loss outcomes for several scenarios in the shape of
/// paper Table 6.
pub fn render_dependability(evaluations: &[Evaluation]) -> String {
    let mut table = TextTable::new([
        "Failure scope",
        "Recovery source",
        "Recovery time",
        "Recent data loss",
    ]);
    for evaluation in evaluations {
        table.row([
            evaluation.scenario.scope.name().to_string(),
            evaluation.recovery.source_level_name.clone(),
            paper_time(evaluation.recovery.total_time),
            format!("{:.0} hr", evaluation.loss.worst_loss.as_hours()),
        ]);
    }
    table.render()
}

/// Renders an evaluation's cost breakdown in the shape of paper
/// Figure 5.
pub fn render_costs(evaluation: &Evaluation) -> String {
    let mut table = TextTable::new(["Cost component", "Annual cost"]);
    for outlay in &evaluation.cost.outlays_by_level {
        table.row([
            format!("outlay: {}", outlay.level_name),
            outlay.outlay.to_string(),
        ]);
    }
    table.row([
        "outlay: spares".to_string(),
        evaluation.cost.spare_outlay.to_string(),
    ]);
    table.row([
        "outlay: recovery facility".to_string(),
        evaluation.cost.facility_outlay.to_string(),
    ]);
    table.row([
        "penalty: data outage".to_string(),
        evaluation.cost.unavailability_penalty.to_string(),
    ]);
    table.row([
        "penalty: recent data loss".to_string(),
        evaluation.cost.loss_penalty.to_string(),
    ]);
    table.row(["TOTAL".to_string(), evaluation.cost.total_cost.to_string()]);
    table.render()
}

/// Renders the recovery timeline in the shape of paper Figure 4.
pub fn render_recovery_timeline(evaluation: &Evaluation) -> String {
    let mut table = TextTable::new(["Task", "Start", "Duration", "End"]);
    for step in &evaluation.recovery.steps {
        table.row([
            step.description.clone(),
            paper_time(step.start),
            paper_time(step.duration),
            paper_time(step.end()),
        ]);
    }
    table.row([
        "application running".to_string(),
        paper_time(evaluation.recovery.total_time),
        String::new(),
        String::new(),
    ]);
    table.render()
}

/// Renders labeled values as a horizontal ASCII bar chart, scaled to
/// `width` characters for the largest value.
///
/// ```
/// use ssdep_core::report::render_bar_chart;
///
/// let chart = render_bar_chart(
///     &[("outlays".to_string(), 1.0), ("penalties".to_string(), 3.0)],
///     20,
///     |v| format!("{v:.1}M"),
/// );
/// assert!(chart.contains("####"));
/// ```
pub fn render_bar_chart<F>(values: &[(String, f64)], width: usize, format: F) -> String
where
    F: Fn(f64) -> String,
{
    let max = values.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = values.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in values {
        let bar = if max > 0.0 {
            // ssdep-lint: allow(L005, ratio is in [0, 1] and width is a small cell count, so the cast is exact)
            let cells = ((value / max) * width as f64).round() as usize;
            "#".repeat(cells.min(width))
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{label:<label_width$}  {bar:<width$}  {}",
            format(*value)
        );
    }
    out
}

/// Renders the paper's Figure 5 as stacked cost bars: one bar per
/// failure scenario, annotated with the outlay/penalty split.
pub fn render_cost_bars(evaluations: &[Evaluation]) -> String {
    let values: Vec<(String, f64)> = evaluations
        .iter()
        .map(|e| {
            (
                format!(
                    "{} (outlays {}, penalties {})",
                    e.scenario.scope.name(),
                    e.cost.total_outlays,
                    e.cost.total_penalties()
                ),
                e.cost.total_cost.as_millions(),
            )
        })
        .collect();
    render_bar_chart(&values, 40, |v| format!("${v:.2}M"))
}

/// Renders the design's hierarchy as an indented tree (the paper's
/// Figure 1): each level, its technique, host device, and transports.
pub fn render_hierarchy(design: &crate::hierarchy::StorageDesign) -> String {
    let mut out = format!("{}\n", design.name());
    for (index, level) in design.levels().iter().enumerate() {
        let host = design.device(level.host());
        let _ = writeln!(
            out,
            "{}level {index}: {} [{}] on `{}` @ {}",
            "  ".repeat(index + 1),
            level.name(),
            level.technique().name(),
            host.name(),
            host.location(),
        );
        for &transport in level.transports() {
            let t = design.device(transport);
            let _ = writeln!(
                out,
                "{}  via `{}` ({})",
                "  ".repeat(index + 1),
                t.name(),
                t.kind(),
            );
        }
    }
    out
}

/// Renders each level's window parameters as a cadence table (the
/// paper's Figure 2): what happens every accumulation window, how long
/// it is held and propagated, and how long RPs live.
pub fn render_policy_calendar(design: &crate::hierarchy::StorageDesign) -> String {
    let mut table = TextTable::new([
        "Level",
        "New RP every",
        "Held",
        "Propagated over",
        "RPs kept",
        "Retained for",
    ]);
    for level in design.levels().iter().skip(1) {
        match level.technique().params() {
            Some(params) => table.row([
                level.name().to_string(),
                params.accumulation_window().to_string(),
                params.hold_window().to_string(),
                params.propagation_window().to_string(),
                params.retention_count().to_string(),
                params.retention_window().to_string(),
            ]),
            None => table.row([
                level.name().to_string(),
                "continuous".to_string(),
                "-".to_string(),
                "-".to_string(),
                "current".to_string(),
                "-".to_string(),
            ]),
        };
    }
    table.render()
}

/// Renders the complete dependability dossier for a system: hierarchy,
/// policy cadence, utilization, per-scenario dependability and costs,
/// failure coverage, and the annualized risk profile — everything an
/// administrator reviews before signing off on a design.
///
/// # Errors
///
/// Propagates evaluation errors (infeasible utilization aborts; coverage
/// gaps are reported inline).
pub fn render_full_report(
    design: &crate::hierarchy::StorageDesign,
    workload: &crate::workload::Workload,
    requirements: &crate::requirements::BusinessRequirements,
) -> Result<String, crate::error::Error> {
    use crate::analysis;

    let mut out = String::new();
    let _ = writeln!(out, "== Design ==\n{}", render_hierarchy(design));
    for warning in design.convention_warnings() {
        let _ = writeln!(out, "warning: {warning}");
    }
    let _ = writeln!(
        out,
        "== Protection cadence ==\n{}",
        render_policy_calendar(design)
    );

    let scenarios = crate::presets::paper_failure_scenarios();
    let mut evaluations = Vec::new();
    for scenario in &scenarios {
        evaluations.push(analysis::evaluate(
            design,
            workload,
            requirements,
            scenario,
        )?);
    }
    let _ = writeln!(
        out,
        "== Normal mode utilization ==\n{}",
        render_utilization(&evaluations[0])
    );
    let _ = writeln!(
        out,
        "== Dependability ==\n{}",
        render_dependability(&evaluations)
    );
    let _ = writeln!(
        out,
        "== Cost per failure scenario ==\n{}",
        render_cost_bars(&evaluations)
    );

    let coverage = analysis::coverage(
        design,
        workload,
        requirements,
        &analysis::coverage::default_ladder(),
    )?;
    let mut ladder = TextTable::new(["Failure scope", "Covered"]);
    for row in &coverage.rows {
        ladder.row([
            row.scope.name().to_string(),
            match &row.coverage {
                analysis::ScopeCoverage::Covered { evaluation } => format!(
                    "yes ({}, {:.0} hr loss)",
                    paper_time(evaluation.recovery.total_time),
                    evaluation.loss.worst_loss.as_hours()
                ),
                analysis::ScopeCoverage::NotCovered { reason } => format!("NO — {reason}"),
            },
        ]);
    }
    let _ = writeln!(out, "== Failure coverage ==\n{}", ladder.render());

    let profile = analysis::risk_profile(
        design,
        workload,
        requirements,
        &crate::presets::paper_scenario_catalog(),
    )?;
    let _ = writeln!(
        out,
        "== Annualized risk ==\navailability {:.6} ({:.1} nines), \
         E[downtime] {:.2} hr/yr, E[loss] {:.0} hr/yr, E[cost] {}/yr",
        profile.availability,
        profile.nines(),
        profile.expected_annual_downtime.as_hours(),
        profile.expected_annual_loss.as_hours(),
        profile.expected_annual_cost,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};

    fn site_eval() -> Evaluation {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        crate::analysis::evaluate(&design, &workload, &requirements, &scenario).unwrap()
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut table = TextTable::new(["a", "long header"]);
        table.row(["wide cell content", "x"]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("wide cell content"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.row(["only one"]);
        let rendered = table.render();
        assert!(rendered.contains("only one"));
    }

    #[test]
    fn utilization_table_names_every_device_and_level() {
        let text = render_utilization(&site_eval());
        for name in [
            "primary array",
            "tape library",
            "tape vault",
            "split mirror",
            "overall system",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn dependability_table_shows_source_and_hours() {
        let text = render_dependability(&[site_eval()]);
        assert!(text.contains("site"));
        assert!(text.contains("remote vaulting"));
        assert!(text.contains("1429 hr"));
    }

    #[test]
    fn cost_table_totals_are_present() {
        let text = render_costs(&site_eval());
        assert!(text.contains("TOTAL"));
        assert!(text.contains("penalty: recent data loss"));
    }

    #[test]
    fn timeline_contains_shipment_and_transfer() {
        let text = render_recovery_timeline(&site_eval());
        assert!(text.contains("ship media"));
        assert!(text.contains("transfer"));
        assert!(text.contains("application running"));
    }

    #[test]
    fn paper_time_switches_units() {
        assert_eq!(paper_time(TimeDelta::from_secs(0.004)), "0.004 s");
        assert_eq!(paper_time(TimeDelta::from_hours(26.4)), "26.4 hr");
    }

    #[test]
    fn bar_chart_scales_to_the_largest_value() {
        let chart = render_bar_chart(
            &[
                ("a".to_string(), 1.0),
                ("bb".to_string(), 4.0),
                ("c".to_string(), 0.0),
            ],
            20,
            |v| format!("{v}"),
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].matches('#').count(), 20, "largest fills the width");
        assert_eq!(lines[0].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 0);
    }

    #[test]
    fn cost_bars_make_the_site_bar_longest() {
        let site = site_eval();
        let chart = render_cost_bars(std::slice::from_ref(&site));
        assert!(chart.contains("site"));
        assert!(chart.contains("penalties"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn hierarchy_tree_walks_figure_1() {
        let design = crate::presets::baseline_design();
        let tree = render_hierarchy(&design);
        assert!(tree.contains("level 0: primary copy"));
        assert!(tree.contains("level 3: remote vaulting"));
        assert!(tree.contains("via `air shipment` (courier)"));
    }

    #[test]
    fn full_report_assembles_every_section() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let report = render_full_report(&design, &workload, &requirements).unwrap();
        for section in [
            "== Design ==",
            "== Protection cadence ==",
            "== Normal mode utilization ==",
            "== Dependability ==",
            "== Cost per failure scenario ==",
            "== Failure coverage ==",
            "== Annualized risk ==",
        ] {
            assert!(report.contains(section), "missing {section}");
        }
        assert!(report.contains("nines"));
    }

    #[test]
    fn policy_calendar_lists_every_secondary_level() {
        let design = crate::presets::baseline_design();
        let calendar = render_policy_calendar(&design);
        assert!(calendar.contains("split mirror"));
        assert!(calendar.contains("4.0 wk"));
        // Mirrors of the continuous kind render as such.
        let mirror = crate::presets::async_batch_mirror_design(1);
        let calendar = render_policy_calendar(&mirror);
        assert!(calendar.contains("async batch mirror"));
    }
}

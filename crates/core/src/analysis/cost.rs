//! Overall system cost: outlays plus penalties (§3.3.5, paper Figure 5
//! and Table 7's cost columns).
//!
//! Outlays are computed per device and allocated per technique: the
//! device's *primary* technique (the first hierarchy level demanding
//! anything of it) absorbs the fixed costs plus its own per-capacity /
//! per-bandwidth shares; secondary techniques pay only their incremental
//! shares. Spare resources cost a configured fraction of the device they
//! back, and a shared recovery facility costs a fraction of the
//! primary-site devices it stands in for.
//!
//! Penalties convert the failure scenario's recovery time and recent data
//! loss into dollars via the business penalty rates.

use crate::demands::DemandSet;
use crate::device::DeviceKind;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Money, TimeDelta};
use serde::{Deserialize, Serialize};

/// One hierarchy level's share of the annual outlays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelOutlay {
    /// The level's index.
    pub level: usize,
    /// The level's display name.
    pub level_name: String,
    /// Annual outlay attributed to this level across all devices.
    pub outlay: Money,
}

/// The cost outcome for one failure scenario (Figure 5's bars).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Annual outlays attributed to each hierarchy level.
    pub outlays_by_level: Vec<LevelOutlay>,
    /// Annual cost of dedicated/shared spares backing individual devices.
    pub spare_outlay: Money,
    /// Annual cost of the shared recovery facility.
    pub facility_outlay: Money,
    /// Total annual outlays.
    pub total_outlays: Money,
    /// Penalty for the scenario's recovery time (data outage).
    pub unavailability_penalty: Money,
    /// Penalty for the scenario's recent data loss.
    pub loss_penalty: Money,
    /// The overall system cost: outlays + penalties.
    pub total_cost: Money,
}

impl CostReport {
    /// Total penalties: unavailability + loss.
    pub fn total_penalties(&self) -> Money {
        self.unavailability_penalty + self.loss_penalty
    }
}

/// Computes outlays and penalties for a scenario whose recovery takes
/// `recovery_time` and loses `data_loss` of recent updates.
pub fn costs(
    design: &StorageDesign,
    demands: &DemandSet,
    requirements: &BusinessRequirements,
    recovery_time: TimeDelta,
    data_loss: TimeDelta,
) -> CostReport {
    let mut per_level = vec![Money::ZERO; design.levels().len()];
    let mut contributing = Vec::new();
    let (spare_outlay, facility_outlay) =
        accumulate_outlays(design, demands, &mut per_level, &mut contributing);

    let outlays_by_level: Vec<LevelOutlay> = design
        .levels()
        .iter()
        .zip(per_level.iter())
        .enumerate()
        .map(|(level, (l, outlay))| LevelOutlay {
            level,
            level_name: l.name().to_string(),
            outlay: *outlay,
        })
        .collect();

    let total_outlays =
        outlays_by_level.iter().map(|l| l.outlay).sum::<Money>() + spare_outlay + facility_outlay;

    let unavailability_penalty = requirements.unavailability_penalty_rate() * recovery_time;
    let loss_penalty = requirements.loss_penalty_rate() * data_loss;
    let total_cost = total_outlays + unavailability_penalty + loss_penalty;

    CostReport {
        outlays_by_level,
        spare_outlay,
        facility_outlay,
        total_outlays,
        unavailability_penalty,
        loss_penalty,
        total_cost,
    }
}

/// The per-device outlay attribution shared by the report and scored
/// paths. Fills `per_level` (one [`Money`] slot per hierarchy level,
/// pre-zeroed by the caller) and returns `(spare_outlay,
/// facility_outlay)`. `contributing` is reusable scratch: its capacity
/// survives between calls so the scored sweep loop stays allocation-free.
///
/// The accumulation order — devices outer, contributing levels inner,
/// additions in this exact sequence — is the float-op order both paths
/// must share for byte-identical rendered output.
pub(crate) fn accumulate_outlays(
    design: &StorageDesign,
    demands: &DemandSet,
    per_level: &mut [Money],
    contributing: &mut Vec<(usize, crate::demands::DemandContribution)>,
) -> (Money, Money) {
    let mut spare_outlay = Money::ZERO;
    let mut primary_site_outlay = Money::ZERO;

    for (index, spec) in design.devices().iter().enumerate() {
        let id = crate::device::DeviceId(index);
        let cost = spec.cost();
        let is_link = matches!(spec.kind(), DeviceKind::NetworkLink);

        // Levels contributing to this device, in hierarchy order.
        contributing.clear();
        for level in demands.levels() {
            for c in level.contributions.iter().filter(|c| c.device == id) {
                if c.bandwidth.value() > 0.0
                    || c.capacity.value() > 0.0
                    || c.shipments_per_year > 0.0
                {
                    contributing.push((level.level, *c));
                }
            }
        }

        let mut device_total = Money::ZERO;
        for (position, (level, c)) in contributing.iter().enumerate() {
            let is_primary_technique = position == 0;
            let mut outlay = Money::ZERO;
            if is_primary_technique {
                outlay += cost.fixed();
                if is_link {
                    // Whole links are rented: the primary technique pays
                    // for the provisioned bandwidth.
                    if let Some(max) = spec.max_bandwidth() {
                        outlay += cost.bandwidth_cost(max);
                    }
                }
            }
            outlay += cost.capacity_cost(c.capacity);
            if !is_link {
                outlay += cost.bandwidth_cost(c.bandwidth);
            }
            outlay += cost.shipment_cost(c.shipments_per_year);
            per_level[*level] += outlay;
            device_total += outlay;
        }

        spare_outlay += device_total * spec.spare().cost_factor();
        if spec.location().same_site(design.primary_location()) {
            primary_site_outlay += device_total;
        }
    }

    let facility_outlay = design
        .recovery_site()
        .map_or(Money::ZERO, |site| primary_site_outlay * site.cost_factor);

    (spare_outlay, facility_outlay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_costs(recovery_hours: f64, loss_hours: f64) -> CostReport {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        costs(
            &design,
            &demands,
            &crate::presets::paper_requirements(),
            TimeDelta::from_hours(recovery_hours),
            TimeDelta::from_hours(loss_hours),
        )
    }

    #[test]
    fn baseline_outlays_are_near_one_million() {
        // Paper Figure 5 / Table 7: ~$0.97M annual outlays. Our cost
        // conventions land within ~15 %.
        let report = baseline_costs(0.0, 0.0);
        let millions = report.total_outlays.as_millions();
        assert!(
            (0.80..=1.10).contains(&millions),
            "baseline outlays ${millions:.2}M"
        );
    }

    #[test]
    fn outlays_split_across_foreground_mirroring_and_backup() {
        // Figure 5: roughly even thirds with negligible vaulting.
        let report = baseline_costs(0.0, 0.0);
        let by_name = |name: &str| {
            report
                .outlays_by_level
                .iter()
                .find(|l| l.level_name == name)
                .map(|l| l.outlay)
                .unwrap()
        };
        let primary = by_name("primary copy");
        let mirror = by_name("split mirror");
        let backup = by_name("tape backup");
        let vault = by_name("remote vaulting");
        assert!(primary > Money::from_dollars(100_000.0));
        assert!(mirror > Money::from_dollars(100_000.0));
        assert!(backup > Money::from_dollars(90_000.0));
        assert!(vault < backup * 0.6, "vaulting is the cheapest technique");
        assert!(vault > Money::ZERO);
    }

    #[test]
    fn penalties_match_paper_array_failure() {
        // Array failure: 2.4 h RT + 217 h DL at $50k/hr = $10.97M.
        let report = baseline_costs(2.4, 217.0);
        assert!((report.total_penalties().as_millions() - 10.97).abs() < 0.01);
        assert!((report.unavailability_penalty.as_millions() - 0.12).abs() < 0.01);
        assert!((report.loss_penalty.as_millions() - 10.85).abs() < 0.01);
    }

    #[test]
    fn spares_double_primary_site_device_costs() {
        let report = baseline_costs(0.0, 0.0);
        // Array + tape library both carry dedicated spares at 1×.
        let covered: Money = report
            .outlays_by_level
            .iter()
            .map(|l| l.outlay)
            .sum::<Money>()
            - report.outlays_by_level[3].outlay; // vault level is off site
        assert!(report.spare_outlay > covered * 0.8);
        assert!(report.spare_outlay < covered * 1.05);
    }

    #[test]
    fn facility_costs_a_fifth_of_primary_site() {
        let report = baseline_costs(0.0, 0.0);
        assert!(report.facility_outlay > Money::ZERO);
        // 20 % of the (array + tape) outlays.
        let on_site: Money = report.outlays_by_level[..3].iter().map(|l| l.outlay).sum();
        assert!(report.facility_outlay.approx_eq(on_site * 0.2, 0.05));
    }

    #[test]
    fn link_outlays_charge_provisioned_bandwidth() {
        let workload = crate::presets::cello_workload();
        let one = crate::presets::async_batch_mirror_design(1);
        let ten = crate::presets::async_batch_mirror_design(10);
        let reqs = crate::presets::paper_requirements();
        let cost_of = |design: &StorageDesign| {
            let demands = design.demands(&workload).unwrap();
            costs(design, &demands, &reqs, TimeDelta::ZERO, TimeDelta::ZERO).total_outlays
        };
        let delta = cost_of(&ten) - cost_of(&one);
        // Nine extra OC-3s at 23535 $/MB/s·yr ≈ $3.9M.
        assert!(
            (3.5..=4.5).contains(&delta.as_millions()),
            "9 extra links cost ${:.2}M",
            delta.as_millions()
        );
    }

    #[test]
    fn zero_penalty_rates_leave_only_outlays() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let reqs = BusinessRequirements::builder()
            .unavailability_penalty_rate(crate::units::MoneyRate::ZERO)
            .loss_penalty_rate(crate::units::MoneyRate::ZERO)
            .build()
            .unwrap();
        let report = costs(
            &design,
            &demands,
            &reqs,
            TimeDelta::from_hours(100.0),
            TimeDelta::from_hours(100.0),
        );
        assert_eq!(report.total_penalties(), Money::ZERO);
        assert_eq!(report.total_cost, report.total_outlays);
    }
}

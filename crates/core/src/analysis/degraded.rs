//! Degraded-mode evaluation (paper §5 future work).
//!
//! Protection levels go out of service — a broken tape library, a mirror
//! being resynchronized, a vault courier strike. Degraded-mode analysis
//! answers: *if a failure strikes while level ℓ is down, how much worse
//! is the outcome?* The result is an exposure matrix over
//! (degraded level × failure scenario), highlighting which technique
//! outage silently removes the most protection.

use crate::analysis::prepare::PreparedDesign;
use crate::analysis::Evaluation;
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::TimeDelta;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The outcome of one (degraded level, scenario) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DegradedOutcome {
    /// Recovery still succeeds, with possibly worse numbers.
    Recoverable {
        /// The evaluation with the level degraded.
        evaluation: Box<Evaluation>,
        /// Additional recent data loss versus the healthy system.
        extra_loss: TimeDelta,
        /// Additional recovery time versus the healthy system.
        extra_recovery_time: TimeDelta,
    },
    /// With the level down, no surviving source covers the target: the
    /// failure becomes unrecoverable.
    Unrecoverable,
}

impl DegradedOutcome {
    /// Whether the cell is recoverable.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, DegradedOutcome::Recoverable { .. })
    }
}

/// One row of the exposure matrix: one degraded level across the
/// scenario set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedRow {
    /// The degraded hierarchy level.
    pub level: usize,
    /// Its display name.
    pub level_name: String,
    /// One outcome per input scenario, in order.
    pub outcomes: Vec<DegradedOutcome>,
}

impl DegradedRow {
    /// The worst extra data loss this level's outage causes across the
    /// scenarios (`None` if some scenario becomes unrecoverable — that
    /// is strictly worse than any finite increase).
    pub fn worst_extra_loss(&self) -> Option<TimeDelta> {
        let mut worst = TimeDelta::ZERO;
        for outcome in &self.outcomes {
            match outcome {
                DegradedOutcome::Recoverable { extra_loss, .. } => {
                    worst = worst.max(*extra_loss);
                }
                DegradedOutcome::Unrecoverable => return None,
            }
        }
        Some(worst)
    }
}

/// The exposure matrix for a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// The healthy-system evaluations, one per scenario.
    pub healthy: Vec<Evaluation>,
    /// One row per secondary protection level (level 0 is the primary
    /// copy, not a protection technique).
    pub rows: Vec<DegradedRow>,
}

impl DegradedReport {
    /// The level whose outage causes the worst exposure: unrecoverable
    /// cells rank above any finite loss increase; finite rows rank by
    /// worst extra loss.
    pub fn most_critical_level(&self) -> Option<&DegradedRow> {
        self.rows
            .iter()
            .max_by(|a, b| match (a.worst_extra_loss(), b.worst_extra_loss()) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (Some(_), None) => std::cmp::Ordering::Less,
                (Some(x), Some(y)) => x.value().total_cmp(&y.value()),
            })
    }
}

/// Evaluates every (secondary level × scenario) degraded combination.
///
/// # Errors
///
/// Propagates healthy-system evaluation errors; *degraded* evaluations
/// that fail with [`Error::NoRecoverySource`] become
/// [`DegradedOutcome::Unrecoverable`] cells rather than errors.
pub fn degraded_exposure(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[FailureScenario],
) -> Result<DegradedReport, Error> {
    if scenarios.is_empty() {
        // An empty catalog never touches the evaluation pipeline: the
        // matrix simply has one empty row per secondary level.
        let rows = design
            .levels()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(level, spec)| DegradedRow {
                level,
                level_name: spec.name().to_string(),
                outcomes: Vec::new(),
            })
            .collect();
        return Ok(DegradedReport {
            healthy: Vec::new(),
            rows,
        });
    }
    let prepared = PreparedDesign::prepare(design, workload)?;
    degraded_exposure_prepared(&prepared, requirements, scenarios)
}

/// As [`degraded_exposure`], evaluating the whole
/// (level × scenario) matrix against an existing [`PreparedDesign`] —
/// one preparation serves every cell.
///
/// # Errors
///
/// As [`degraded_exposure`], minus the preparation errors its caller
/// has already surfaced.
pub fn degraded_exposure_prepared(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    scenarios: &[FailureScenario],
) -> Result<DegradedReport, Error> {
    let healthy: Vec<Evaluation> = scenarios
        .iter()
        .map(|s| prepared.evaluate_scenario(requirements, s))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (level, spec) in prepared.design().levels().iter().enumerate().skip(1) {
        let mut outcomes = Vec::with_capacity(scenarios.len());
        for (scenario, baseline) in scenarios.iter().zip(&healthy) {
            let degraded_scenario = scenario.clone().with_degraded_level(level);
            match prepared.evaluate_scenario_shared(requirements, Arc::new(degraded_scenario)) {
                Ok(evaluation) => {
                    let extra_loss = (evaluation.loss.worst_loss - baseline.loss.worst_loss)
                        .clamp_non_negative();
                    let extra_recovery_time = (evaluation.recovery.total_time
                        - baseline.recovery.total_time)
                        .clamp_non_negative();
                    outcomes.push(DegradedOutcome::Recoverable {
                        evaluation: Box::new(evaluation),
                        extra_loss,
                        extra_recovery_time,
                    });
                }
                Err(Error::NoRecoverySource { .. }) => {
                    outcomes.push(DegradedOutcome::Unrecoverable);
                }
                Err(other) => return Err(other),
            }
        }
        rows.push(DegradedRow {
            level,
            level_name: spec.name().to_string(),
            outcomes,
        });
    }
    Ok(DegradedReport { healthy, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::Bytes;

    fn report() -> DegradedReport {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let scenarios = vec![
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        ];
        degraded_exposure(&design, &workload, &requirements, &scenarios).unwrap()
    }

    #[test]
    fn one_row_per_secondary_level() {
        let report = report();
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].level_name, "split mirror");
        assert_eq!(report.rows[2].level_name, "remote vaulting");
        assert_eq!(report.healthy.len(), 3);
    }

    #[test]
    fn degraded_mirror_pushes_object_recovery_to_tape() {
        let report = report();
        let mirror_row = &report.rows[0];
        // Object rollback with the mirror down falls back to tape:
        // loss jumps from 12 h (mirror retained) to 193 h (backup lag
        // of 217 h minus the 24 h target age).
        match &mirror_row.outcomes[0] {
            DegradedOutcome::Recoverable {
                evaluation,
                extra_loss,
                ..
            } => {
                assert_eq!(evaluation.loss.source_level_name(), Some("tape backup"));
                assert!((extra_loss.as_hours() - 181.0).abs() < 1e-6);
            }
            other => panic!("expected recoverable, got {other:?}"),
        }
        // But array failures never used the mirror (it dies with the
        // array), so its outage adds nothing there.
        match &mirror_row.outcomes[1] {
            DegradedOutcome::Recoverable {
                extra_loss,
                extra_recovery_time,
                ..
            } => {
                assert!(extra_loss.is_zero());
                assert!(extra_recovery_time.is_zero());
            }
            other => panic!("expected recoverable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_backup_makes_array_failures_fall_to_the_vault() {
        let report = report();
        let backup_row = &report.rows[1];
        match &backup_row.outcomes[1] {
            DegradedOutcome::Recoverable {
                evaluation,
                extra_loss,
                ..
            } => {
                assert_eq!(evaluation.loss.source_level_name(), Some("remote vaulting"));
                // 1429 − 217 = 1212 hours of extra exposure.
                assert!((extra_loss.as_hours() - 1212.0).abs() < 1e-6);
            }
            other => panic!("expected recoverable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_vault_makes_site_disasters_unrecoverable() {
        let report = report();
        let vault_row = &report.rows[2];
        assert!(matches!(
            vault_row.outcomes[2],
            DegradedOutcome::Unrecoverable
        ));
        assert_eq!(vault_row.worst_extra_loss(), None);
        // And the vault is therefore the most critical level.
        let critical = report.most_critical_level().unwrap();
        assert_eq!(critical.level_name, "remote vaulting");
    }

    #[test]
    fn healthy_rows_match_direct_evaluations() {
        let report = report();
        assert!((report.healthy[1].loss.worst_loss.as_hours() - 217.0).abs() < 1e-6);
        assert!((report.healthy[2].loss.worst_loss.as_hours() - 1429.0).abs() < 1e-6);
    }
}

//! Failure-scope coverage: which of the named failure scopes can this
//! design recover from at all, and at what worst-case outcome?
//!
//! The paper's framework evaluates one hypothesized scenario at a time;
//! coverage runs the whole named-scope ladder (object → array →
//! building → site → region) and reports, per rung, either the
//! recovery-time / data-loss pair or *why* the design cannot recover —
//! the first question an administrator asks of a design.

use crate::analysis::{evaluate, Evaluation};
use crate::error::Error;
use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Bytes, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// The outcome for one failure scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScopeCoverage {
    /// The design recovers from this scope.
    Covered {
        /// The full evaluation.
        evaluation: Box<Evaluation>,
    },
    /// The design cannot recover from this scope.
    NotCovered {
        /// Why recovery fails (no surviving source, no replacement
        /// hardware, …).
        reason: String,
    },
}

impl ScopeCoverage {
    /// Whether the scope is covered.
    pub fn is_covered(&self) -> bool {
        matches!(self, ScopeCoverage::Covered { .. })
    }

    /// The worst-case data loss when covered.
    pub fn data_loss(&self) -> Option<TimeDelta> {
        match self {
            ScopeCoverage::Covered { evaluation } => Some(evaluation.loss.worst_loss),
            ScopeCoverage::NotCovered { .. } => None,
        }
    }
}

/// One rung of the coverage ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// The evaluated scope.
    pub scope: FailureScope,
    /// The outcome.
    pub coverage: ScopeCoverage,
}

/// The design's coverage across the named scope ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// One row per scope, narrowest first.
    pub rows: Vec<CoverageRow>,
}

impl CoverageReport {
    /// The widest covered scope, in ladder order (`None` if nothing is
    /// covered).
    pub fn widest_covered(&self) -> Option<&FailureScope> {
        self.rows
            .iter()
            .rev()
            .find(|row| row.coverage.is_covered())
            .map(|row| &row.scope)
    }

    /// Whether every rung of the ladder is covered.
    pub fn fully_covered(&self) -> bool {
        self.rows.iter().all(|row| row.coverage.is_covered())
    }
}

/// The default coverage ladder: a 1 MiB object corrupted a day ago, then
/// array, building, site, and region failures recovering to "now".
pub fn default_ladder() -> Vec<FailureScenario> {
    vec![
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Building, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Region, RecoveryTarget::Now),
    ]
}

/// Evaluates the design against every scenario of the ladder.
///
/// Recovery failures ([`Error::NoRecoverySource`],
/// [`Error::NoReplacement`], [`Error::AllCopiesLost`]) become
/// [`ScopeCoverage::NotCovered`] rows; structural errors (an infeasible
/// design) still abort.
///
/// # Errors
///
/// Returns utilization/validation errors that make the design
/// unevaluable under *any* scenario.
pub fn coverage(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    ladder: &[FailureScenario],
) -> Result<CoverageReport, Error> {
    let mut rows = Vec::with_capacity(ladder.len());
    for scenario in ladder {
        let coverage = match evaluate(design, workload, requirements, scenario) {
            Ok(evaluation) => ScopeCoverage::Covered {
                evaluation: Box::new(evaluation),
            },
            Err(
                error @ (Error::NoRecoverySource { .. }
                | Error::NoReplacement { .. }
                | Error::AllCopiesLost),
            ) => ScopeCoverage::NotCovered {
                reason: error.to_string(),
            },
            Err(other) => return Err(other),
        };
        rows.push(CoverageRow {
            scope: scenario.scope.clone(),
            coverage,
        });
    }
    Ok(CoverageReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(design: &StorageDesign) -> CoverageReport {
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        coverage(design, &workload, &requirements, &default_ladder()).unwrap()
    }

    #[test]
    fn baseline_covers_the_entire_ladder() {
        // The vault is in another region and the recovery facility can
        // rebuild the site, so even a regional disaster is covered.
        let report = run(&crate::presets::baseline_design());
        assert!(report.fully_covered(), "{report:#?}");
        assert!(matches!(
            report.widest_covered(),
            Some(FailureScope::Region)
        ));
        // Loss grows (weakly) as scopes widen.
        let losses: Vec<f64> = report
            .rows
            .iter()
            .skip(1) // the object row has a different target
            .map(|r| r.coverage.data_loss().unwrap().as_hours())
            .collect();
        for pair in losses.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn mirror_design_does_not_cover_object_rollback() {
        let report = run(&crate::presets::async_batch_mirror_design(1));
        assert!(!report.fully_covered());
        assert!(
            !report.rows[0].coverage.is_covered(),
            "mirrors keep no history"
        );
        assert!(
            report.rows[1].coverage.is_covered(),
            "array failures are covered"
        );
        // Building/site/region: the remote array survives (other
        // region) and the facility rebuilds the primary.
        assert!(report.rows[4].coverage.is_covered());
    }

    #[test]
    fn removing_the_recovery_site_uncovers_disasters() {
        let reference = crate::presets::baseline_design();
        let mut builder = StorageDesign::builder("no facility");
        for spec in reference.devices() {
            builder.add_device(spec.clone()).unwrap();
        }
        for level in reference.levels() {
            builder.add_level(level.clone());
        }
        let design = builder.build().unwrap();
        let report = run(&design);
        assert!(
            report.rows[0].coverage.is_covered(),
            "object rollback is local"
        );
        assert!(report.rows[1].coverage.is_covered(), "array spare survives");
        assert!(
            !report.rows[3].coverage.is_covered(),
            "site: nowhere to rebuild"
        );
        match &report.rows[3].coverage {
            ScopeCoverage::NotCovered { reason } => {
                assert!(reason.contains("neither a spare nor a recovery facility"));
            }
            other => panic!("expected uncovered, got {other:?}"),
        }
        assert!(matches!(report.widest_covered(), Some(FailureScope::Array)));
    }
}

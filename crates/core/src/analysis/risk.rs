//! Annualized risk profile: availability and expected-loss metrics over
//! a frequency-weighted scenario catalog.
//!
//! The paper's outputs are per-scenario worst cases; operators also ask
//! annualized questions — "how many nines is this design?", "how many
//! hours of updates do we expect to lose per year?". This module folds
//! the per-scenario evaluations with annual frequencies into those
//! numbers.

use crate::analysis::expected::{
    expected_annual_cost, expected_annual_cost_prepared, ExpectedCost, WeightedScenario,
};
use crate::analysis::prepare::PreparedDesign;
use crate::error::Error;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Money, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Annualized dependability metrics for one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskProfile {
    /// Expected hours of data unavailability per year.
    pub expected_annual_downtime: TimeDelta,
    /// Expected hours' worth of lost updates per year.
    pub expected_annual_loss: TimeDelta,
    /// Fraction of the year the data is expected to be available.
    pub availability: f64,
    /// Expected annual cost (outlays + frequency-weighted penalties).
    pub expected_annual_cost: Money,
    /// Largest single-scenario recovery time in the catalog.
    pub worst_case_recovery: TimeDelta,
    /// Largest single-scenario data loss in the catalog.
    pub worst_case_loss: TimeDelta,
}

impl RiskProfile {
    /// The availability expressed as "nines": `2.0` means 99 %, `3.0`
    /// means 99.9 %, and so on. Perfect availability reports infinity.
    pub fn nines(&self) -> f64 {
        let unavailability = 1.0 - self.availability;
        if unavailability <= 0.0 {
            f64::INFINITY
        } else {
            -unavailability.log10()
        }
    }
}

/// Computes the annualized risk profile of `design` over a weighted
/// scenario catalog.
///
/// # Errors
///
/// As [`expected_annual_cost`].
pub fn risk_profile(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<RiskProfile, Error> {
    let expected = expected_annual_cost(design, workload, requirements, scenarios)?;
    Ok(fold_profile(&expected))
}

/// As [`risk_profile`], folding evaluations produced from an existing
/// [`PreparedDesign`] — one preparation serves the whole catalog.
///
/// # Errors
///
/// As [`expected_annual_cost_prepared`].
pub fn risk_profile_prepared(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<RiskProfile, Error> {
    let expected = expected_annual_cost_prepared(prepared, requirements, scenarios)?;
    Ok(fold_profile(&expected))
}

fn fold_profile(expected: &ExpectedCost) -> RiskProfile {
    let mut expected_annual_downtime = TimeDelta::ZERO;
    let mut expected_annual_loss = TimeDelta::ZERO;
    let mut worst_case_recovery = TimeDelta::ZERO;
    let mut worst_case_loss = TimeDelta::ZERO;
    for (frequency, evaluation) in &expected.evaluations {
        expected_annual_downtime += evaluation.recovery.total_time * *frequency;
        expected_annual_loss += evaluation.loss.worst_loss * *frequency;
        worst_case_recovery = worst_case_recovery.max(evaluation.recovery.total_time);
        worst_case_loss = worst_case_loss.max(evaluation.loss.worst_loss);
    }
    let year = TimeDelta::from_years(1.0);
    let availability = (1.0 - expected_annual_downtime / year).max(0.0);

    RiskProfile {
        expected_annual_downtime,
        expected_annual_loss,
        availability,
        expected_annual_cost: expected.total(),
        worst_case_recovery,
        worst_case_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
    use crate::units::Bytes;

    fn catalog() -> Vec<WeightedScenario> {
        vec![
            WeightedScenario::new(
                FailureScenario::new(
                    FailureScope::DataObject {
                        size: Bytes::from_mib(1.0),
                    },
                    RecoveryTarget::Before {
                        age: TimeDelta::from_hours(24.0),
                    },
                ),
                12.0,
            ),
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
                0.1,
            ),
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
                0.02,
            ),
        ]
    }

    fn baseline_profile() -> RiskProfile {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        risk_profile(&design, &workload, &requirements, &catalog()).unwrap()
    }

    #[test]
    fn downtime_is_the_frequency_weighted_sum() {
        let profile = baseline_profile();
        // 12 object recoveries (~0 h) + 0.1 array (~1.7 h) + 0.02 site
        // (~25.6 h) ≈ 0.68 h/yr.
        let hours = profile.expected_annual_downtime.as_hours();
        assert!((0.4..1.2).contains(&hours), "downtime {hours:.2} h/yr");
        assert!(profile.availability > 0.9999);
        assert!(profile.nines() > 3.5, "nines {:.2}", profile.nines());
    }

    #[test]
    fn loss_is_dominated_by_frequent_object_errors() {
        let profile = baseline_profile();
        // 12 × 12 h object losses = 144 h/yr; array adds 21.7, site 28.6.
        let hours = profile.expected_annual_loss.as_hours();
        assert!((150.0..250.0).contains(&hours), "loss {hours:.0} h/yr");
        assert!((profile.worst_case_loss.as_hours() - 1429.0).abs() < 1e-6);
    }

    #[test]
    fn mirroring_improves_every_risk_metric_but_cost() {
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        let baseline = baseline_profile();
        // Restrict the catalog to hardware failures the mirror covers.
        let hw: Vec<WeightedScenario> = catalog().into_iter().skip(1).collect();
        let mirror = risk_profile(
            &crate::presets::async_batch_mirror_design(10),
            &workload,
            &requirements,
            &hw,
        )
        .unwrap();
        assert!(mirror.expected_annual_loss < TimeDelta::from_hours(1.0));
        assert!(mirror.worst_case_loss < baseline.worst_case_loss / 100.0);
        assert!(mirror.expected_annual_cost > Money::from_dollars(4e6));
    }

    #[test]
    fn empty_catalog_is_perfectly_available() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let profile = risk_profile(&design, &workload, &requirements, &[]).unwrap();
        assert_eq!(profile.availability, 1.0);
        assert!(profile.nines().is_infinite());
        assert_eq!(profile.expected_annual_loss, TimeDelta::ZERO);
    }
}

//! Retrieval-point propagation analysis (§3.3.2, paper Figure 3).
//!
//! To know where a recovery target can be served from, we need the range
//! of past time each level is *guaranteed* to retain. A level's freshest
//! guaranteed RP is `Σ(holdW + propW)` of every level on the way plus its
//! own worst-case lag; its oldest is the minimum lag plus the retention
//! span `(retCnt − 1) × cyclePer`.

use crate::hierarchy::StorageDesign;
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};

/// The RP time range guaranteed present at one hierarchy level, expressed
/// as *ages* (time before now).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRange {
    /// The level's index.
    pub level: usize,
    /// The level's display name.
    pub level_name: String,
    /// Minimum possible age of the freshest RP (just after an arrival):
    /// the cumulative `holdW + propW`.
    pub min_lag: TimeDelta,
    /// Worst-case age of the freshest *guaranteed* RP (just before the
    /// next arrival): `min_lag` plus the level's arrival period.
    pub max_lag: TimeDelta,
    /// Worst-case age of the oldest guaranteed RP: `min_lag` plus the
    /// retention span.
    pub oldest_guaranteed: TimeDelta,
}

impl LevelRange {
    /// Whether a recovery target `age` before the failure is guaranteed
    /// to be retrievable from this level.
    pub fn covers(&self, age: TimeDelta) -> bool {
        age >= self.max_lag && age <= self.oldest_guaranteed
    }

    /// Whether the target is newer than anything guaranteed here.
    pub fn too_recent(&self, age: TimeDelta) -> bool {
        age < self.max_lag
    }

    /// Whether the target has aged out of this level's retention.
    pub fn expired(&self, age: TimeDelta) -> bool {
        age > self.oldest_guaranteed
    }
}

/// Computes the guaranteed RP range for every level of the design.
///
/// Level 0 (the primary copy) has a degenerate range: it is the live
/// data — zero lag and zero retention.
pub fn level_ranges(design: &StorageDesign) -> Vec<LevelRange> {
    let mut ranges = Vec::with_capacity(design.levels().len());
    let mut cumulative_transit = TimeDelta::ZERO;
    for (index, level) in design.levels().iter().enumerate() {
        let technique = level.technique();
        let min_lag = cumulative_transit + technique.transit_lag();
        let max_lag = cumulative_transit + technique.worst_own_lag();
        let oldest_guaranteed = min_lag + technique.retention_span();
        ranges.push(LevelRange {
            level: index,
            level_name: level.name().to_string(),
            min_lag,
            max_lag,
            oldest_guaranteed,
        });
        cumulative_transit = min_lag;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_ranges() -> Vec<LevelRange> {
        level_ranges(&crate::presets::baseline_design())
    }

    #[test]
    fn primary_has_zero_lag_and_retention() {
        let ranges = baseline_ranges();
        assert_eq!(ranges[0].min_lag, TimeDelta::ZERO);
        assert_eq!(ranges[0].max_lag, TimeDelta::ZERO);
        assert_eq!(ranges[0].oldest_guaranteed, TimeDelta::ZERO);
    }

    #[test]
    fn split_mirror_range_matches_figure_3_arithmetic() {
        let ranges = baseline_ranges();
        let mirror = &ranges[1];
        // holdW = propW = 0, accW = 12 h, retention (4−1)×12 h = 36 h.
        assert_eq!(mirror.min_lag, TimeDelta::ZERO);
        assert_eq!(mirror.max_lag, TimeDelta::from_hours(12.0));
        assert_eq!(mirror.oldest_guaranteed, TimeDelta::from_hours(36.0));
        assert!(mirror.covers(TimeDelta::from_hours(24.0)));
        assert!(mirror.too_recent(TimeDelta::from_hours(1.0)));
        assert!(mirror.expired(TimeDelta::from_days(2.0)));
    }

    #[test]
    fn backup_lag_accumulates_mirror_transit() {
        let ranges = baseline_ranges();
        let backup = &ranges[2];
        // Mirror transit 0; backup hold 1 h + prop 48 h; accW 1 wk.
        assert_eq!(backup.min_lag, TimeDelta::from_hours(49.0));
        assert_eq!(backup.max_lag, TimeDelta::from_hours(217.0));
        // Retention (4−1) weeks on top of min lag.
        assert_eq!(
            backup.oldest_guaranteed,
            TimeDelta::from_hours(49.0) + TimeDelta::from_weeks(3.0)
        );
    }

    #[test]
    fn vault_lag_matches_paper_1429_hours() {
        let ranges = baseline_ranges();
        let vault = &ranges[3];
        assert!(
            (vault.max_lag.as_hours() - 1429.0).abs() < 1e-9,
            "vault max lag {} hr",
            vault.max_lag.as_hours()
        );
        // min lag: backup transit 49 h + vault hold (4 wk + 12 h) + prop 24 h.
        assert!((vault.min_lag.as_hours() - 757.0).abs() < 1e-9);
        // 38 cycles of 4 weeks on top.
        assert!((vault.oldest_guaranteed.as_weeks() - (757.0 / 168.0 + 152.0)).abs() < 1e-9);
    }

    #[test]
    fn ranges_get_older_down_the_hierarchy() {
        let ranges = baseline_ranges();
        for pair in ranges.windows(2) {
            assert!(pair[1].max_lag >= pair[0].max_lag);
            assert!(pair[1].oldest_guaranteed >= pair[0].oldest_guaranteed);
        }
    }
}

//! Recent-data-loss analysis and recovery-source selection (§3.3.3,
//! paper Table 6's "recent data loss" and "recovery source" columns).
//!
//! For each level that survives the failure, three cases apply to the
//! recovery target:
//!
//! 1. **Not yet propagated** — the target is more recent than the level's
//!    freshest guaranteed RP; restoring loses the level's whole time lag
//!    (relative to the target).
//! 2. **Retained** — the target falls inside the guaranteed range; the
//!    worst-case loss is one arrival period (`accW`).
//! 3. **Expired** — the target has aged out; the level cannot serve.
//!
//! The surviving level with the smallest loss (ties going to the faster,
//! higher level) becomes the recovery source.

use crate::analysis::propagation::{level_ranges, LevelRange};
use crate::error::Error;
use crate::failure::{FailureScenario, FailureScope};
use crate::hierarchy::StorageDesign;
use crate::units::TimeDelta;
use serde::{Deserialize, Serialize};

/// Which of §3.3.3's three cases applies to a level for a given target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossCase {
    /// The level's RPs were destroyed by the failure (or the level is
    /// degraded); it cannot serve.
    Destroyed,
    /// The target is more recent than the level's freshest guaranteed RP.
    NotYetPropagated,
    /// The target falls within the level's guaranteed range.
    Retained,
    /// The target is older than the level's retention.
    Expired,
}

/// One level's ability to serve the recovery target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelLoss {
    /// The level's index.
    pub level: usize,
    /// The level's display name.
    pub level_name: String,
    /// Which case applies.
    pub case: LossCase,
    /// Worst-case recent data loss if this level serves (`None` when it
    /// cannot).
    pub loss: Option<TimeDelta>,
    /// The level's guaranteed RP range (ages).
    pub range: LevelRange,
}

/// The data-loss outcome for a failure scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossReport {
    /// Every level's assessment, in level order.
    pub per_level: Vec<LevelLoss>,
    /// The chosen recovery source level.
    pub source_level: usize,
    /// Worst-case recent data loss when recovering from the source.
    pub worst_loss: TimeDelta,
}

impl LossReport {
    /// The chosen source level's display name.
    pub fn source_level_name(&self) -> Option<&str> {
        self.per_level
            .iter()
            .find(|l| l.level == self.source_level)
            .map(|l| l.level_name.as_str())
    }
}

/// Determines the recovery source and worst-case recent data loss for
/// `scenario` (§3.3.3).
///
/// # Errors
///
/// Returns [`Error::NoRecoverySource`] when no surviving level retains an
/// RP usable for the target — the recent updates (or, past every
/// retention window, the entire object) are unrecoverable.
pub fn data_loss(design: &StorageDesign, scenario: &FailureScenario) -> Result<LossReport, Error> {
    data_loss_from_ranges(design, scenario, &level_ranges(design))
}

/// As [`data_loss`], but reusing precomputed
/// [`level_ranges`](crate::analysis::level_ranges) — the
/// scenario-independent §3.3.2 propagation analysis — so staged callers
/// ([`PreparedDesign`](crate::analysis::PreparedDesign)) evaluating many
/// scenarios against one design pay for it once.
///
/// # Errors
///
/// As [`data_loss`].
pub fn data_loss_from_ranges(
    design: &StorageDesign,
    scenario: &FailureScenario,
    ranges: &[LevelRange],
) -> Result<LossReport, Error> {
    let target_age = scenario.target.age();
    let mut per_level = Vec::with_capacity(ranges.len());
    let mut best: Option<(usize, TimeDelta)> = None;

    for range in ranges {
        let index = range.level;
        let level = &design.levels()[index];
        let (case, loss) = level_case(design, scenario, range, target_age);

        if let Some(loss) = loss {
            let better = match best {
                None => true,
                Some((_, best_loss)) => loss < best_loss,
            };
            if better {
                best = Some((index, loss));
            }
        }

        per_level.push(LevelLoss {
            level: index,
            level_name: level.name().to_string(),
            case,
            loss,
            range: range.clone(),
        });
    }

    match best {
        Some((source_level, worst_loss)) => Ok(LossReport {
            per_level,
            source_level,
            worst_loss,
        }),
        None => Err(Error::NoRecoverySource {
            target: scenario.to_string(),
        }),
    }
}

/// As [`data_loss_from_ranges`], reduced to the `(source_level,
/// worst_loss)` pair the scored sweep path needs — no per-level vector,
/// no name strings, zero heap allocation on the success path. Runs the
/// same selection loop, so the chosen source and loss are identical to
/// the report's.
///
/// # Errors
///
/// As [`data_loss`].
pub fn data_loss_totals(
    design: &StorageDesign,
    scenario: &FailureScenario,
    ranges: &[LevelRange],
) -> Result<(usize, TimeDelta), Error> {
    let target_age = scenario.target.age();
    let mut best: Option<(usize, TimeDelta)> = None;
    for range in ranges {
        let (_, loss) = level_case(design, scenario, range, target_age);
        if let Some(loss) = loss {
            let better = match best {
                None => true,
                Some((_, best_loss)) => loss < best_loss,
            };
            if better {
                best = Some((range.level, loss));
            }
        }
    }
    best.ok_or_else(|| Error::NoRecoverySource {
        target: scenario.to_string(),
    })
}

/// The §3.3.3 three-case decision for one level, shared by the report
/// and scored paths so they cannot drift.
fn level_case(
    design: &StorageDesign,
    scenario: &FailureScenario,
    range: &LevelRange,
    target_age: TimeDelta,
) -> (LossCase, Option<TimeDelta>) {
    let index = range.level;
    let destroyed = design.level_unavailable(index, scenario)
        || (index == 0 && matches!(scenario.scope, FailureScope::DataObject { .. }));
    if destroyed {
        (LossCase::Destroyed, None)
    } else if index == 0 {
        // The live primary: serves only "now", with no loss.
        if target_age.is_zero() {
            (LossCase::Retained, Some(TimeDelta::ZERO))
        } else {
            (LossCase::Expired, None)
        }
    } else if range.too_recent(target_age) {
        let lag = (range.max_lag - target_age).clamp_non_negative();
        (LossCase::NotYetPropagated, Some(lag))
    } else if range.covers(target_age) {
        let level = &design.levels()[index];
        (LossCase::Retained, Some(level.technique().arrival_period()))
    } else {
        (LossCase::Expired, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::RecoveryTarget;
    use crate::units::Bytes;

    fn baseline() -> StorageDesign {
        crate::presets::baseline_design()
    }

    fn object_scenario() -> FailureScenario {
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        )
    }

    #[test]
    fn object_failure_recovers_from_split_mirror_losing_12_hours() {
        let report = data_loss(&baseline(), &object_scenario()).unwrap();
        assert_eq!(report.source_level_name(), Some("split mirror"));
        assert_eq!(report.worst_loss, TimeDelta::from_hours(12.0));
        // The corrupted primary cannot serve.
        assert_eq!(report.per_level[0].case, LossCase::Destroyed);
    }

    #[test]
    fn array_failure_recovers_from_backup_losing_217_hours() {
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let report = data_loss(&baseline(), &scenario).unwrap();
        assert_eq!(report.source_level_name(), Some("tape backup"));
        assert!((report.worst_loss.as_hours() - 217.0).abs() < 1e-9);
        assert_eq!(report.per_level[1].case, LossCase::Destroyed);
    }

    #[test]
    fn site_failure_recovers_from_vault_losing_1429_hours() {
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let report = data_loss(&baseline(), &scenario).unwrap();
        assert_eq!(report.source_level_name(), Some("remote vaulting"));
        assert!((report.worst_loss.as_hours() - 1429.0).abs() < 1e-9);
    }

    #[test]
    fn intact_primary_serves_now_with_zero_loss() {
        let scenario = FailureScenario::new(
            FailureScope::ProtectionLevel { level: 2 },
            RecoveryTarget::Now,
        );
        let report = data_loss(&baseline(), &scenario).unwrap();
        assert_eq!(report.source_level, 0);
        assert_eq!(report.worst_loss, TimeDelta::ZERO);
        assert_eq!(report.per_level[2].case, LossCase::Destroyed);
    }

    #[test]
    fn ancient_target_is_unrecoverable() {
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_years(10.0),
            },
        );
        let err = data_loss(&baseline(), &scenario).unwrap_err();
        assert!(matches!(err, Error::NoRecoverySource { .. }));
    }

    #[test]
    fn old_target_skips_to_the_vault() {
        // A six-month-old version is long gone from mirrors and backups
        // but still vaulted.
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_weeks(26.0),
            },
        );
        let report = data_loss(&baseline(), &scenario).unwrap();
        assert_eq!(report.source_level_name(), Some("remote vaulting"));
        assert_eq!(report.per_level[1].case, LossCase::Expired);
        assert_eq!(report.per_level[2].case, LossCase::Expired);
        // Retained at the vault: one four-week arrival period of loss.
        assert_eq!(report.worst_loss, TimeDelta::from_weeks(4.0));
    }

    #[test]
    fn mirror_design_loses_only_two_minutes() {
        let design = crate::presets::async_batch_mirror_design(1);
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let report = data_loss(&design, &scenario).unwrap();
        assert_eq!(report.source_level_name(), Some("async batch mirror"));
        assert!((report.worst_loss.as_minutes() - 2.0).abs() < 1e-9);
        // 0.03 hours, as Table 7 reports.
        assert!((report.worst_loss.as_hours() - 0.033).abs() < 0.01);
    }
}

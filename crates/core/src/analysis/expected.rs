//! Frequency-weighted evaluation over multiple failure scenarios.
//!
//! The paper deliberately evaluates a single hypothesized failure at a
//! time (§3.1.3) but notes (§5) that its automated-design work weights
//! scenarios by frequency to consider several failures concurrently. This
//! module provides that extension: given scenarios annotated with annual
//! frequencies, it reports the design's expected annual cost — outlays
//! plus frequency-weighted penalties.

use crate::analysis::prepare::PreparedDesign;
use crate::analysis::Evaluation;
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::Money;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A failure scenario annotated with how often it is expected per year.
///
/// The scenario is shared behind an [`Arc`] (serialized transparently)
/// so every [`Evaluation`] produced from a catalog entry reuses one
/// allocation instead of deep-cloning the scenario per evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedScenario {
    /// The scenario.
    pub scenario: Arc<FailureScenario>,
    /// Expected occurrences per year (may be far below one).
    pub annual_frequency: f64,
}

impl WeightedScenario {
    /// Creates a weighted scenario.
    pub fn new(scenario: FailureScenario, annual_frequency: f64) -> WeightedScenario {
        WeightedScenario {
            scenario: Arc::new(scenario),
            annual_frequency,
        }
    }
}

/// The expected-annual-cost outcome across weighted scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectedCost {
    /// Annual outlays (scenario-independent).
    pub outlays: Money,
    /// Frequency-weighted expected annual penalties.
    pub expected_penalties: Money,
    /// Per-scenario evaluations, in input order.
    pub evaluations: Vec<(f64, Evaluation)>,
}

impl ExpectedCost {
    /// Expected total annual cost: outlays + expected penalties.
    pub fn total(&self) -> Money {
        self.outlays + self.expected_penalties
    }
}

/// Evaluates `design` under every weighted scenario and aggregates the
/// expected annual cost.
///
/// # Errors
///
/// Returns the first scenario's evaluation error, or
/// [`Error::InvalidParameter`] for a negative or non-finite frequency.
pub fn expected_annual_cost(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<ExpectedCost, Error> {
    let Some(first) = scenarios.first() else {
        return Ok(ExpectedCost {
            outlays: Money::ZERO,
            expected_penalties: Money::ZERO,
            evaluations: Vec::new(),
        });
    };
    // The first frequency is validated before the design is prepared so
    // the staged path reports errors in the same order the per-scenario
    // loop always has: frequency first, then the evaluation pipeline.
    check_frequency(0, first)?;
    let prepared = PreparedDesign::prepare(design, workload)?;
    expected_annual_cost_prepared(&prepared, requirements, scenarios)
}

/// As [`expected_annual_cost`], evaluating every weighted scenario
/// against an existing [`PreparedDesign`] — the demand derivation,
/// utilization report, and propagation ranges are reused rather than
/// recomputed per scenario.
///
/// # Errors
///
/// As [`expected_annual_cost`], minus the preparation errors its
/// caller has already surfaced.
pub fn expected_annual_cost_prepared(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
) -> Result<ExpectedCost, Error> {
    let mut outlays = Money::ZERO;
    let mut expected_penalties = Money::ZERO;
    let mut evaluations = Vec::with_capacity(scenarios.len());
    for (index, weighted) in scenarios.iter().enumerate() {
        check_frequency(index, weighted)?;
        let evaluation =
            prepared.evaluate_scenario_shared(requirements, Arc::clone(&weighted.scenario))?;
        outlays = evaluation.cost.total_outlays;
        expected_penalties += evaluation.cost.total_penalties() * weighted.annual_frequency;
        evaluations.push((weighted.annual_frequency, evaluation));
    }
    Ok(ExpectedCost {
        outlays,
        expected_penalties,
        evaluations,
    })
}

/// Validates one weighted scenario's annual frequency. Public so staged
/// callers (the opt engine's scored path) can preserve the report
/// path's error ordering: frequency first, then the evaluation
/// pipeline.
///
/// # Errors
///
/// [`Error::InvalidParameter`] for a negative or non-finite frequency.
pub fn check_frequency(index: usize, weighted: &WeightedScenario) -> Result<(), Error> {
    if weighted.annual_frequency >= 0.0 && weighted.annual_frequency.is_finite() {
        Ok(())
    } else {
        Err(Error::invalid(
            format!("scenarios[{index}].annualFrequency"),
            "must be non-negative and finite",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::{Bytes, TimeDelta};

    fn scenarios() -> Vec<WeightedScenario> {
        vec![
            WeightedScenario::new(
                FailureScenario::new(
                    FailureScope::DataObject {
                        size: Bytes::from_mib(1.0),
                    },
                    RecoveryTarget::Before {
                        age: TimeDelta::from_hours(24.0),
                    },
                ),
                12.0, // monthly user errors
            ),
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
                0.1, // one array loss per decade
            ),
            WeightedScenario::new(
                FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
                0.01, // one site disaster per century
            ),
        ]
    }

    #[test]
    fn expected_cost_weights_penalties_by_frequency() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let expected =
            expected_annual_cost(&design, &workload, &requirements, &scenarios()).unwrap();
        assert_eq!(expected.evaluations.len(), 3);
        // Cross-check against a manual weighting.
        let manual: Money = expected
            .evaluations
            .iter()
            .map(|(f, e)| e.cost.total_penalties() * *f)
            .sum();
        assert!(expected.expected_penalties.approx_eq(manual, 1e-9));
        assert_eq!(
            expected.total(),
            expected.outlays + expected.expected_penalties
        );
        assert!(expected.total() > expected.outlays);
    }

    #[test]
    fn frequent_small_failures_can_outweigh_rare_disasters() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let expected =
            expected_annual_cost(&design, &workload, &requirements, &scenarios()).unwrap();
        let object_contrib =
            expected.evaluations[0].1.cost.total_penalties() * expected.evaluations[0].0;
        let site_contrib =
            expected.evaluations[2].1.cost.total_penalties() * expected.evaluations[2].0;
        // 12 object rollbacks/yr at ~$0.6M beat a 1-in-100-year ~$73M
        // disaster.
        assert!(object_contrib > site_contrib);
    }

    #[test]
    fn negative_frequency_is_rejected() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let bad = vec![WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            -1.0,
        )];
        assert!(expected_annual_cost(&design, &workload, &requirements, &bad).is_err());
    }

    #[test]
    fn empty_scenarios_cost_nothing() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let expected = expected_annual_cost(&design, &workload, &requirements, &[]).unwrap();
        assert_eq!(expected.total(), Money::ZERO);
    }
}

//! The scored (allocation-free) evaluation path for enumeration loops.
//!
//! A full [`Evaluation`](super::Evaluation) carries per-level vectors,
//! display-name strings, and a recovery timeline — exactly what a
//! report needs and exactly what a 10^5-candidate sweep does not: at
//! microsecond-scale analytic work, the heap traffic of building (and
//! dropping) those reports dominates the arithmetic. This module runs
//! the same pipeline — utilization check, data loss, recovery, cost, in
//! the same order with the same error cases and the same float-op
//! order — but folds each scenario straight into the scalar
//! [`ScenarioScore`] the optimizer ranks on, reusing an [`EvalScratch`]
//! arena so the per-scenario inner loop performs zero heap allocation
//! after preparation.
//!
//! Equivalence with the report path is a contract, not an aspiration:
//! the shared helpers ([`data_loss_totals`](super::data_loss_totals),
//! [`recovery_total_time`](super::recovery::recovery_total_time),
//! [`accumulate_outlays`](super::cost::accumulate_outlays)) are the
//! *same code* the report path runs, and the tests below pin every
//! scored number bit-for-bit against the folded full reports.

use crate::analysis::expected::{check_frequency, WeightedScenario};
use crate::analysis::prepare::PreparedDesign;
use crate::analysis::{cost, data_loss, recovery};
use crate::demands::DemandContribution;
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::requirements::BusinessRequirements;
use crate::units::{Money, TimeDelta};

/// Reusable scratch buffers for the scored path. Construct once per
/// worker (or thread) and pass to every call: the buffers keep their
/// capacity between scenarios and candidates, so after the first few
/// calls the inner loop stops touching the allocator entirely.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per-level outlay accumulation (one slot per hierarchy level).
    level_outlays: Vec<Money>,
    /// Per-device contributing-level collection for cost attribution.
    contributing: Vec<(usize, DemandContribution)>,
    /// The recovery hop chain.
    chain: Vec<usize>,
}

impl EvalScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// One scenario's evaluation, reduced to the scalars optimizers fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioScore {
    /// Total annual outlays (scenario-independent in practice).
    pub total_outlays: Money,
    /// Unavailability + loss penalties for this scenario.
    pub total_penalties: Money,
    /// Worst-case recovery time.
    pub recovery_time: TimeDelta,
    /// Worst-case recent data loss.
    pub worst_loss: TimeDelta,
    /// Whether the outcome meets the requirements' RTO/RPO objectives.
    pub meets_objectives: bool,
}

/// The scored counterpart of folding an
/// [`ExpectedCost`](super::ExpectedCost) the way the sweep and search
/// drivers do: last scenario's outlays, frequency-weighted penalties,
/// worst recovery/loss maxima, and the AND of per-scenario objective
/// checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedSummary {
    /// Annual outlays (the last evaluated scenario's, as in the report
    /// path — outlays are scenario-independent).
    pub outlays: Money,
    /// Frequency-weighted expected annual penalties.
    pub expected_penalties: Money,
    /// Worst recovery time across the catalog.
    pub worst_recovery_time: TimeDelta,
    /// Worst recent data loss across the catalog.
    pub worst_data_loss: TimeDelta,
    /// Whether every scenario met the RTO/RPO objectives.
    pub meets_objectives: bool,
    /// How many scenarios were evaluated.
    pub evaluations: usize,
}

impl ExpectedSummary {
    /// The all-zero summary of an empty scenario catalog.
    pub fn empty() -> ExpectedSummary {
        ExpectedSummary {
            outlays: Money::ZERO,
            expected_penalties: Money::ZERO,
            worst_recovery_time: TimeDelta::ZERO,
            worst_data_loss: TimeDelta::ZERO,
            meets_objectives: true,
            evaluations: 0,
        }
    }

    /// Expected total annual cost: outlays + expected penalties.
    pub fn total(&self) -> Money {
        self.outlays + self.expected_penalties
    }
}

/// Scores one scenario against a prepared design: the same pipeline as
/// [`PreparedDesign::evaluate_scenario`] — utilization check, data
/// loss, recovery, cost, in that order with identical error cases — but
/// producing only scalars, with all working memory in `scratch`.
///
/// # Errors
///
/// As [`PreparedDesign::evaluate_scenario`]: [`Error::Overutilized`],
/// [`Error::NoRecoverySource`], [`Error::NoReplacement`].
pub fn score_scenario(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    scenario: &FailureScenario,
    scratch: &mut EvalScratch,
) -> Result<ScenarioScore, Error> {
    prepared.utilization().check()?;
    let (source_level, worst_loss) =
        data_loss::data_loss_totals(prepared.design(), scenario, prepared.ranges())?;
    let recovery_time = recovery::recovery_total_time(
        prepared.design(),
        prepared.workload(),
        prepared.demands(),
        scenario,
        source_level,
        &mut scratch.chain,
    )?;

    let levels = prepared.design().levels().len();
    scratch.level_outlays.clear();
    scratch.level_outlays.resize(levels, Money::ZERO);
    let (spare_outlay, facility_outlay) = cost::accumulate_outlays(
        prepared.design(),
        prepared.demands(),
        &mut scratch.level_outlays,
        &mut scratch.contributing,
    );
    let total_outlays =
        scratch.level_outlays.iter().copied().sum::<Money>() + spare_outlay + facility_outlay;
    let unavailability_penalty = requirements.unavailability_penalty_rate() * recovery_time;
    let loss_penalty = requirements.loss_penalty_rate() * worst_loss;

    Ok(ScenarioScore {
        total_outlays,
        total_penalties: unavailability_penalty + loss_penalty,
        recovery_time,
        worst_loss,
        meets_objectives: requirements.meets_objectives(recovery_time, worst_loss),
    })
}

/// Scores a weighted scenario catalog against a prepared design, folding
/// the way the sweep/search drivers fold an
/// [`ExpectedCost`](super::ExpectedCost): penalties accumulate in
/// catalog order (identical float-op order), worst values fold through
/// [`TimeDelta::max`], and objectives AND together.
///
/// # Errors
///
/// As [`expected_annual_cost_prepared`](super::expected_annual_cost_prepared):
/// the first scenario evaluation error, or [`Error::InvalidParameter`]
/// for a negative or non-finite frequency.
pub fn expected_summary(
    prepared: &PreparedDesign,
    requirements: &BusinessRequirements,
    scenarios: &[WeightedScenario],
    scratch: &mut EvalScratch,
) -> Result<ExpectedSummary, Error> {
    let mut summary = ExpectedSummary::empty();
    for (index, weighted) in scenarios.iter().enumerate() {
        check_frequency(index, weighted)?;
        let score = score_scenario(prepared, requirements, &weighted.scenario, scratch)?;
        summary.outlays = score.total_outlays;
        summary.expected_penalties += score.total_penalties * weighted.annual_frequency;
        summary.worst_recovery_time = summary.worst_recovery_time.max(score.recovery_time);
        summary.worst_data_loss = summary.worst_data_loss.max(score.worst_loss);
        summary.meets_objectives &= score.meets_objectives;
        summary.evaluations += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::Bytes;

    fn scenario_grid() -> Vec<FailureScenario> {
        let mut grid = vec![
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            FailureScenario::new(FailureScope::Building, RecoveryTarget::Now),
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            FailureScenario::new(
                FailureScope::ProtectionLevel { level: 2 },
                RecoveryTarget::Now,
            ),
        ];
        for hours in [1.0, 24.0, 168.0] {
            grid.push(FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(hours),
                },
            ));
        }
        grid
    }

    fn designs() -> Vec<crate::hierarchy::StorageDesign> {
        vec![
            crate::presets::baseline_design(),
            crate::presets::async_batch_mirror_design(1),
            crate::presets::async_batch_mirror_design(10),
        ]
    }

    #[test]
    fn scored_scenarios_match_the_full_reports_bit_for_bit() {
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        let mut scratch = EvalScratch::new();
        for design in designs() {
            let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
            for scenario in scenario_grid() {
                let report = prepared.evaluate_scenario(&requirements, &scenario);
                let score = score_scenario(&prepared, &requirements, &scenario, &mut scratch);
                match (report, score) {
                    (Ok(report), Ok(score)) => {
                        assert_eq!(score.total_outlays, report.cost.total_outlays);
                        assert_eq!(score.total_penalties, report.cost.total_penalties());
                        assert_eq!(score.recovery_time, report.recovery.total_time);
                        assert_eq!(score.worst_loss, report.loss.worst_loss);
                        assert_eq!(
                            score.meets_objectives,
                            report.meets_objectives(&requirements)
                        );
                    }
                    (Err(report_err), Err(score_err)) => {
                        assert_eq!(report_err.to_string(), score_err.to_string());
                    }
                    (report, score) => {
                        panic!("paths disagree: report {report:?} vs score {score:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn expected_summary_matches_the_folded_expected_cost() {
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        let mut scratch = EvalScratch::new();
        for design in designs() {
            let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
            // Keep the scenarios this design can actually serve; the
            // error-parity case is covered by the bit-for-bit test.
            let scenarios: Vec<WeightedScenario> = scenario_grid()
                .into_iter()
                .zip([12.0, 0.1, 0.01, 0.5, 4.0, 2.0, 1.0])
                .filter(|(scenario, _)| prepared.evaluate_scenario(&requirements, scenario).is_ok())
                .map(|(scenario, freq)| WeightedScenario::new(scenario, freq))
                .collect();
            assert!(scenarios.len() >= 4, "grid too thin for {}", design.name());
            let expected = crate::analysis::expected_annual_cost_prepared(
                &prepared,
                &requirements,
                &scenarios,
            )
            .unwrap();
            let summary =
                expected_summary(&prepared, &requirements, &scenarios, &mut scratch).unwrap();

            assert_eq!(summary.outlays, expected.outlays);
            assert_eq!(summary.expected_penalties, expected.expected_penalties);
            assert_eq!(summary.total(), expected.total());
            assert_eq!(summary.evaluations, expected.evaluations.len());

            // Fold the report path exactly the way sweep/search do.
            let mut worst_recovery_time = TimeDelta::ZERO;
            let mut worst_data_loss = TimeDelta::ZERO;
            let mut meets = true;
            for (_, evaluation) in &expected.evaluations {
                worst_recovery_time = worst_recovery_time.max(evaluation.recovery.total_time);
                worst_data_loss = worst_data_loss.max(evaluation.loss.worst_loss);
                meets &= evaluation.meets_objectives(&requirements);
            }
            assert_eq!(summary.worst_recovery_time, worst_recovery_time);
            assert_eq!(summary.worst_data_loss, worst_data_loss);
            assert_eq!(summary.meets_objectives, meets);
        }
    }

    #[test]
    fn empty_catalog_scores_zero() {
        let summary = ExpectedSummary::empty();
        assert_eq!(summary.total(), Money::ZERO);
        assert!(summary.meets_objectives);

        let workload = crate::presets::cello_workload();
        let prepared =
            PreparedDesign::prepare(&crate::presets::baseline_design(), &workload).unwrap();
        let scored = expected_summary(
            &prepared,
            &crate::presets::paper_requirements(),
            &[],
            &mut EvalScratch::new(),
        )
        .unwrap();
        assert_eq!(scored, summary);
    }

    #[test]
    fn bad_frequency_errors_match_the_report_path() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let bad = vec![WeightedScenario::new(
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            f64::NAN,
        )];
        let report_err =
            crate::analysis::expected_annual_cost(&design, &workload, &requirements, &bad)
                .unwrap_err();
        let score_err =
            expected_summary(&prepared, &requirements, &bad, &mut EvalScratch::new()).unwrap_err();
        assert_eq!(report_err.to_string(), score_err.to_string());
    }
}

//! Staged evaluation: the scenario-independent half of the pipeline,
//! computed once and reused across scenarios.
//!
//! The paper's evaluation factors cleanly in two: converting every
//! level's policy into device demands (§3.2.3) and checking normal-mode
//! utilization (§3.3.1) depend only on the (design, workload) pair,
//! while data loss (§3.3.3), recovery (§3.3.4), and penalties (§3.3.5)
//! depend on the failure scenario. [`PreparedDesign`] captures the first
//! half — demands, the utilization report, and the level propagation
//! ranges (§3.3.2) — so that evaluating N scenarios, a frequency-weighted
//! catalog, or a degraded-mode matrix pays the preparation cost once
//! instead of N times.
//!
//! [`evaluate`](super::evaluate()) is a thin wrapper over
//! [`PreparedDesign::evaluate_scenario`]; the two paths produce
//! bit-for-bit identical [`Evaluation`]s (a property test in the
//! integration suite pins this, serialized caveats and errors included).

use crate::analysis::propagation::{level_ranges, LevelRange};
use crate::analysis::{cost, data_loss, recovery, utilization};
use crate::analysis::{Evaluation, LenientEvaluation, Section, SectionCaveat};
use crate::demands::DemandSet;
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::workload::Workload;
use std::sync::Arc;

/// The scenario-independent artifacts of one (design, workload) pair.
///
/// Build one with [`PreparedDesign::prepare`], then evaluate as many
/// scenarios as needed against it:
///
/// ```
/// use ssdep_core::prelude::*;
/// use ssdep_core::analysis::PreparedDesign;
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let workload = ssdep_core::presets::cello_workload();
/// let design = ssdep_core::presets::baseline_design();
/// let requirements = ssdep_core::presets::paper_requirements();
/// let prepared = PreparedDesign::prepare(&design, &workload)?;
/// let array = prepared.evaluate_scenario(
///     &requirements,
///     &FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
/// )?;
/// let site = prepared.evaluate_scenario(
///     &requirements,
///     &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
/// )?;
/// assert!(site.loss.worst_loss > array.loss.worst_loss);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedDesign {
    design: StorageDesign,
    workload: Workload,
    demands: DemandSet,
    // Shared, not owned: every evaluation of this prepared design hands
    // out the same normal-mode report, so a K-scenario batch allocates
    // it once instead of K times.
    utilization: Arc<utilization::UtilizationReport>,
    ranges: Vec<LevelRange>,
}

impl PreparedDesign {
    /// Runs the scenario-independent stages for `design` under
    /// `workload`: demand derivation, the normal-mode utilization
    /// report, and the per-level propagation ranges.
    ///
    /// The utilization *feasibility check* (§3.3.1) is deliberately not
    /// performed here — it stays in [`Self::evaluate_scenario`] so the
    /// staged path reports [`Error::Overutilized`] at exactly the same
    /// point in the pipeline as the single-shot path.
    ///
    /// # Errors
    ///
    /// Technique/structure errors propagated from the demand models.
    pub fn prepare(design: &StorageDesign, workload: &Workload) -> Result<PreparedDesign, Error> {
        let demands = design.demands(workload)?;
        let utilization = Arc::new(utilization::utilization_from_demands(design, &demands));
        let ranges = level_ranges(design);
        Ok(PreparedDesign {
            design: design.clone(),
            workload: workload.clone(),
            demands,
            utilization,
            ranges,
        })
    }

    /// The prepared design.
    pub fn design(&self) -> &StorageDesign {
        &self.design
    }

    /// The prepared workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The derived device demands (§3.2.3).
    pub fn demands(&self) -> &DemandSet {
        &self.demands
    }

    /// The normal-mode utilization report (§3.3.1), not yet checked for
    /// feasibility.
    pub fn utilization(&self) -> &utilization::UtilizationReport {
        &self.utilization
    }

    /// The per-level guaranteed RP age ranges (§3.3.2).
    pub fn ranges(&self) -> &[LevelRange] {
        &self.ranges
    }

    /// Runs the scenario-dependent stages against the prepared
    /// artifacts: the §3.3.1 feasibility check, data loss, recovery,
    /// and cost.
    ///
    /// # Errors
    ///
    /// As [`evaluate`](super::evaluate()): [`Error::Overutilized`],
    /// [`Error::NoRecoverySource`], [`Error::NoReplacement`].
    pub fn evaluate_scenario(
        &self,
        requirements: &BusinessRequirements,
        scenario: &FailureScenario,
    ) -> Result<Evaluation, Error> {
        self.evaluate_scenario_shared(requirements, Arc::new(scenario.clone()))
    }

    /// As [`Self::evaluate_scenario`], taking an already-shared scenario
    /// so batch callers (sweeps, weighted catalogs) avoid a deep clone
    /// per evaluation — the returned [`Evaluation`] holds the same
    /// `Arc`.
    ///
    /// # Errors
    ///
    /// As [`Self::evaluate_scenario`].
    pub fn evaluate_scenario_shared(
        &self,
        requirements: &BusinessRequirements,
        scenario: Arc<FailureScenario>,
    ) -> Result<Evaluation, Error> {
        self.utilization.check()?;
        let loss = data_loss::data_loss_from_ranges(&self.design, &scenario, &self.ranges)?;
        let recovery = recovery::recovery(
            &self.design,
            &self.workload,
            &self.demands,
            &scenario,
            loss.source_level,
        )?;
        let cost = cost::costs(
            &self.design,
            &self.demands,
            requirements,
            recovery.total_time,
            loss.worst_loss,
        );
        Ok(Evaluation {
            scenario,
            utilization: Arc::clone(&self.utilization),
            loss,
            recovery,
            cost,
        })
    }

    /// The lenient counterpart of [`Self::evaluate_scenario`]: attempts
    /// each scenario-dependent section independently and quarantines
    /// failures as [`SectionCaveat`]s, exactly as
    /// [`evaluate_lenient`](super::evaluate_lenient()) does once the
    /// demand derivation has succeeded.
    pub fn evaluate_scenario_lenient(
        &self,
        requirements: &BusinessRequirements,
        scenario: &FailureScenario,
    ) -> LenientEvaluation {
        let mut caveats = Vec::new();

        let report = (*self.utilization).clone();
        if let Err(error) = report.check() {
            caveats.push(SectionCaveat::new(
                Section::Utilization,
                "overutilized",
                error.to_string(),
            ));
        }
        let utilization = Some(report);

        let loss = match data_loss::data_loss_from_ranges(&self.design, scenario, &self.ranges) {
            Ok(loss) => Some(loss),
            Err(error) => {
                let code = match error {
                    Error::NoRecoverySource { .. } => "no-recovery-source",
                    Error::AllCopiesLost => "all-copies-lost",
                    _ => "invalid-input",
                };
                caveats.push(SectionCaveat::new(
                    Section::DataLoss,
                    code,
                    error.to_string(),
                ));
                None
            }
        };

        let recovery = match &loss {
            Some(loss) => {
                match recovery::recovery(
                    &self.design,
                    &self.workload,
                    &self.demands,
                    scenario,
                    loss.source_level,
                ) {
                    Ok(recovery) => Some(recovery),
                    Err(error) => {
                        let code = match error {
                            Error::NoReplacement { .. } => "no-replacement",
                            _ => "invalid-input",
                        };
                        caveats.push(SectionCaveat::new(
                            Section::Recovery,
                            code,
                            error.to_string(),
                        ));
                        None
                    }
                }
            }
            None => {
                caveats.push(SectionCaveat::new(
                    Section::Recovery,
                    "upstream-unavailable",
                    "recovery needs the demand derivation and a surviving loss source",
                ));
                None
            }
        };

        let cost = match (&loss, &recovery) {
            (Some(loss), Some(recovery)) => {
                let report = cost::costs(
                    &self.design,
                    &self.demands,
                    requirements,
                    recovery.total_time,
                    loss.worst_loss,
                );
                if !report.total_cost.is_finite() {
                    caveats.push(SectionCaveat::new(
                        Section::Cost,
                        "non-finite-cost",
                        format!(
                            "the total cost is {}; an outlay component overflows or \
                             is non-finite",
                            report.total_cost
                        ),
                    ));
                }
                Some(report)
            }
            _ => {
                caveats.push(SectionCaveat::new(
                    Section::Cost,
                    "upstream-unavailable",
                    "cost needs demands, a loss source, and a recovery timeline",
                ));
                None
            }
        };

        LenientEvaluation {
            scenario: scenario.clone(),
            utilization,
            loss,
            recovery,
            cost,
            caveats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::evaluate;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::{Bytes, TimeDelta};

    fn fixture() -> (StorageDesign, Workload, BusinessRequirements) {
        (
            crate::presets::baseline_design(),
            crate::presets::cello_workload(),
            crate::presets::paper_requirements(),
        )
    }

    #[test]
    fn prepared_scenarios_match_single_shot_evaluations() {
        let (design, workload, requirements) = fixture();
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let scenarios = [
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        ];
        for scenario in &scenarios {
            let staged = prepared.evaluate_scenario(&requirements, scenario).unwrap();
            let single = evaluate(&design, &workload, &requirements, scenario).unwrap();
            assert_eq!(staged, single);
        }
    }

    #[test]
    fn preparation_artifacts_are_exposed() {
        let (design, workload, _) = fixture();
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        assert_eq!(prepared.design().name(), design.name());
        assert_eq!(prepared.ranges().len(), design.levels().len());
        assert!(prepared.utilization().check().is_ok());
        assert_eq!(prepared.workload(), &workload);
    }

    #[test]
    fn shared_scenarios_are_not_deep_cloned() {
        let (design, workload, requirements) = fixture();
        let prepared = PreparedDesign::prepare(&design, &workload).unwrap();
        let scenario = Arc::new(FailureScenario::new(
            FailureScope::Array,
            RecoveryTarget::Now,
        ));
        let evaluation = prepared
            .evaluate_scenario_shared(&requirements, Arc::clone(&scenario))
            .unwrap();
        assert!(Arc::ptr_eq(&evaluation.scenario, &scenario));
    }

    #[test]
    fn overutilization_is_checked_per_scenario_not_at_preparation() {
        let (design, workload, requirements) = fixture();
        let overgrown = workload.scaled(4.0).unwrap();
        let prepared = PreparedDesign::prepare(&design, &overgrown).unwrap();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let err = prepared
            .evaluate_scenario(&requirements, &scenario)
            .unwrap_err();
        assert!(matches!(err, Error::Overutilized { .. }));
    }
}

//! Normal-mode utilization analysis (§3.3.1, paper Table 5).
//!
//! Each device model computes its own (local) bandwidth and capacity
//! utilization from the aggregated technique demands; the global model
//! takes the most heavily utilized device as the system utilization and
//! flags any device whose demands exceed its capability.
//!
//! The report depends only on the (design, workload) pair — it is part
//! of the scenario-independent preparation a
//! [`PreparedDesign`](crate::analysis::PreparedDesign) caches, with the
//! feasibility [`check`](UtilizationReport::check) deferred to each
//! scenario evaluation.

use crate::demands::DemandSet;
use crate::error::{Error, ResourceKind};
use crate::hierarchy::StorageDesign;
use crate::units::{Bandwidth, Bytes, Utilization};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// One level's share of one device's utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelShare {
    /// The contributing hierarchy level.
    pub level: usize,
    /// The level's display name.
    pub level_name: String,
    /// Bandwidth demanded by this level.
    pub bandwidth: Bandwidth,
    /// Capacity demanded by this level.
    pub capacity: Bytes,
    /// This level's share of the device's bandwidth.
    pub bandwidth_utilization: Utilization,
    /// This level's share of the device's capacity.
    pub capacity_utilization: Utilization,
}

/// The utilization of a single device, with a per-level breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceUtilization {
    /// The device's name.
    pub device_name: String,
    /// Total bandwidth demanded of the device.
    pub bandwidth_demand: Bandwidth,
    /// Total capacity demanded of the device.
    pub capacity_demand: Bytes,
    /// Aggregate bandwidth utilization.
    pub bandwidth_utilization: Utilization,
    /// Aggregate capacity utilization.
    pub capacity_utilization: Utilization,
    /// Per-level shares, in level order (levels contributing nothing are
    /// omitted).
    pub shares: Vec<LevelShare>,
}

/// The normal-mode utilization of the whole design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Per-device utilizations, in device registration order.
    pub devices: Vec<DeviceUtilization>,
    /// The system bandwidth utilization: that of the most heavily
    /// bandwidth-utilized device.
    pub system_bandwidth: Utilization,
    /// The system capacity utilization: that of the most heavily
    /// capacity-utilized device.
    pub system_capacity: Utilization,
}

impl UtilizationReport {
    /// Looks a device's utilization up by name.
    pub fn device(&self, name: &str) -> Option<&DeviceUtilization> {
        self.devices.iter().find(|d| d.device_name == name)
    }

    /// Verifies that no device is overcommitted (§3.3.1's global check).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overutilized`] naming the first offending device
    /// and resource.
    pub fn check(&self) -> Result<(), Error> {
        for device in &self.devices {
            if device.capacity_utilization.is_overcommitted() {
                return Err(Error::Overutilized {
                    device: device.device_name.clone(),
                    resource: ResourceKind::Capacity,
                    utilization: device.capacity_utilization,
                });
            }
            if device.bandwidth_utilization.is_overcommitted() {
                return Err(Error::Overutilized {
                    device: device.device_name.clone(),
                    resource: ResourceKind::Bandwidth,
                    utilization: device.bandwidth_utilization,
                });
            }
        }
        Ok(())
    }
}

/// Computes the normal-mode utilization of `design` under `workload`.
///
/// This never fails on overcommitted devices — call
/// [`UtilizationReport::check`] for the paper's hard feasibility test —
/// but propagates structural errors from the demand models.
///
/// # Errors
///
/// Returns technique demand errors (e.g. a mirror level without a
/// source).
pub fn utilization(
    design: &StorageDesign,
    workload: &Workload,
) -> Result<UtilizationReport, Error> {
    let demands = design.demands(workload)?;
    Ok(utilization_from_demands(design, &demands))
}

/// Computes utilization from precomputed demands (avoids recomputing
/// demands when the caller already has them).
pub fn utilization_from_demands(design: &StorageDesign, demands: &DemandSet) -> UtilizationReport {
    let mut devices = Vec::with_capacity(design.devices().len());
    let mut system_bandwidth = Utilization::ZERO;
    let mut system_capacity = Utilization::ZERO;

    for (index, spec) in design.devices().iter().enumerate() {
        let id = crate::device::DeviceId(index);
        let mut shares = Vec::new();
        let mut bandwidth_demand = Bandwidth::ZERO;
        let mut capacity_demand = Bytes::ZERO;
        for level in demands.levels() {
            for c in level.contributions.iter().filter(|c| c.device == id) {
                bandwidth_demand += c.bandwidth;
                capacity_demand += c.capacity;
                if c.bandwidth.value() > 0.0 || c.capacity.value() > 0.0 {
                    shares.push(LevelShare {
                        level: level.level,
                        level_name: level.level_name.clone(),
                        bandwidth: c.bandwidth,
                        capacity: c.capacity,
                        bandwidth_utilization: spec.bandwidth_utilization(c.bandwidth),
                        capacity_utilization: spec.capacity_utilization(c.capacity),
                    });
                }
            }
        }
        let bandwidth_utilization = spec.bandwidth_utilization(bandwidth_demand);
        let capacity_utilization = spec.capacity_utilization(capacity_demand);
        system_bandwidth = system_bandwidth.max(bandwidth_utilization);
        system_capacity = system_capacity.max(capacity_utilization);
        devices.push(DeviceUtilization {
            device_name: spec.name().to_string(),
            bandwidth_demand,
            capacity_demand,
            bandwidth_utilization,
            capacity_utilization,
            shares,
        });
    }

    UtilizationReport {
        devices,
        system_bandwidth,
        system_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_report() -> UtilizationReport {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        utilization(&design, &workload).unwrap()
    }

    #[test]
    fn array_utilization_matches_paper_table_5() {
        let report = baseline_report();
        let array = report.device("primary array").unwrap();
        // Paper: foreground 0.2 %, split mirror 0.6 %, backup 1.6 %;
        // overall 2.4 % bandwidth (12.4 MB/s) and 87.4 % capacity (8 TB).
        assert!(
            (array.bandwidth_utilization.as_percent() - 2.4).abs() < 0.1,
            "array bandwidth {}",
            array.bandwidth_utilization
        );
        assert!(
            (array.capacity_utilization.as_percent() - 87.4).abs() < 0.3,
            "array capacity {}",
            array.capacity_utilization
        );
        assert!((array.bandwidth_demand.as_mib_per_sec() - 12.3).abs() < 0.2);
        assert!((array.capacity_demand.as_tib() - 7.97).abs() < 0.05);

        let foreground = &array.shares[0];
        assert!((foreground.bandwidth_utilization.as_percent() - 0.2).abs() < 0.05);
        assert!((foreground.capacity_utilization.as_percent() - 14.6).abs() < 0.1);
        let mirror = array
            .shares
            .iter()
            .find(|s| s.level_name == "split mirror")
            .unwrap();
        assert!((mirror.bandwidth_utilization.as_percent() - 0.6).abs() < 0.05);
        assert!((mirror.capacity_utilization.as_percent() - 72.8).abs() < 0.2);
        let backup = array
            .shares
            .iter()
            .find(|s| s.level_name == "tape backup")
            .unwrap();
        assert!((backup.bandwidth_utilization.as_percent() - 1.6).abs() < 0.05);
        assert_eq!(backup.capacity_utilization, Utilization::ZERO);
    }

    #[test]
    fn tape_and_vault_utilization_match_paper_table_5() {
        let report = baseline_report();
        let tape = report.device("tape library").unwrap();
        assert!((tape.bandwidth_utilization.as_percent() - 3.4).abs() < 0.05);
        assert!((tape.capacity_utilization.as_percent() - 3.4).abs() < 0.05);
        assert!((tape.bandwidth_demand.as_mib_per_sec() - 8.06).abs() < 0.05);
        assert!((tape.capacity_demand.as_tib() - 6.64).abs() < 0.05);

        let vault = report.device("tape vault").unwrap();
        assert!((vault.capacity_utilization.as_percent() - 2.65).abs() < 0.05);
        assert!((vault.capacity_demand.as_tib() - 51.8).abs() < 0.1);
        assert_eq!(vault.bandwidth_utilization, Utilization::ZERO);
    }

    #[test]
    fn system_utilization_is_the_max_device() {
        let report = baseline_report();
        // Bandwidth: tape library leads at 3.4 %; capacity: array at 87 %.
        assert!((report.system_bandwidth.as_percent() - 3.4).abs() < 0.05);
        assert!((report.system_capacity.as_percent() - 87.4).abs() < 0.3);
        assert!(report.check().is_ok());
    }

    #[test]
    fn overcommit_is_detected() {
        // Shrink the workload's home: a tiny array cannot hold six copies
        // of the dataset.
        use crate::device::{DeviceKind, DeviceSpec};
        use crate::hierarchy::{Level, StorageDesign};
        use crate::protection::{PrimaryCopy, SplitMirror, Technique};
        use crate::units::TimeDelta;

        let workload = crate::presets::cello_workload();
        let mut builder = StorageDesign::builder("tiny");
        let array = builder
            .add_device(
                DeviceSpec::builder("small array", DeviceKind::disk_array(1.0))
                    .capacity_slots(10, Bytes::from_gib(73.0))
                    .bandwidth_slots(10, Bandwidth::from_mib_per_sec(25.0))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        builder.add_level(Level::new(
            "primary",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            array,
        ));
        builder.add_level(Level::new(
            "split mirror",
            Technique::SplitMirror(SplitMirror::new(
                crate::protection::ProtectionParams::builder()
                    .accumulation_window(TimeDelta::from_hours(12.0))
                    .propagation_window(TimeDelta::ZERO)
                    .retention_count(4)
                    .build()
                    .unwrap(),
            )),
            array,
        ));
        let design = builder.build().unwrap();
        let report = utilization(&design, &workload).unwrap();
        let err = report.check().unwrap_err();
        assert!(matches!(err, Error::Overutilized { .. }));
        assert!(err.to_string().contains("small array"));
    }

    #[test]
    fn unknown_device_lookup_returns_none() {
        let report = baseline_report();
        assert!(report.device("missing").is_none());
    }
}

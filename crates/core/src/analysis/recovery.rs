//! Worst-case recovery time (§3.3.4, paper Table 6's "recovery time"
//! column and Figure 4).
//!
//! Recovery streams the restored data from the source level back toward
//! the primary copy, one hop per distinct device on the way. Each hop
//! combines:
//!
//! * **parallelizable fixed work** (`parFix`) — reprovisioning the
//!   destination from a spare or the recovery facility, startable at
//!   failure time;
//! * **physical shipment** — courier transports move media at a fixed
//!   delay regardless of size and may overlap destination provisioning;
//! * **serialized fixed work** (`serFix`) — tape load/seek and other
//!   per-access delays that start only once media/data are at hand;
//! * **serialized transfer** (`serXfer`) — moving the bytes at the
//!   minimum of the sender's, receiver's, and links' *available*
//!   bandwidth (capability minus normal-mode RP-propagation demands;
//!   freshly reprovisioned replacements start idle).
//!
//! A hop whose source and destination are the same device (restoring a
//! PiT copy) is an intra-device copy: reads and writes share the
//! enclosure, so it runs at half the available bandwidth.

use crate::demands::DemandSet;
use crate::device::{DeviceId, DeviceKind};
use crate::error::Error;
use crate::failure::{FailureScenario, FailureScope};
use crate::hierarchy::StorageDesign;
use crate::units::{Bandwidth, Bytes, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// The kind of work a [`RecoveryStep`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// Reprovisioning a destroyed device (spare or recovery facility).
    Provisioning,
    /// Physical transport of media (courier).
    Shipment,
    /// Serialized fixed work: media load, seek, mount.
    MediaHandling,
    /// Bandwidth-limited data transfer.
    Transfer,
}

/// One scheduled task in the recovery timeline (Figure 4's boxes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStep {
    /// What the task is, e.g. `"ship media: tape vault -> tape library"`.
    pub description: String,
    /// The kind of work.
    pub kind: StepKind,
    /// When the task starts, measured from the failure.
    pub start: TimeDelta,
    /// How long it runs.
    pub duration: TimeDelta,
}

impl RecoveryStep {
    /// When the task completes, measured from the failure.
    pub fn end(&self) -> TimeDelta {
        self.start + self.duration
    }
}

/// The recovery-time outcome for a failure scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The level the restore streamed from.
    pub source_level: usize,
    /// The source level's display name.
    pub source_level_name: String,
    /// The bytes read from the source (a full plus incrementals can
    /// exceed the dataset size).
    pub restore_bytes: Bytes,
    /// Time from failure until the application can run again.
    pub total_time: TimeDelta,
    /// The recovery timeline (Figure 4), in start order.
    pub steps: Vec<RecoveryStep>,
}

/// Computes the worst-case recovery time when restoring from
/// `source_level` (as chosen by [`data_loss`](super::data_loss())).
///
/// `demands` must be the design's normal-mode demand set; it determines
/// how much bandwidth surviving devices have left for the restore
/// stream.
///
/// # Errors
///
/// Returns [`Error::NoReplacement`] when a destroyed device on the
/// recovery path has neither a spare nor a recovery facility, and
/// [`Error::InvalidParameter`] if `source_level` is out of range or was
/// itself destroyed.
pub fn recovery(
    design: &StorageDesign,
    workload: &Workload,
    demands: &DemandSet,
    scenario: &FailureScenario,
    source_level: usize,
) -> Result<RecoveryReport, Error> {
    let restore_bytes = restore_size(design, workload, scenario, source_level);
    recovery_with_bytes(design, demands, scenario, source_level, restore_bytes)
}

/// The analytic worst-case restore size when `source_level` serves: the
/// scenario's recovery size inflated by the source technique's restore
/// amplification (a full plus incrementals can exceed the dataset).
pub(crate) fn restore_size(
    design: &StorageDesign,
    workload: &Workload,
    scenario: &FailureScenario,
    source_level: usize,
) -> Bytes {
    let recovery_size = scenario.recovery_size(workload.data_capacity());
    design
        .levels()
        .get(source_level)
        .map(|level| {
            level
                .technique()
                .worst_restore_bytes(workload, recovery_size)
        })
        .unwrap_or(recovery_size)
}

/// As [`recovery`], reduced to the total time the scored sweep path
/// needs: the same hop walk with the same error cases, but no timeline
/// steps and no description strings — the only heap traffic is the
/// reused `chain` scratch vector (which keeps its capacity between
/// scenarios).
///
/// # Errors
///
/// As [`recovery`].
pub fn recovery_total_time(
    design: &StorageDesign,
    workload: &Workload,
    demands: &DemandSet,
    scenario: &FailureScenario,
    source_level: usize,
    chain: &mut Vec<usize>,
) -> Result<TimeDelta, Error> {
    let restore_bytes = restore_size(design, workload, scenario, source_level);
    recovery_core(
        design,
        demands,
        scenario,
        source_level,
        restore_bytes,
        chain,
        &mut IgnoreSteps,
    )
}

/// Like [`recovery`], but with an explicitly supplied restore size —
/// used by simulators and what-if tools that know the actual bytes a
/// restore must move rather than the analytic worst case.
///
/// # Errors
///
/// As [`recovery`].
pub fn recovery_with_bytes(
    design: &StorageDesign,
    demands: &DemandSet,
    scenario: &FailureScenario,
    source_level: usize,
    restore_bytes: Bytes,
) -> Result<RecoveryReport, Error> {
    let mut sink = CollectSteps { steps: Vec::new() };
    let mut chain = Vec::new();
    let total_time = recovery_core(
        design,
        demands,
        scenario,
        source_level,
        restore_bytes,
        &mut chain,
        &mut sink,
    )?;
    let mut steps = sink.steps;
    steps.sort_by(|a, b| a.start.value().total_cmp(&b.start.value()));
    Ok(RecoveryReport {
        source_level,
        source_level_name: design.levels()[source_level].name().to_string(),
        // The live primary serves in place: nothing is read back.
        restore_bytes: if source_level == 0 {
            Bytes::ZERO
        } else {
            restore_bytes
        },
        total_time,
        steps,
    })
}

/// Where the hop walk reports its timeline: the report path collects
/// [`RecoveryStep`]s, the scored path discards them (and never runs the
/// description formatter, keeping that path allocation-free).
trait StepSink {
    fn push(
        &mut self,
        kind: StepKind,
        start: TimeDelta,
        duration: TimeDelta,
        describe: &mut dyn FnMut() -> String,
    );
}

struct CollectSteps {
    steps: Vec<RecoveryStep>,
}

impl StepSink for CollectSteps {
    fn push(
        &mut self,
        kind: StepKind,
        start: TimeDelta,
        duration: TimeDelta,
        describe: &mut dyn FnMut() -> String,
    ) {
        self.steps.push(RecoveryStep {
            description: describe(),
            kind,
            start,
            duration,
        });
    }
}

struct IgnoreSteps;

impl StepSink for IgnoreSteps {
    fn push(
        &mut self,
        _kind: StepKind,
        _start: TimeDelta,
        _duration: TimeDelta,
        _describe: &mut dyn FnMut() -> String,
    ) {
    }
}

/// The §3.3.4 hop walk shared by the report and scored paths: validates
/// the source, builds the host chain into the reusable `chain` scratch,
/// and returns the recovery clock. All timeline output goes through
/// `sink` so the two paths cannot drift.
fn recovery_core<S: StepSink>(
    design: &StorageDesign,
    demands: &DemandSet,
    scenario: &FailureScenario,
    source_level: usize,
    restore_bytes: Bytes,
    chain: &mut Vec<usize>,
    sink: &mut S,
) -> Result<TimeDelta, Error> {
    let levels = design.levels();
    if source_level >= levels.len() {
        return Err(Error::invalid(
            "recovery.sourceLevel",
            format!("level {source_level} does not exist"),
        ));
    }
    if design.level_unavailable(source_level, scenario) {
        return Err(Error::invalid(
            "recovery.sourceLevel",
            "the chosen source level did not survive the failure",
        ));
    }

    // Parallel-repair erasure coding streams k fragments concurrently,
    // dividing the transfer time of the hop that reads the source.
    let source_parallelism = levels[source_level]
        .technique()
        .repair_parallelism()
        .max(1.0);

    // Nothing to do when the live primary serves.
    if source_level == 0 {
        return Ok(TimeDelta::ZERO);
    }

    // Chain of levels whose hosts the data must traverse, source first,
    // ending at the device that will hold the restored primary.
    chain.clear();
    chain.push(source_level);
    let mut last = source_level;
    for index in (0..source_level).rev() {
        if levels[index].host() != levels[last].host() {
            chain.push(index);
            last = index;
        }
    }

    let mut clock = TimeDelta::ZERO;

    if chain.len() == 1 {
        // The source shares the primary's device: an intra-device copy.
        let host = levels[source_level].host();
        let spec = design.device(host);
        let available = available_bandwidth(design, demands, scenario, host);
        let duration = match available {
            Some(bw) if bw.value() > 0.0 => restore_bytes / (bw / 2.0) / source_parallelism,
            _ => TimeDelta::ZERO,
        };
        if spec.access_delay().value() > 0.0 {
            sink.push(
                StepKind::MediaHandling,
                clock,
                spec.access_delay(),
                &mut || format!("position media on {}", spec.name()),
            );
            clock += spec.access_delay();
        }
        sink.push(StepKind::Transfer, clock, duration, &mut || {
            format!("intra-device copy on {}", spec.name())
        });
        clock += duration;
    } else {
        for pair_start in 0..chain.len() - 1 {
            let (upper, lower) = (chain[pair_start], chain[pair_start + 1]);
            let src = levels[upper].host();
            let dst = levels[lower].host();
            let transports = levels[upper].transports();
            let src_spec = design.device(src);
            let dst_spec = design.device(dst);

            // Physical shipment time (couriers among the transports).
            let ship_time = transports
                .iter()
                .filter(|&&t| matches!(design.device(t).kind(), DeviceKind::Courier))
                .map(|&t| design.device(t).access_delay())
                .fold(TimeDelta::ZERO, TimeDelta::max);
            let is_physical = ship_time > TimeDelta::ZERO;

            // Destination reprovisioning runs from failure time.
            let provisioning = reprovision_time(design, scenario, dst)?;
            if let Some(par_fix) = provisioning {
                sink.push(
                    StepKind::Provisioning,
                    TimeDelta::ZERO,
                    par_fix,
                    &mut || format!("reprovision {}", dst_spec.name()),
                );
            }

            if is_physical {
                sink.push(StepKind::Shipment, clock, ship_time, &mut || {
                    format!("ship media: {} -> {}", src_spec.name(), dst_spec.name())
                });
            }
            let arrival = clock + ship_time;
            let ready = arrival.max(provisioning.unwrap_or(TimeDelta::ZERO));
            clock = ready;

            // Serialized fixed work once media/data are at hand.
            let mut ser_fix = src_spec.access_delay() + dst_spec.access_delay();
            for &t in transports {
                if !matches!(design.device(t).kind(), DeviceKind::Courier) {
                    ser_fix += design.device(t).access_delay();
                }
            }
            if ser_fix > TimeDelta::ZERO {
                sink.push(StepKind::MediaHandling, clock, ser_fix, &mut || {
                    format!(
                        "load/seek media at {}",
                        if is_physical {
                            dst_spec.name()
                        } else {
                            src_spec.name()
                        }
                    )
                });
                clock += ser_fix;
            }

            // Bandwidth-limited transfer (media that moved physically
            // need no further transfer on this hop).
            if !is_physical {
                let mut limit: Option<Bandwidth> = None;
                for device in std::iter::once(src)
                    .chain(std::iter::once(dst))
                    .chain(transports.iter().copied())
                {
                    if let Some(bw) = available_bandwidth(design, demands, scenario, device) {
                        limit = Some(match limit {
                            None => bw,
                            Some(current) => current.min(bw),
                        });
                    }
                }
                let parallelism = if upper == source_level {
                    source_parallelism
                } else {
                    1.0
                };
                let duration = match limit {
                    Some(bw) if bw.value() > 0.0 => restore_bytes / bw / parallelism,
                    Some(_) => {
                        return Err(Error::invalid(
                            "recovery.bandwidth",
                            format!(
                                "no bandwidth left between {} and {} for the restore stream",
                                src_spec.name(),
                                dst_spec.name()
                            ),
                        ))
                    }
                    None => TimeDelta::ZERO,
                };
                sink.push(StepKind::Transfer, clock, duration, &mut || {
                    format!(
                        "transfer {restore_bytes}: {} -> {}",
                        src_spec.name(),
                        dst_spec.name()
                    )
                });
                clock += duration;
            }
        }
    }

    Ok(clock)
}

/// How long it takes to stand in a replacement for `device`, or `None`
/// when the device survived.
///
/// Under an array-scope failure the co-located spare survives and is
/// used; under building/site/region scopes local spares are destroyed
/// with the device, so the design's recovery facility must provision
/// replacements.
fn reprovision_time(
    design: &StorageDesign,
    scenario: &FailureScenario,
    device: DeviceId,
) -> Result<Option<TimeDelta>, Error> {
    if !design.device_destroyed(device, &scenario.scope) {
        return Ok(None);
    }
    let spec = design.device(device);
    let spare_survives = matches!(scenario.scope, FailureScope::Array);
    if spare_survives {
        if let Some(time) = spec.spare().provisioning_time() {
            return Ok(Some(time));
        }
    }
    if let Some(site) = design.recovery_site() {
        let site_destroyed = scenario
            .scope
            .destroys_location(&site.location, design.primary_location());
        if !site_destroyed {
            return Ok(Some(site.provisioning_time));
        }
    }
    Err(Error::NoReplacement {
        device: spec.name().to_string(),
    })
}

/// The bandwidth a device can devote to the restore stream.
fn available_bandwidth(
    design: &StorageDesign,
    demands: &DemandSet,
    scenario: &FailureScenario,
    device: DeviceId,
) -> Option<Bandwidth> {
    let spec = design.device(device);
    if design.device_destroyed(device, &scenario.scope) {
        // A fresh replacement has no normal-mode duties yet.
        spec.max_bandwidth()
    } else {
        spec.available_bandwidth(demands.bandwidth_on(device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::RecoveryTarget;

    struct Fixture {
        design: StorageDesign,
        workload: Workload,
        demands: DemandSet,
    }

    fn baseline() -> Fixture {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        Fixture {
            design,
            workload,
            demands,
        }
    }

    fn run(fixture: &Fixture, scenario: &FailureScenario) -> RecoveryReport {
        let loss = super::super::data_loss::data_loss(&fixture.design, scenario).unwrap();
        recovery(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            scenario,
            loss.source_level,
        )
        .unwrap()
    }

    #[test]
    fn object_recovery_is_a_millisecond_scale_intra_array_copy() {
        let fixture = baseline();
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let report = run(&fixture, &scenario);
        assert_eq!(report.source_level_name, "split mirror");
        // Paper Table 6: 0.004 s.
        assert!(
            (report.total_time.as_secs() - 0.004).abs() < 0.0005,
            "object recovery took {}",
            report.total_time
        );
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].kind, StepKind::Transfer);
    }

    #[test]
    fn array_recovery_is_transfer_dominated_hours() {
        let fixture = baseline();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let report = run(&fixture, &scenario);
        assert_eq!(report.source_level_name, "tape backup");
        // Tape's available 232 MiB/s moves 1360 GiB in ~1.7 h (the paper
        // reports 2.4 h; see EXPERIMENTS.md for the convention delta).
        assert!(report.total_time > TimeDelta::from_hours(1.5));
        assert!(report.total_time < TimeDelta::from_hours(2.5));
        assert!(report
            .steps
            .iter()
            .any(|s| s.kind == StepKind::Provisioning && s.description.contains("primary array")));
        let transfer = report
            .steps
            .iter()
            .find(|s| s.kind == StepKind::Transfer)
            .unwrap();
        assert!(transfer.duration > TimeDelta::from_hours(1.0));
    }

    #[test]
    fn site_recovery_waits_for_the_shipment_not_the_provisioning() {
        let fixture = baseline();
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let report = run(&fixture, &scenario);
        assert_eq!(report.source_level_name, "remote vaulting");
        // 24 h shipment ∥ 9 h provisioning, then load + restore ≈ 26 h
        // (paper: 26.4 h).
        assert!(report.total_time > TimeDelta::from_hours(25.0));
        assert!(report.total_time < TimeDelta::from_hours(27.0));
        let shipment = report
            .steps
            .iter()
            .find(|s| s.kind == StepKind::Shipment)
            .expect("site recovery ships tapes");
        assert_eq!(shipment.duration, TimeDelta::from_hours(24.0));
        // Both the tape library and the array are rebuilt at the
        // recovery facility, in parallel with the shipment.
        let provisionings: Vec<_> = report
            .steps
            .iter()
            .filter(|s| s.kind == StepKind::Provisioning)
            .collect();
        assert_eq!(provisionings.len(), 2);
        for p in provisionings {
            assert_eq!(p.start, TimeDelta::ZERO);
            assert_eq!(p.duration, TimeDelta::from_hours(9.0));
        }
    }

    #[test]
    fn mirror_recovery_is_limited_by_the_wan_links() {
        let workload = crate::presets::cello_workload();
        for (links, low, high) in [(1, 21.0, 23.0), (10, 1.9, 2.6)] {
            let design = crate::presets::async_batch_mirror_design(links);
            let demands = design.demands(&workload).unwrap();
            let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
            let loss = super::super::data_loss::data_loss(&design, &scenario).unwrap();
            let report =
                recovery(&design, &workload, &demands, &scenario, loss.source_level).unwrap();
            let hours = report.total_time.as_hours();
            assert!(
                hours > low && hours < high,
                "{links} link(s): {hours:.1} h not in ({low}, {high})"
            );
        }
    }

    #[test]
    fn primary_source_recovers_instantly() {
        let fixture = baseline();
        let scenario = FailureScenario::new(
            FailureScope::ProtectionLevel { level: 2 },
            RecoveryTarget::Now,
        );
        let report = run(&fixture, &scenario);
        assert_eq!(report.total_time, TimeDelta::ZERO);
        assert!(report.steps.is_empty());
    }

    #[test]
    fn destroyed_source_is_rejected() {
        let fixture = baseline();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let err = recovery(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &scenario,
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("did not survive"));
    }

    #[test]
    fn missing_recovery_facility_fails_site_recovery() {
        // Rebuild the baseline without a recovery site: a site disaster
        // leaves nowhere to restore to.
        let workload = crate::presets::cello_workload();
        let reference = crate::presets::baseline_design();
        let mut builder = StorageDesign::builder("no facility");
        for spec in reference.devices() {
            builder.add_device(spec.clone()).unwrap();
        }
        for level in reference.levels() {
            builder.add_level(level.clone());
        }
        let design = builder.build().unwrap();
        let demands = design.demands(&workload).unwrap();
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let loss = super::super::data_loss::data_loss(&design, &scenario).unwrap();
        let err = recovery(&design, &workload, &demands, &scenario, loss.source_level).unwrap_err();
        assert!(matches!(err, Error::NoReplacement { .. }));
    }

    #[test]
    fn steps_are_sorted_and_consistent() {
        let fixture = baseline();
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let report = run(&fixture, &scenario);
        for pair in report.steps.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        let last_end = report
            .steps
            .iter()
            .map(RecoveryStep::end)
            .fold(TimeDelta::ZERO, TimeDelta::max);
        assert_eq!(last_end, report.total_time);
    }
}

//! Composing the technique and device models into the overall
//! dependability evaluation (§3.3).
//!
//! [`evaluate`] runs the full pipeline for one failure scenario:
//!
//! 1. convert every level's policy into device demands (§3.2.3),
//! 2. check normal-mode utilization (§3.3.1),
//! 3. pick the recovery source and worst-case recent data loss (§3.3.3),
//! 4. compute the worst-case recovery time along the recovery path
//!    (§3.3.4),
//! 5. price the design: outlays + penalties (§3.3.5).

pub mod compare;
pub mod cost;
pub mod coverage;
pub mod data_loss;
pub mod degraded;
pub mod expected;
pub mod propagation;
pub mod recovery;
pub mod risk;
pub mod utilization;

pub use compare::{compare, ComparisonRow, DesignComparison};
pub use cost::{CostReport, LevelOutlay};
pub use coverage::{coverage, CoverageReport, CoverageRow, ScopeCoverage};
pub use data_loss::{data_loss, LevelLoss, LossCase, LossReport};
pub use degraded::{degraded_exposure, DegradedOutcome, DegradedReport, DegradedRow};
pub use expected::{expected_annual_cost, ExpectedCost, WeightedScenario};
pub use propagation::{level_ranges, LevelRange};
pub use recovery::{recovery, recovery_with_bytes, RecoveryReport, RecoveryStep, StepKind};
pub use risk::{risk_profile, RiskProfile};
pub use utilization::{
    utilization, utilization_from_demands, DeviceUtilization, UtilizationReport,
};

use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// The complete dependability evaluation of one design under one failure
/// scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The evaluated scenario.
    pub scenario: FailureScenario,
    /// Normal-mode device and system utilization (paper Table 5).
    pub utilization: UtilizationReport,
    /// Recovery source and worst-case recent data loss (Table 6).
    pub loss: LossReport,
    /// Worst-case recovery timeline (Table 6, Figure 4).
    pub recovery: RecoveryReport,
    /// Outlays and penalties (Figure 5, Table 7).
    pub cost: CostReport,
}

impl Evaluation {
    /// Whether the outcome meets the requirements' RTO/RPO objectives.
    pub fn meets_objectives(&self, requirements: &BusinessRequirements) -> bool {
        requirements.meets_objectives(self.recovery.total_time, self.loss.worst_loss)
    }
}

/// Evaluates `design` for `workload` and `requirements` under the given
/// failure scenario.
///
/// # Errors
///
/// * [`Error::Overutilized`] — the design cannot even sustain its
///   normal-mode RP workload (§3.3.1's feasibility check).
/// * [`Error::NoRecoverySource`] — no surviving level retains an RP for
///   the recovery target.
/// * [`Error::NoReplacement`] — a destroyed device on the recovery path
///   has neither a spare nor a recovery facility.
/// * Technique/structure errors propagated from the demand models.
///
/// # Examples
///
/// ```
/// use ssdep_core::prelude::*;
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let workload = ssdep_core::presets::cello_workload();
/// let design = ssdep_core::presets::baseline_design();
/// let requirements = ssdep_core::presets::paper_requirements();
/// let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
/// let eval = evaluate(&design, &workload, &requirements, &scenario)?;
/// assert!(eval.loss.worst_loss > TimeDelta::from_weeks(4.0));
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenario: &FailureScenario,
) -> Result<Evaluation, Error> {
    let demands = design.demands(workload)?;
    let utilization = utilization::utilization_from_demands(design, &demands);
    utilization.check()?;
    let loss = data_loss::data_loss(design, scenario)?;
    let recovery = recovery::recovery(design, workload, &demands, scenario, loss.source_level)?;
    let cost = cost::costs(
        design,
        &demands,
        requirements,
        recovery.total_time,
        loss.worst_loss,
    );
    Ok(Evaluation {
        scenario: scenario.clone(),
        utilization,
        loss,
        recovery,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::{Bytes, TimeDelta};

    fn evaluate_baseline(scope: FailureScope, target: RecoveryTarget) -> Evaluation {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let scenario = FailureScenario::new(scope, target);
        evaluate(&design, &workload, &requirements, &scenario).unwrap()
    }

    #[test]
    fn table_6_object_row() {
        let eval = evaluate_baseline(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        assert_eq!(eval.loss.source_level_name(), Some("split mirror"));
        assert!(eval.recovery.total_time < TimeDelta::from_secs(0.01));
        assert_eq!(eval.loss.worst_loss, TimeDelta::from_hours(12.0));
    }

    #[test]
    fn table_6_array_row() {
        let eval = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        assert_eq!(eval.loss.source_level_name(), Some("tape backup"));
        assert!((eval.loss.worst_loss.as_hours() - 217.0).abs() < 1e-9);
        let hours = eval.recovery.total_time.as_hours();
        assert!(hours > 1.5 && hours < 2.5, "array recovery {hours:.2} h");
    }

    #[test]
    fn table_6_site_row() {
        let eval = evaluate_baseline(FailureScope::Site, RecoveryTarget::Now);
        assert_eq!(eval.loss.source_level_name(), Some("remote vaulting"));
        assert!((eval.loss.worst_loss.as_hours() - 1429.0).abs() < 1e-9);
        let hours = eval.recovery.total_time.as_hours();
        assert!(hours > 25.0 && hours < 27.0, "site recovery {hours:.2} h");
    }

    #[test]
    fn figure_5_penalties_dominate_disasters() {
        let object = evaluate_baseline(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let array = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        let site = evaluate_baseline(FailureScope::Site, RecoveryTarget::Now);

        // Outlays are scenario-independent.
        assert_eq!(object.cost.total_outlays, array.cost.total_outlays);
        assert_eq!(array.cost.total_outlays, site.cost.total_outlays);

        // Penalties dwarf outlays for array and site failures…
        assert!(array.cost.total_penalties() > array.cost.total_outlays * 5.0);
        assert!(site.cost.total_penalties() > site.cost.total_outlays * 50.0);
        // …but not for object failures.
        assert!(object.cost.total_penalties() < object.cost.total_outlays);
        // Ordering of total cost follows failure scope severity.
        assert!(object.cost.total_cost < array.cost.total_cost);
        assert!(array.cost.total_cost < site.cost.total_cost);
    }

    #[test]
    fn objectives_are_checked_against_outcomes() {
        let eval = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        let strict = BusinessRequirements::builder()
            .unavailability_penalty_rate(crate::units::MoneyRate::from_dollars_per_hour(1.0))
            .loss_penalty_rate(crate::units::MoneyRate::from_dollars_per_hour(1.0))
            .recovery_point_objective(TimeDelta::from_hours(1.0))
            .build()
            .unwrap();
        assert!(!eval.meets_objectives(&strict));
        assert!(eval.meets_objectives(&crate::presets::paper_requirements()));
    }
}

//! Composing the technique and device models into the overall
//! dependability evaluation (§3.3).
//!
//! [`evaluate`] runs the full pipeline for one failure scenario:
//!
//! 1. convert every level's policy into device demands (§3.2.3),
//! 2. check normal-mode utilization (§3.3.1),
//! 3. pick the recovery source and worst-case recent data loss (§3.3.3),
//! 4. compute the worst-case recovery time along the recovery path
//!    (§3.3.4),
//! 5. price the design: outlays + penalties (§3.3.5).
//!
//! Steps 1–2 are scenario-independent; [`PreparedDesign`] (the
//! [`prepare`] module) computes them once so multi-scenario callers —
//! [`expected_annual_cost`], [`risk_profile`], [`degraded_exposure`],
//! [`compare`] — reuse one preparation instead of redoing it per
//! scenario. [`evaluate`] itself is a thin wrapper over
//! [`PreparedDesign::evaluate_scenario`] and produces bit-for-bit
//! identical results.

pub mod compare;
pub mod cost;
pub mod coverage;
pub mod data_loss;
pub mod degraded;
pub mod expected;
pub mod prepare;
pub mod propagation;
pub mod recovery;
pub mod risk;
pub mod score;
pub mod utilization;

pub use compare::{compare, ComparisonRow, DesignComparison};
pub use cost::{CostReport, LevelOutlay};
pub use coverage::{coverage, CoverageReport, CoverageRow, ScopeCoverage};
pub use data_loss::{
    data_loss, data_loss_from_ranges, data_loss_totals, LevelLoss, LossCase, LossReport,
};
pub use degraded::{
    degraded_exposure, degraded_exposure_prepared, DegradedOutcome, DegradedReport, DegradedRow,
};
pub use expected::{
    check_frequency, expected_annual_cost, expected_annual_cost_prepared, ExpectedCost,
    WeightedScenario,
};
pub use prepare::PreparedDesign;
pub use propagation::{level_ranges, LevelRange};
pub use recovery::{
    recovery, recovery_total_time, recovery_with_bytes, RecoveryReport, RecoveryStep, StepKind,
};
pub use risk::{risk_profile, risk_profile_prepared, RiskProfile};
pub use score::{expected_summary, score_scenario, EvalScratch, ExpectedSummary, ScenarioScore};
pub use utilization::{
    utilization, utilization_from_demands, DeviceUtilization, UtilizationReport,
};

use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The complete dependability evaluation of one design under one failure
/// scenario.
///
/// The scenario and the utilization report are held behind [`Arc`]s so
/// batch producers (weighted catalogs, sweeps, the degraded-mode matrix)
/// share one allocation per distinct scenario — and one per prepared
/// design, since normal-mode utilization is scenario-independent —
/// instead of deep-cloning them per outcome; both serialize
/// transparently, exactly as owned values would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The evaluated scenario.
    pub scenario: Arc<FailureScenario>,
    /// Normal-mode device and system utilization (paper Table 5).
    pub utilization: Arc<UtilizationReport>,
    /// Recovery source and worst-case recent data loss (Table 6).
    pub loss: LossReport,
    /// Worst-case recovery timeline (Table 6, Figure 4).
    pub recovery: RecoveryReport,
    /// Outlays and penalties (Figure 5, Table 7).
    pub cost: CostReport,
}

impl Evaluation {
    /// Whether the outcome meets the requirements' RTO/RPO objectives.
    pub fn meets_objectives(&self, requirements: &BusinessRequirements) -> bool {
        requirements.meets_objectives(self.recovery.total_time, self.loss.worst_loss)
    }
}

/// Evaluates `design` for `workload` and `requirements` under the given
/// failure scenario.
///
/// # Errors
///
/// * [`Error::Overutilized`] — the design cannot even sustain its
///   normal-mode RP workload (§3.3.1's feasibility check).
/// * [`Error::NoRecoverySource`] — no surviving level retains an RP for
///   the recovery target.
/// * [`Error::NoReplacement`] — a destroyed device on the recovery path
///   has neither a spare nor a recovery facility.
/// * Technique/structure errors propagated from the demand models.
///
/// # Examples
///
/// ```
/// use ssdep_core::prelude::*;
///
/// # fn main() -> Result<(), ssdep_core::Error> {
/// let workload = ssdep_core::presets::cello_workload();
/// let design = ssdep_core::presets::baseline_design();
/// let requirements = ssdep_core::presets::paper_requirements();
/// let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
/// let eval = evaluate(&design, &workload, &requirements, &scenario)?;
/// assert!(eval.loss.worst_loss > TimeDelta::from_weeks(4.0));
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenario: &FailureScenario,
) -> Result<Evaluation, Error> {
    PreparedDesign::prepare(design, workload)?.evaluate_scenario(requirements, scenario)
}

/// An analysis section of the evaluation pipeline, as quarantined by
/// [`evaluate_lenient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Normal-mode device utilization (§3.3.1).
    #[serde(rename = "utilization")]
    Utilization,
    /// Recovery source and recent data loss (§3.3.3).
    #[serde(rename = "dataLoss")]
    DataLoss,
    /// The recovery timeline (§3.3.4).
    #[serde(rename = "recovery")]
    Recovery,
    /// Outlays and penalties (§3.3.5).
    #[serde(rename = "cost")]
    Cost,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Section::Utilization => f.write_str("utilization"),
            Section::DataLoss => f.write_str("data loss"),
            Section::Recovery => f.write_str("recovery"),
            Section::Cost => f.write_str("cost"),
        }
    }
}

/// Why a section of a [`LenientEvaluation`] is missing or suspect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionCaveat {
    /// The affected section.
    pub section: Section,
    /// Stable machine-readable cause: `invalid-input`, `overutilized`,
    /// `no-recovery-source`, `all-copies-lost`, `no-replacement`,
    /// `non-finite-cost`, or `upstream-unavailable`.
    pub code: String,
    /// Human-readable explanation.
    pub reason: String,
}

impl SectionCaveat {
    pub(crate) fn new(section: Section, code: &str, reason: impl Into<String>) -> SectionCaveat {
        SectionCaveat {
            section,
            code: code.to_string(),
            reason: reason.into(),
        }
    }
}

/// A partial evaluation: every section that could be computed, plus
/// explicit caveats for the ones that could not (§5's degraded modes of
/// the *evaluation itself*).
///
/// Unlike [`evaluate`], one broken input — an inconsistent cost table, a
/// scenario with no surviving copies — does not blank the whole report:
/// each section is attempted independently and failures are recorded as
/// [`SectionCaveat`]s with stable codes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LenientEvaluation {
    /// The evaluated scenario.
    pub scenario: FailureScenario,
    /// Normal-mode utilization, when the demands could be derived. Kept
    /// even when overcommitted (see the `overutilized` caveat).
    pub utilization: Option<UtilizationReport>,
    /// Recovery source and recent data loss, when a source survives.
    pub loss: Option<LossReport>,
    /// The recovery timeline, when a path exists.
    pub recovery: Option<RecoveryReport>,
    /// Outlays and penalties. Kept even when non-finite (see the
    /// `non-finite-cost` caveat).
    pub cost: Option<CostReport>,
    /// Why any missing or suspect section is that way; empty for a fully
    /// clean evaluation.
    pub caveats: Vec<SectionCaveat>,
}

impl LenientEvaluation {
    /// Whether every section was computed without caveat — in which case
    /// the result matches [`evaluate`].
    pub fn is_complete(&self) -> bool {
        self.caveats.is_empty()
    }

    /// The caveats affecting one section.
    pub fn caveats_for(&self, section: Section) -> impl Iterator<Item = &SectionCaveat> {
        self.caveats.iter().filter(move |c| c.section == section)
    }
}

/// Evaluates as much of the pipeline as the inputs allow, quarantining
/// each section independently instead of aborting on the first error.
///
/// Sections degrade in dependency order: utilization needs the demand
/// derivation; recovery needs demands and a loss source; cost needs all
/// three. A structurally broken hierarchy (empty, or with dangling
/// device references — states reachable only through deserialization)
/// caveats everything rather than panicking.
pub fn evaluate_lenient(
    design: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenario: &FailureScenario,
) -> LenientEvaluation {
    let mut caveats = Vec::new();
    if !crate::diagnose::structure_is_sound(design) {
        let reason = "the hierarchy is empty or references unregistered devices; \
                      run a preflight for details";
        for section in [
            Section::Utilization,
            Section::DataLoss,
            Section::Recovery,
            Section::Cost,
        ] {
            caveats.push(SectionCaveat::new(section, "invalid-input", reason));
        }
        return LenientEvaluation {
            scenario: scenario.clone(),
            utilization: None,
            loss: None,
            recovery: None,
            cost: None,
            caveats,
        };
    }

    // The staged path covers every design whose demands derive; a failed
    // demand derivation caveats the demand-dependent sections but still
    // attempts the data-loss analysis, which needs only the hierarchy.
    let prepared = match PreparedDesign::prepare(design, workload) {
        Ok(prepared) => prepared,
        Err(error) => {
            caveats.push(SectionCaveat::new(
                Section::Utilization,
                "invalid-input",
                format!("demand derivation failed: {error}"),
            ));

            let loss = match data_loss::data_loss(design, scenario) {
                Ok(loss) => Some(loss),
                Err(error) => {
                    let code = match error {
                        Error::NoRecoverySource { .. } => "no-recovery-source",
                        Error::AllCopiesLost => "all-copies-lost",
                        _ => "invalid-input",
                    };
                    caveats.push(SectionCaveat::new(
                        Section::DataLoss,
                        code,
                        error.to_string(),
                    ));
                    None
                }
            };

            caveats.push(SectionCaveat::new(
                Section::Recovery,
                "upstream-unavailable",
                "recovery needs the demand derivation and a surviving loss source",
            ));
            caveats.push(SectionCaveat::new(
                Section::Cost,
                "upstream-unavailable",
                "cost needs demands, a loss source, and a recovery timeline",
            ));
            return LenientEvaluation {
                scenario: scenario.clone(),
                utilization: None,
                loss,
                recovery: None,
                cost: None,
                caveats,
            };
        }
    };
    prepared.evaluate_scenario_lenient(requirements, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};
    use crate::units::{Bytes, TimeDelta};

    fn evaluate_baseline(scope: FailureScope, target: RecoveryTarget) -> Evaluation {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let scenario = FailureScenario::new(scope, target);
        evaluate(&design, &workload, &requirements, &scenario).unwrap()
    }

    #[test]
    fn table_6_object_row() {
        let eval = evaluate_baseline(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        assert_eq!(eval.loss.source_level_name(), Some("split mirror"));
        assert!(eval.recovery.total_time < TimeDelta::from_secs(0.01));
        assert_eq!(eval.loss.worst_loss, TimeDelta::from_hours(12.0));
    }

    #[test]
    fn table_6_array_row() {
        let eval = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        assert_eq!(eval.loss.source_level_name(), Some("tape backup"));
        assert!((eval.loss.worst_loss.as_hours() - 217.0).abs() < 1e-9);
        let hours = eval.recovery.total_time.as_hours();
        assert!(hours > 1.5 && hours < 2.5, "array recovery {hours:.2} h");
    }

    #[test]
    fn table_6_site_row() {
        let eval = evaluate_baseline(FailureScope::Site, RecoveryTarget::Now);
        assert_eq!(eval.loss.source_level_name(), Some("remote vaulting"));
        assert!((eval.loss.worst_loss.as_hours() - 1429.0).abs() < 1e-9);
        let hours = eval.recovery.total_time.as_hours();
        assert!(hours > 25.0 && hours < 27.0, "site recovery {hours:.2} h");
    }

    #[test]
    fn figure_5_penalties_dominate_disasters() {
        let object = evaluate_baseline(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let array = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        let site = evaluate_baseline(FailureScope::Site, RecoveryTarget::Now);

        // Outlays are scenario-independent.
        assert_eq!(object.cost.total_outlays, array.cost.total_outlays);
        assert_eq!(array.cost.total_outlays, site.cost.total_outlays);

        // Penalties dwarf outlays for array and site failures…
        assert!(array.cost.total_penalties() > array.cost.total_outlays * 5.0);
        assert!(site.cost.total_penalties() > site.cost.total_outlays * 50.0);
        // …but not for object failures.
        assert!(object.cost.total_penalties() < object.cost.total_outlays);
        // Ordering of total cost follows failure scope severity.
        assert!(object.cost.total_cost < array.cost.total_cost);
        assert!(array.cost.total_cost < site.cost.total_cost);
    }

    #[test]
    fn lenient_matches_strict_on_clean_inputs() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let strict = evaluate(&design, &workload, &requirements, &scenario).unwrap();
        let lenient = evaluate_lenient(&design, &workload, &requirements, &scenario);
        assert!(lenient.is_complete(), "{:?}", lenient.caveats);
        assert_eq!(
            lenient.utilization.as_ref(),
            Some(strict.utilization.as_ref())
        );
        assert_eq!(lenient.loss.as_ref(), Some(&strict.loss));
        assert_eq!(lenient.recovery.as_ref(), Some(&strict.recovery));
        assert_eq!(lenient.cost.as_ref(), Some(&strict.cost));
    }

    #[test]
    fn cost_only_breakage_keeps_the_other_sections() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        // Fixed outlays near f64::MAX overflow the outlay sum to
        // infinity — individually valid, jointly non-finite, so only the
        // cost table is wrong.
        let mut value = serde_json::to_value(&design).unwrap();
        value["devices"][0]["cost"]["fixed"] = serde_json::json!(1.0e308);
        value["devices"][1]["cost"]["fixed"] = serde_json::json!(1.0e308);
        let broken: crate::hierarchy::StorageDesign = serde_json::from_value(value).unwrap();

        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        assert!(evaluate(&broken, &workload, &requirements, &scenario).is_ok());
        let lenient = evaluate_lenient(&broken, &workload, &requirements, &scenario);
        assert!(lenient.utilization.is_some());
        assert!(lenient.loss.is_some());
        assert!(lenient.recovery.is_some());
        assert!(lenient.cost.is_some());
        let caveat_codes: Vec<&str> = lenient
            .caveats_for(Section::Cost)
            .map(|c| c.code.as_str())
            .collect();
        assert_eq!(caveat_codes, ["non-finite-cost"]);
        assert!(lenient.caveats_for(Section::Utilization).next().is_none());
        assert!(lenient.caveats_for(Section::DataLoss).next().is_none());
        assert!(lenient.caveats_for(Section::Recovery).next().is_none());
    }

    #[test]
    fn lenient_quarantines_unreachable_scenarios() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        // Strip the off-site vault: a site disaster leaves no source.
        let mut value = serde_json::to_value(&design).unwrap();
        value["levels"].as_array_mut().unwrap().truncate(3);
        let on_site: crate::hierarchy::StorageDesign = serde_json::from_value(value).unwrap();

        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let lenient = evaluate_lenient(&on_site, &workload, &requirements, &scenario);
        assert!(lenient.utilization.is_some(), "normal mode is unaffected");
        assert!(lenient.loss.is_none());
        assert!(lenient
            .caveats_for(Section::DataLoss)
            .any(|c| c.code == "no-recovery-source"));
        assert!(lenient
            .caveats_for(Section::Recovery)
            .any(|c| c.code == "upstream-unavailable"));
        assert!(lenient
            .caveats_for(Section::Cost)
            .any(|c| c.code == "upstream-unavailable"));
    }

    #[test]
    fn lenient_never_panics_on_structurally_broken_designs() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let requirements = crate::presets::paper_requirements();
        let mut value = serde_json::to_value(&design).unwrap();
        value["levels"][1]["host"] = serde_json::json!(77);
        let broken: crate::hierarchy::StorageDesign = serde_json::from_value(value).unwrap();

        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let lenient = evaluate_lenient(&broken, &workload, &requirements, &scenario);
        assert!(lenient.utilization.is_none());
        assert!(lenient.cost.is_none());
        assert_eq!(lenient.caveats.len(), 4);
        assert!(lenient.caveats.iter().all(|c| c.code == "invalid-input"));
    }

    #[test]
    fn objectives_are_checked_against_outcomes() {
        let eval = evaluate_baseline(FailureScope::Array, RecoveryTarget::Now);
        let strict = BusinessRequirements::builder()
            .unavailability_penalty_rate(crate::units::MoneyRate::from_dollars_per_hour(1.0))
            .loss_penalty_rate(crate::units::MoneyRate::from_dollars_per_hour(1.0))
            .recovery_point_objective(TimeDelta::from_hours(1.0))
            .build()
            .unwrap();
        assert!(!eval.meets_objectives(&strict));
        assert!(eval.meets_objectives(&crate::presets::paper_requirements()));
    }
}

//! Side-by-side comparison of two designs (a one-row-at-a-time
//! Table 7).
//!
//! Administrators rarely evaluate one design in a vacuum; the question
//! is "what does the change buy me?". [`compare`] evaluates two designs
//! under the same workload, requirements, and scenario list, and reports
//! the per-scenario deltas.

use crate::analysis::prepare::PreparedDesign;
use crate::analysis::Evaluation;
use crate::error::Error;
use crate::failure::FailureScenario;
use crate::hierarchy::StorageDesign;
use crate::requirements::BusinessRequirements;
use crate::units::{Money, TimeDelta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// One scenario's outcomes for both designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The evaluated scenario.
    pub scenario: FailureScenario,
    /// Design A's evaluation.
    pub a: Evaluation,
    /// Design B's evaluation.
    pub b: Evaluation,
}

impl ComparisonRow {
    /// Recovery-time change going from A to B (negative = B faster).
    pub fn recovery_delta(&self) -> TimeDelta {
        self.b.recovery.total_time - self.a.recovery.total_time
    }

    /// Data-loss change going from A to B (negative = B loses less).
    pub fn loss_delta(&self) -> TimeDelta {
        self.b.loss.worst_loss - self.a.loss.worst_loss
    }

    /// Total-cost change going from A to B (negative = B cheaper).
    pub fn cost_delta(&self) -> Money {
        self.b.cost.total_cost - self.a.cost.total_cost
    }
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignComparison {
    /// Design A's name.
    pub name_a: String,
    /// Design B's name.
    pub name_b: String,
    /// Annual-outlay change going from A to B.
    pub outlay_delta: Money,
    /// Per-scenario rows, in input order.
    pub rows: Vec<ComparisonRow>,
}

impl DesignComparison {
    /// Whether B dominates A: no scenario worse on loss, recovery, or
    /// total cost, and at least one strictly better.
    pub fn b_dominates(&self) -> bool {
        let epsilon = TimeDelta::from_secs(1e-6);
        let mut strictly_better = false;
        for row in &self.rows {
            if row.loss_delta() > epsilon
                || row.recovery_delta() > epsilon
                || row.cost_delta() > Money::from_dollars(1e-3)
            {
                return false;
            }
            if row.loss_delta() < -epsilon
                || row.recovery_delta() < -epsilon
                || row.cost_delta() < Money::from_dollars(-1e-3)
            {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Evaluates both designs under every scenario and pairs the outcomes.
///
/// # Errors
///
/// Propagates evaluation errors from either design (an unrecoverable
/// scenario for one design is a comparison-stopping finding; run
/// [`coverage`](super::coverage()) first when that is expected).
pub fn compare(
    design_a: &StorageDesign,
    design_b: &StorageDesign,
    workload: &Workload,
    requirements: &BusinessRequirements,
    scenarios: &[FailureScenario],
) -> Result<DesignComparison, Error> {
    let mut rows = Vec::with_capacity(scenarios.len());
    let mut outlay_delta = Money::ZERO;
    let Some((first, rest)) = scenarios.split_first() else {
        return Ok(DesignComparison {
            name_a: design_a.name().to_string(),
            name_b: design_b.name().to_string(),
            outlay_delta,
            rows,
        });
    };

    // Each design is prepared once and reused across the scenario list.
    // B's preparation is deferred past A's first evaluation so errors
    // surface in the order the scenario-by-scenario loop always used:
    // all of A's first-scenario pipeline before anything of B's.
    let prepared_a = PreparedDesign::prepare(design_a, workload)?;
    let first_a = prepared_a.evaluate_scenario(requirements, first)?;
    let prepared_b = PreparedDesign::prepare(design_b, workload)?;
    let first_b = prepared_b.evaluate_scenario(requirements, first)?;
    outlay_delta = first_b.cost.total_outlays - first_a.cost.total_outlays;
    rows.push(ComparisonRow {
        scenario: first.clone(),
        a: first_a,
        b: first_b,
    });
    for scenario in rest {
        let a = prepared_a.evaluate_scenario(requirements, scenario)?;
        let b = prepared_b.evaluate_scenario(requirements, scenario)?;
        outlay_delta = b.cost.total_outlays - a.cost.total_outlays;
        rows.push(ComparisonRow {
            scenario: scenario.clone(),
            a,
            b,
        });
    }
    Ok(DesignComparison {
        name_a: design_a.name().to_string(),
        name_b: design_b.name().to_string(),
        outlay_delta,
        rows,
    })
}

/// Renders the comparison as a fixed-width table.
pub fn render(comparison: &DesignComparison) -> String {
    let mut table = crate::report::TextTable::new([
        "Scenario",
        &format!("RT: {}", comparison.name_a),
        &format!("RT: {}", comparison.name_b),
        &format!("DL: {}", comparison.name_a),
        &format!("DL: {}", comparison.name_b),
        "Δ total cost",
    ]);
    for row in &comparison.rows {
        table.row([
            row.scenario.scope.name().to_string(),
            crate::report::paper_time(row.a.recovery.total_time),
            crate::report::paper_time(row.b.recovery.total_time),
            format!("{:.0} hr", row.a.loss.worst_loss.as_hours()),
            format!("{:.0} hr", row.b.loss.worst_loss.as_hours()),
            row.cost_delta().to_string(),
        ]);
    }
    format!(
        "{}\noutlay change {} -> {}: {}\n",
        table.render(),
        comparison.name_a,
        comparison.name_b,
        comparison.outlay_delta
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureScope, RecoveryTarget};

    fn run(b: StorageDesign, scenarios: &[FailureScenario]) -> DesignComparison {
        let workload = crate::presets::cello_workload();
        let requirements = crate::presets::paper_requirements();
        compare(
            &crate::presets::baseline_design(),
            &b,
            &workload,
            &requirements,
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn weekly_vault_beats_the_baseline_on_site_disasters() {
        let comparison = run(
            crate::presets::weekly_vault_design(),
            &crate::presets::paper_failure_scenarios(),
        );
        let site = &comparison.rows[2];
        assert!(site.loss_delta() < TimeDelta::from_hours(-1000.0));
        assert!(site.cost_delta() < Money::from_dollars(-50e6));
        // Object and array rows are unchanged on loss.
        assert!(comparison.rows[0].loss_delta().value().abs() < 1.0);
        assert!(comparison.rows[1].loss_delta().value().abs() < 1.0);
        // Weekly vaulting costs slightly more in outlays.
        assert!(comparison.outlay_delta > Money::ZERO);
        // It does NOT dominate: outlays (hence object-row total) rise.
        assert!(!comparison.b_dominates());
    }

    #[test]
    fn a_design_compared_with_itself_changes_nothing() {
        let comparison = run(
            crate::presets::baseline_design(),
            &crate::presets::paper_failure_scenarios(),
        );
        for row in &comparison.rows {
            assert!(row.loss_delta().value().abs() < 1e-9);
            assert!(row.recovery_delta().value().abs() < 1e-9);
        }
        assert!(!comparison.b_dominates(), "no strict improvement anywhere");
        assert!(comparison.outlay_delta.value().abs() < 1e-6);
    }

    #[test]
    fn render_shows_both_columns_and_the_outlay_line() {
        let comparison = run(
            crate::presets::weekly_vault_design(),
            &crate::presets::paper_failure_scenarios(),
        );
        let text = render(&comparison);
        assert!(text.contains("RT: baseline"));
        assert!(text.contains("RT: weekly vault"));
        assert!(text.contains("outlay change"));
    }

    #[test]
    fn comparison_respects_the_scenario_list() {
        let scenarios = vec![FailureScenario::new(
            FailureScope::Array,
            RecoveryTarget::Now,
        )];
        let comparison = run(crate::presets::snapshot_design(), &scenarios);
        assert_eq!(comparison.rows.len(), 1);
        // Snapshots cut outlays versus split mirrors.
        assert!(comparison.outlay_delta < Money::ZERO);
    }
}

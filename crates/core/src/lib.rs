//! # ssdep-core — storage system dependability modeling
//!
//! An analytical framework for evaluating the *dependability* of data
//! storage system designs, reproducing Keeton & Merchant, “A Framework for
//! Evaluating Storage System Dependability” (DSN 2004).
//!
//! A storage system design is a [`hierarchy`] of
//! *data protection techniques* (split mirrors, virtual snapshots,
//! synchronous / asynchronous / batched-asynchronous remote mirroring, tape
//! backup, remote vaulting) layered over *hardware devices* (disk arrays,
//! tape libraries, vault shelves, network links, couriers). Each technique
//! periodically creates, retains, and propagates *retrieval points* (RPs) —
//! consistent versions of the primary data — described by one common
//! parameter set ([`protection::ProtectionParams`]).
//!
//! Given a [`Workload`], [`requirements::BusinessRequirements`], and a
//! [`failure::FailureScenario`], [`analysis::evaluate`] produces an
//! [`analysis::Evaluation`] containing:
//!
//! * normal-mode bandwidth/capacity **utilization** of every device,
//! * worst-case **recent data loss** (how many hours of updates are lost),
//! * worst-case **recovery time** (how long until the application is back),
//! * overall **cost** (annualized outlays per technique + penalties).
//!
//! # Quick example
//!
//! Evaluate the paper's baseline design (split mirror + tape backup +
//! remote vault protecting the *cello* workgroup server) under a primary
//! disk-array failure:
//!
//! ```
//! use ssdep_core::prelude::*;
//!
//! # fn main() -> Result<(), ssdep_core::Error> {
//! let workload = ssdep_core::presets::cello_workload();
//! let design = ssdep_core::presets::baseline_design();
//! let requirements = ssdep_core::presets::paper_requirements();
//! let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
//!
//! let eval = evaluate(&design, &workload, &requirements, &scenario)?;
//! assert!(eval.recovery.total_time > TimeDelta::from_hours(1.0));
//! assert_eq!(eval.loss.source_level_name(), Some("tape backup"));
//! # Ok(())
//! # }
//! ```
//!
//! # Crate layout
//!
//! * [`units`] — strongly typed scalar quantities ([`Bytes`], [`Bandwidth`],
//!   [`TimeDelta`], [`Money`], …).
//! * [`workload`] — the protected data object and its update behaviour.
//! * [`requirements`] — penalty rates and recovery objectives.
//! * [`failure`] — failure scopes, recovery targets, scenarios.
//! * [`protection`] — models of the individual data protection techniques.
//! * [`device`] — hardware device capability, cost, and spare models.
//! * [`hierarchy`] — composing techniques + devices into a design.
//! * [`analysis`] — the composed dependability evaluation.
//! * [`presets`] — ready-made workloads, devices, and designs from the
//!   paper's case study (§4).
//! * [`report`] — plain-text table rendering of evaluation results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod composite;
pub mod demands;
pub mod device;
pub mod diagnose;
pub mod error;
pub mod failure;
pub mod fingerprint;
pub mod hierarchy;
pub mod multi;
pub mod presets;
pub mod protection;
pub mod report;
pub mod requirements;
pub mod units;
pub mod workload;

pub use error::{Error, ErrorClass, RetryPolicy};
pub use units::{Bandwidth, Bytes, Money, MoneyRate, TimeDelta, Utilization};
pub use workload::Workload;

/// Commonly used items, importable with `use ssdep_core::prelude::*`.
pub mod prelude {
    pub use crate::analysis::{evaluate, Evaluation};
    pub use crate::composite::{
        evaluate_composite, evaluate_composite_lenient, CompositeOutcome, CompositeScenario,
    };
    pub use crate::device::{DeviceId, DeviceKind, DeviceSpec};
    pub use crate::diagnose::{
        preflight, preflight_all, preflight_with_composites, repair, Diagnostic, Preflight,
        Severity,
    };
    pub use crate::failure::{FailureScenario, FailureScope, RecoveryTarget};
    pub use crate::hierarchy::{Level, StorageDesign};
    pub use crate::protection::{ProtectionParams, Technique};
    pub use crate::requirements::BusinessRequirements;
    pub use crate::units::{Bandwidth, Bytes, Money, MoneyRate, TimeDelta, Utilization};
    pub use crate::workload::Workload;
}

//! Composing techniques and devices into a storage system design (§3.2).
//!
//! A [`StorageDesign`] is a *hierarchy* of [`Level`]s: level 0 is the
//! primary copy, and each higher-numbered level receives retrieval points
//! from the level before it, typically storing less frequent RPs on
//! larger, slower, or more distant media. Each level names the device
//! hosting its RPs and the interconnects that carry propagations into it.
//!
//! ```
//! use ssdep_core::prelude::*;
//! use ssdep_core::device::{CostModel, SpareSpec};
//! use ssdep_core::protection::{PrimaryCopy, SplitMirror};
//!
//! # fn main() -> Result<(), ssdep_core::Error> {
//! let mut builder = StorageDesign::builder("mirrored workgroup server");
//! let array = builder.add_device(
//!     DeviceSpec::builder("array", DeviceKind::disk_array(2.0))
//!         .capacity_slots(256, Bytes::from_gib(73.0))
//!         .bandwidth_slots(256, Bandwidth::from_mib_per_sec(25.0))
//!         .enclosure_bandwidth(Bandwidth::from_mib_per_sec(512.0))
//!         .build()?,
//! )?;
//! builder.add_level(Level::new("primary", Technique::PrimaryCopy(PrimaryCopy::new()), array));
//! builder.add_level(Level::new(
//!     "split mirror",
//!     Technique::SplitMirror(SplitMirror::new(
//!         ProtectionParams::builder()
//!             .accumulation_window(TimeDelta::from_hours(12.0))
//!             .propagation_window(TimeDelta::ZERO)
//!             .retention_count(4)
//!             .build()?,
//!     )),
//!     array,
//! ));
//! let design = builder.build()?;
//! assert_eq!(design.levels().len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::demands::{DemandSet, LevelDemands};
use crate::device::{DeviceId, DeviceSpec};
use crate::error::Error;
use crate::failure::{FailureScope, Location};
use crate::protection::{LevelContext, Technique};
use crate::units::TimeDelta;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One level of the protection hierarchy: a technique instance, the
/// device hosting its RPs, and the transports feeding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Level {
    name: String,
    technique: Technique,
    host: DeviceId,
    transports: Vec<DeviceId>,
}

impl Level {
    /// Creates a level with no transports (propagation within a site or
    /// a shared SAN that is not modeled as a constraint).
    pub fn new(name: impl Into<String>, technique: Technique, host: DeviceId) -> Level {
        Level {
            name: name.into(),
            technique,
            host,
            transports: Vec::new(),
        }
    }

    /// Adds interconnect devices carrying propagations into this level
    /// (WAN links, couriers, a modeled SAN).
    pub fn with_transports(mut self, transports: impl IntoIterator<Item = DeviceId>) -> Level {
        self.transports.extend(transports);
        self
    }

    /// The level's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technique running at this level.
    pub fn technique(&self) -> &Technique {
        &self.technique
    }

    /// The device hosting this level's RPs.
    pub fn host(&self) -> DeviceId {
        self.host
    }

    /// The interconnects feeding this level.
    pub fn transports(&self) -> &[DeviceId] {
        &self.transports
    }
}

/// A standby facility that can host replacement devices after a disaster
/// destroys the primary site (the paper's "remote shared recovery
/// facility").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySite {
    /// Where the facility is.
    pub location: Location,
    /// Time to drain, scrub, and provision its shared resources.
    pub provisioning_time: TimeDelta,
    /// Annual cost as a fraction of the covered devices' outlays.
    pub cost_factor: f64,
}

/// A complete storage system design: devices plus the protection
/// hierarchy over them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageDesign {
    name: String,
    devices: Vec<DeviceSpec>,
    levels: Vec<Level>,
    recovery_site: Option<RecoverySite>,
}

impl StorageDesign {
    /// Starts building a design named `name`.
    pub fn builder(name: impl Into<String>) -> StorageDesignBuilder {
        StorageDesignBuilder {
            name: name.into(),
            devices: Vec::new(),
            names: BTreeMap::new(),
            levels: Vec::new(),
            recovery_site: None,
        }
    }

    /// The design's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered devices, indexable by [`DeviceId`].
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Looks a device up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design's builder.
    pub fn device(&self, id: DeviceId) -> &DeviceSpec {
        &self.devices[id.0]
    }

    /// Iterates every registered device id, in registration order.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// Finds a device id by name.
    pub fn device_id(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name() == name)
            .map(DeviceId)
    }

    /// The protection hierarchy, level 0 first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The standby recovery facility, if the design has one.
    pub fn recovery_site(&self) -> Option<&RecoverySite> {
        self.recovery_site.as_ref()
    }

    /// Where the primary copy lives.
    pub fn primary_location(&self) -> &Location {
        self.device(self.levels[0].host()).location()
    }

    /// Whether a device is destroyed under the given failure scope.
    pub fn device_destroyed(&self, id: DeviceId, scope: &FailureScope) -> bool {
        match scope {
            FailureScope::Array => id == self.levels[0].host(),
            _ => scope.destroys_location(self.device(id).location(), self.primary_location()),
        }
    }

    /// Whether a level's RPs are unavailable under the given failure
    /// scope (its host destroyed, or the level itself degraded).
    pub fn level_destroyed(&self, level: usize, scope: &FailureScope) -> bool {
        if let FailureScope::ProtectionLevel { level: degraded } = scope {
            return level == *degraded;
        }
        self.device_destroyed(self.levels[level].host(), scope)
    }

    /// Whether a level can serve a recovery under the full scenario:
    /// destroyed by the scope, or listed among the scenario's
    /// already-degraded levels.
    pub fn level_unavailable(
        &self,
        level: usize,
        scenario: &crate::failure::FailureScenario,
    ) -> bool {
        scenario.degraded_levels.contains(&level) || self.level_destroyed(level, &scenario.scope)
    }

    /// Converts every level's policy into device demands (§3.2.3).
    ///
    /// # Errors
    ///
    /// Propagates technique errors (e.g. a mirror level without a
    /// source).
    pub fn demands(&self, workload: &Workload) -> Result<DemandSet, Error> {
        let mut set = DemandSet::new();
        for (index, level) in self.levels.iter().enumerate() {
            let source = index.checked_sub(1).map(|i| self.levels[i].host());
            let prev_retention_window = index.checked_sub(1).and_then(|i| {
                self.levels[i]
                    .technique()
                    .params()
                    .map(|p| p.retention_window())
            });
            let ctx = LevelContext {
                workload,
                level_index: index,
                source_host: source,
                host: level.host(),
                transports: level.transports(),
                prev_retention_window,
            };
            let contributions = level.technique().demands(&ctx)?;
            set.push_level(LevelDemands {
                level: index,
                level_name: level.name().to_string(),
                contributions,
            });
        }
        Ok(set)
    }

    /// Re-runs every check the builder applies, plus per-device and
    /// per-technique parameter validation.
    ///
    /// Deserialized designs bypass the builder entirely, so a JSON spec
    /// can carry values [`StorageDesign::builder`] would have rejected.
    /// This validates such a design after the fact, returning the *first*
    /// violation; [`crate::diagnose::preflight`] reports all of them.
    ///
    /// # Errors
    ///
    /// As [`StorageDesignBuilder::build`], plus [`Error::DuplicateDevice`]
    /// for repeated device names and [`Error::InvalidParameter`] for
    /// invalid device or protection parameters.
    pub fn validate(&self) -> Result<(), Error> {
        validate_structure(&self.devices, &self.levels, self.recovery_site.as_ref())?;
        let mut seen = BTreeMap::new();
        for (index, spec) in self.devices.iter().enumerate() {
            if seen.insert(spec.name().to_string(), index).is_some() {
                return Err(Error::DuplicateDevice {
                    name: spec.name().to_string(),
                });
            }
            spec.validate()?;
        }
        for level in &self.levels {
            level.technique().validate()?;
        }
        Ok(())
    }

    /// Assembles a design without builder validation, for the repair
    /// pass: a partially repaired design must remain representable even
    /// while unfixable diagnostics are still present.
    pub(crate) fn from_parts(
        name: String,
        devices: Vec<DeviceSpec>,
        levels: Vec<Level>,
        recovery_site: Option<RecoverySite>,
    ) -> StorageDesign {
        StorageDesign {
            name,
            devices,
            levels,
            recovery_site,
        }
    }

    /// Checks the paper's soft composition conventions (§3.2.1) and
    /// returns a human-readable warning for each violation. These are
    /// advisory: designs violating them are evaluable but usually
    /// misconfigured.
    pub fn convention_warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        let with_params: Vec<(usize, &Level, &crate::protection::ProtectionParams)> = self
            .levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.technique().params().map(|p| (i, l, p)))
            .collect();
        for pair in with_params.windows(2) {
            let (i, upper, up) = pair[0];
            let (j, lower, low) = pair[1];
            if low.accumulation_window() < up.cycle_period() {
                warnings.push(format!(
                    "level {j} ({}) accumulates faster than level {i} ({}) cycles \
                     (accW {} < cyclePer {})",
                    lower.name(),
                    upper.name(),
                    low.accumulation_window(),
                    up.cycle_period(),
                ));
            }
            if low.retention_count() < up.retention_count() {
                warnings.push(format!(
                    "level {j} ({}) retains fewer RPs than level {i} ({}) ({} < {})",
                    lower.name(),
                    upper.name(),
                    low.retention_count(),
                    up.retention_count(),
                ));
            }
            if up.hold_window() > low.retention_window() {
                warnings.push(format!(
                    "level {i} ({}) holds RPs longer than level {j} ({}) retains them \
                     (holdW {} > retW {})",
                    upper.name(),
                    lower.name(),
                    up.hold_window(),
                    low.retention_window(),
                ));
            }
        }
        warnings
    }
}

/// Incremental builder for [`StorageDesign`]; see
/// [`StorageDesign::builder`].
#[derive(Debug, Clone)]
pub struct StorageDesignBuilder {
    name: String,
    devices: Vec<DeviceSpec>,
    names: BTreeMap<String, DeviceId>,
    levels: Vec<Level>,
    recovery_site: Option<RecoverySite>,
}

impl StorageDesignBuilder {
    /// Registers a device and returns its id for use in levels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateDevice`] when a device of the same name
    /// was already registered.
    pub fn add_device(&mut self, spec: DeviceSpec) -> Result<DeviceId, Error> {
        if self.names.contains_key(spec.name()) {
            return Err(Error::DuplicateDevice {
                name: spec.name().to_string(),
            });
        }
        let id = DeviceId(self.devices.len());
        self.names.insert(spec.name().to_string(), id);
        self.devices.push(spec);
        Ok(id)
    }

    /// Appends the next level of the hierarchy (call in level order,
    /// primary copy first).
    pub fn add_level(&mut self, level: Level) -> &mut Self {
        self.levels.push(level);
        self
    }

    /// Declares a standby recovery facility for disasters that destroy
    /// the primary site.
    pub fn recovery_site(&mut self, site: RecoverySite) -> &mut Self {
        self.recovery_site = Some(site);
        self
    }

    /// Validates the structure and builds the design.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InconsistentHierarchy`] when there is no level 0,
    /// level 0 is not a [`Technique::PrimaryCopy`], a primary copy
    /// appears above level 0, or a level's host is not a storage device;
    /// [`Error::UnknownDevice`] when a level references an unregistered
    /// device id; [`Error::InvalidParameter`] for a bad recovery-site
    /// configuration.
    pub fn build(self) -> Result<StorageDesign, Error> {
        validate_structure(&self.devices, &self.levels, self.recovery_site.as_ref())?;
        Ok(StorageDesign {
            name: self.name,
            devices: self.devices,
            levels: self.levels,
            recovery_site: self.recovery_site,
        })
    }
}

/// The structural checks shared by [`StorageDesignBuilder::build`] and
/// [`StorageDesign::validate`]: hierarchy composition rules, device
/// references, device roles, and recovery-site parameters.
fn validate_structure(
    devices: &[DeviceSpec],
    levels: &[Level],
    recovery_site: Option<&RecoverySite>,
) -> Result<(), Error> {
    if levels.is_empty() {
        return Err(Error::InconsistentHierarchy {
            level: 0,
            reason: "a design needs at least the primary copy level".into(),
        });
    }
    for (index, level) in levels.iter().enumerate() {
        let is_primary = matches!(level.technique(), Technique::PrimaryCopy(_));
        if (index == 0) != is_primary {
            return Err(Error::InconsistentHierarchy {
                level: index,
                reason: if index == 0 {
                    "level 0 must be the primary copy".into()
                } else {
                    "the primary copy may only appear at level 0".into()
                },
            });
        }
        for id in std::iter::once(level.host()).chain(level.transports().iter().copied()) {
            if id.0 >= devices.len() {
                return Err(Error::UnknownDevice {
                    name: format!("{id}"),
                });
            }
        }
        if !devices[level.host().0].kind().is_storage() {
            return Err(Error::InconsistentHierarchy {
                level: index,
                reason: format!(
                    "host `{}` is a {}, not a storage device",
                    devices[level.host().0].name(),
                    devices[level.host().0].kind()
                ),
            });
        }
        for &t in level.transports() {
            if !devices[t.0].kind().is_transport() {
                return Err(Error::InconsistentHierarchy {
                    level: index,
                    reason: format!(
                        "transport `{}` is a {}, not an interconnect",
                        devices[t.0].name(),
                        devices[t.0].kind()
                    ),
                });
            }
        }
    }
    if let Some(site) = recovery_site {
        if !(site.provisioning_time.value() >= 0.0 && site.provisioning_time.is_finite()) {
            return Err(Error::invalid(
                "recoverySite.provisioningTime",
                "must be non-negative and finite",
            ));
        }
        if !(site.cost_factor >= 0.0 && site.cost_factor.is_finite()) {
            return Err(Error::invalid(
                "recoverySite.costFactor",
                "must be non-negative and finite",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureScope;
    use crate::units::Bytes;

    #[test]
    fn baseline_design_builds_and_exposes_structure() {
        let design = crate::presets::baseline_design();
        assert_eq!(design.levels().len(), 4);
        assert_eq!(design.levels()[0].name(), "primary copy");
        assert_eq!(design.levels()[3].name(), "remote vaulting");
        assert!(design.device_id("primary array").is_some());
        assert!(design.device_id("nonexistent").is_none());
        assert!(
            design.convention_warnings().is_empty(),
            "{:?}",
            design.convention_warnings()
        );
    }

    #[test]
    fn array_scope_destroys_exactly_the_primary_host_levels() {
        let design = crate::presets::baseline_design();
        let scope = FailureScope::Array;
        assert!(design.level_destroyed(0, &scope));
        assert!(
            design.level_destroyed(1, &scope),
            "split mirror shares the array"
        );
        assert!(!design.level_destroyed(2, &scope), "tape library survives");
        assert!(!design.level_destroyed(3, &scope), "vault survives");
    }

    #[test]
    fn site_scope_destroys_colocated_devices_only() {
        let design = crate::presets::baseline_design();
        let scope = FailureScope::Site;
        assert!(design.level_destroyed(0, &scope));
        assert!(design.level_destroyed(2, &scope), "tape library is on site");
        assert!(!design.level_destroyed(3, &scope), "vault is off site");
    }

    #[test]
    fn degraded_scope_marks_one_level() {
        let design = crate::presets::baseline_design();
        let scope = FailureScope::ProtectionLevel { level: 2 };
        assert!(!design.level_destroyed(0, &scope));
        assert!(design.level_destroyed(2, &scope));
    }

    #[test]
    fn empty_design_is_rejected() {
        let err = StorageDesign::builder("empty").build().unwrap_err();
        assert!(matches!(err, Error::InconsistentHierarchy { .. }));
    }

    #[test]
    fn primary_must_be_level_zero_only() {
        use crate::device::{DeviceKind, DeviceSpec};
        use crate::protection::PrimaryCopy;

        let mut builder = StorageDesign::builder("bad");
        let array = builder
            .add_device(
                DeviceSpec::builder("a", DeviceKind::disk_array(1.0))
                    .capacity_slots(1, Bytes::from_gib(100.0))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        builder.add_level(Level::new(
            "p1",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            array,
        ));
        builder.add_level(Level::new(
            "p2",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            array,
        ));
        let err = builder.build().unwrap_err();
        assert!(err.to_string().contains("level 0"));
    }

    #[test]
    fn duplicate_device_names_are_rejected() {
        use crate::device::{DeviceKind, DeviceSpec};
        let mut builder = StorageDesign::builder("dup");
        let spec = DeviceSpec::builder("a", DeviceKind::Courier)
            .build()
            .unwrap();
        builder.add_device(spec.clone()).unwrap();
        let err = builder.add_device(spec).unwrap_err();
        assert!(matches!(err, Error::DuplicateDevice { .. }));
    }

    #[test]
    fn transport_host_role_mismatch_is_rejected() {
        use crate::device::{DeviceKind, DeviceSpec};
        use crate::protection::PrimaryCopy;
        let mut builder = StorageDesign::builder("bad roles");
        let courier = builder
            .add_device(
                DeviceSpec::builder("courier", DeviceKind::Courier)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        builder.add_level(Level::new(
            "primary",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            courier,
        ));
        let err = builder.build().unwrap_err();
        assert!(err.to_string().contains("not a storage device"));
    }

    #[test]
    fn demands_collect_per_level() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        assert_eq!(demands.levels().count(), 4);
        let array = design.device_id("primary array").unwrap();
        // Primary + split mirror + backup reads all land on the array.
        assert!(demands.bandwidth_on(array).value() > 0.0);
        assert!(demands.capacity_on(array) > workload.data_capacity());
    }

    #[test]
    fn serde_roundtrip() {
        let design = crate::presets::baseline_design();
        let json = serde_json::to_string(&design).unwrap();
        let back: StorageDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(design, back);
    }
}

/// Structural fingerprinting (cache keys) — lives here because the
/// fields are private. Every serialized field is visited in declaration
/// order; see `crate::fingerprint` for the stability contract.
mod fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for StorageDesign {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.name.fingerprint_into(hasher);
            self.devices.fingerprint_into(hasher);
            self.levels.fingerprint_into(hasher);
            self.recovery_site.fingerprint_into(hasher);
        }
    }

    impl Fingerprintable for Level {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.name.fingerprint_into(hasher);
            self.technique.fingerprint_into(hasher);
            self.host.fingerprint_into(hasher);
            self.transports.fingerprint_into(hasher);
        }
    }

    impl Fingerprintable for RecoverySite {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.location.fingerprint_into(hasher);
            self.provisioning_time.fingerprint_into(hasher);
            self.cost_factor.fingerprint_into(hasher);
        }
    }
}

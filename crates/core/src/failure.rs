//! Failure scenario inputs (§3.1.3): what failed, and what point in time
//! recovery should restore.
//!
//! Following the business-continuity practice the paper adopts, the
//! framework evaluates dependability *under a specified failure scenario*
//! rather than integrating over failure frequencies. (Frequency-weighted
//! evaluation over several scenarios is available as an extension in
//! [`crate::analysis::expected`].)

use crate::units::{Bytes, TimeDelta};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The physical placement of a device, used to decide which devices a
/// given [`FailureScope`] destroys.
///
/// Placement is hierarchical: a *building* sits on a *site*, which sits in
/// a geographic *region*. Two devices share a building only if they also
/// share the site and region, and so on.
///
/// ```
/// use ssdep_core::failure::Location;
///
/// let primary = Location::new("us-west", "palo-alto", "bldg-1");
/// let vault = Location::new("us-east", "newark", "vault-A");
/// assert!(!primary.same_region(&vault));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    region: String,
    site: String,
    building: String,
}

impl Location {
    /// Creates a location from its region / site / building coordinates.
    pub fn new(
        region: impl Into<String>,
        site: impl Into<String>,
        building: impl Into<String>,
    ) -> Location {
        Location {
            region: region.into(),
            site: site.into(),
            building: building.into(),
        }
    }

    /// The geographic region name.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The building name.
    pub fn building(&self) -> &str {
        &self.building
    }

    /// `true` when both locations are in the same region.
    pub fn same_region(&self, other: &Location) -> bool {
        self.region == other.region
    }

    /// `true` when both locations are on the same site (implies the same
    /// region).
    pub fn same_site(&self, other: &Location) -> bool {
        self.same_region(other) && self.site == other.site
    }

    /// `true` when both locations are in the same building (implies the
    /// same site).
    pub fn same_building(&self, other: &Location) -> bool {
        self.same_site(other) && self.building == other.building
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.region, self.site, self.building)
    }
}

/// The set of data copies made unavailable by the hypothesized failure
/// (`failScope`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FailureScope {
    /// Loss or corruption of (part of) the data object itself — a user
    /// mistake or software error — with **no** hardware failure. `size` is
    /// the amount of data that must be rolled back.
    DataObject {
        /// The size of the corrupted object.
        size: Bytes,
    },
    /// Failure of the primary disk array (the devices hosting level 0).
    Array,
    /// Loss of every device in the primary copy's building.
    Building,
    /// Loss of every device on the primary copy's site.
    Site,
    /// Loss of every device in the primary copy's geographic region.
    Region,
    /// Extension (paper §5 "degraded mode"): the devices of one protection
    /// level are out of service, with the primary copy intact.
    ProtectionLevel {
        /// The zero-based hierarchy level whose devices failed.
        level: usize,
    },
}

impl FailureScope {
    /// Whether a device at `device_location` is destroyed by this scope,
    /// given the primary copy's location.
    ///
    /// [`FailureScope::Array`] is special-cased by the hierarchy (it
    /// destroys exactly the level-0 host devices), as is
    /// [`FailureScope::ProtectionLevel`]; both return `false` here.
    pub fn destroys_location(&self, device_location: &Location, primary: &Location) -> bool {
        match self {
            FailureScope::DataObject { .. }
            | FailureScope::Array
            | FailureScope::ProtectionLevel { .. } => false,
            FailureScope::Building => device_location.same_building(primary),
            FailureScope::Site => device_location.same_site(primary),
            FailureScope::Region => device_location.same_region(primary),
        }
    }

    /// Whether the primary copy itself is lost under this scope.
    pub fn destroys_primary(&self) -> bool {
        !matches!(
            self,
            FailureScope::DataObject { .. } | FailureScope::ProtectionLevel { .. }
        )
    }

    /// A short human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            FailureScope::DataObject { .. } => "object",
            FailureScope::Array => "array",
            FailureScope::Building => "building",
            FailureScope::Site => "site",
            FailureScope::Region => "region",
            FailureScope::ProtectionLevel { .. } => "protection level",
        }
    }
}

impl fmt::Display for FailureScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureScope::DataObject { size } => write!(f, "object ({size})"),
            FailureScope::ProtectionLevel { level } => {
                write!(f, "protection level {level} degraded")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// The point in time to which restoration is requested (`recTargetTime`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryTarget {
    /// Restore to the moment just before the failure (the usual case).
    Now,
    /// Restore to a version from `age` before the failure — e.g. "the
    /// version from 24 hours ago", for recovering from a user error or a
    /// virus discovered after the fact.
    Before {
        /// How far before the failure the desired version lies.
        age: TimeDelta,
    },
}

impl RecoveryTarget {
    /// How far in the past the requested version lies (zero for
    /// [`RecoveryTarget::Now`]).
    pub fn age(self) -> TimeDelta {
        match self {
            RecoveryTarget::Now => TimeDelta::ZERO,
            RecoveryTarget::Before { age } => age,
        }
    }
}

impl fmt::Display for RecoveryTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryTarget::Now => f.write_str("now"),
            RecoveryTarget::Before { age } => write!(f, "{age} before the failure"),
        }
    }
}

/// A complete failure scenario: the scope of what failed plus the recovery
/// target time, and optionally protection levels that were already out of
/// service when the failure struck (degraded-mode evaluation, paper §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    /// The set of failed devices / data copies.
    pub scope: FailureScope,
    /// The point in time restoration should reach.
    pub target: RecoveryTarget,
    /// Hierarchy levels unavailable *before* the failure (maintenance,
    /// broken technique) — they cannot serve as recovery sources.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub degraded_levels: Vec<usize>,
}

impl FailureScenario {
    /// Creates a scenario from a scope and recovery target.
    pub fn new(scope: FailureScope, target: RecoveryTarget) -> FailureScenario {
        FailureScenario {
            scope,
            target,
            degraded_levels: Vec::new(),
        }
    }

    /// Marks a protection level as already out of service when the
    /// failure strikes (degraded-mode evaluation).
    #[must_use]
    pub fn with_degraded_level(mut self, level: usize) -> FailureScenario {
        if !self.degraded_levels.contains(&level) {
            self.degraded_levels.push(level);
        }
        self
    }

    /// The amount of data the recovery must restore: the corrupted object
    /// for [`FailureScope::DataObject`], the whole dataset otherwise.
    pub fn recovery_size(&self, data_capacity: Bytes) -> Bytes {
        match self.scope {
            FailureScope::DataObject { size } => size.min(data_capacity),
            _ => data_capacity,
        }
    }
}

impl fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failure, recover to {}", self.scope, self.target)?;
        if !self.degraded_levels.is_empty() {
            write!(f, " (levels {:?} already degraded)", self.degraded_levels)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn primary() -> Location {
        Location::new("us-west", "palo-alto", "bldg-1")
    }

    #[test]
    fn location_hierarchy_is_nested() {
        let a = primary();
        let same_building = Location::new("us-west", "palo-alto", "bldg-1");
        let same_site = Location::new("us-west", "palo-alto", "bldg-2");
        let same_region = Location::new("us-west", "san-jose", "bldg-1");
        let elsewhere = Location::new("us-east", "palo-alto", "bldg-1");

        assert!(a.same_building(&same_building));
        assert!(!a.same_building(&same_site));
        assert!(a.same_site(&same_site));
        assert!(!a.same_site(&same_region));
        assert!(a.same_region(&same_region));
        // Same site name in a different region is a different site.
        assert!(!a.same_site(&elsewhere));
        assert!(!a.same_region(&elsewhere));
    }

    #[test]
    fn scope_destruction_widens_with_scope() {
        let p = primary();
        let same_site = Location::new("us-west", "palo-alto", "bldg-2");
        let same_region = Location::new("us-west", "san-jose", "bldg-9");

        assert!(!FailureScope::Building.destroys_location(&same_site, &p));
        assert!(FailureScope::Site.destroys_location(&same_site, &p));
        assert!(!FailureScope::Site.destroys_location(&same_region, &p));
        assert!(FailureScope::Region.destroys_location(&same_region, &p));
    }

    #[test]
    fn object_scope_destroys_no_hardware_but_array_destroys_primary() {
        let p = primary();
        let scope = FailureScope::DataObject {
            size: Bytes::from_mib(1.0),
        };
        assert!(!scope.destroys_location(&p, &p));
        assert!(!scope.destroys_primary());
        assert!(FailureScope::Array.destroys_primary());
        assert!(!FailureScope::ProtectionLevel { level: 1 }.destroys_primary());
    }

    #[test]
    fn recovery_size_depends_on_scope() {
        let cap = Bytes::from_gib(1360.0);
        let object = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        assert_eq!(object.recovery_size(cap), Bytes::from_mib(1.0));

        let site = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        assert_eq!(site.recovery_size(cap), cap);
    }

    #[test]
    fn object_size_clamped_to_dataset() {
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_gib(5000.0),
            },
            RecoveryTarget::Now,
        );
        assert_eq!(
            scenario.recovery_size(Bytes::from_gib(10.0)),
            Bytes::from_gib(10.0)
        );
    }

    #[test]
    fn target_age() {
        assert_eq!(RecoveryTarget::Now.age(), TimeDelta::ZERO);
        let before = RecoveryTarget::Before {
            age: TimeDelta::from_hours(24.0),
        };
        assert_eq!(before.age(), TimeDelta::from_hours(24.0));
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(FailureScope::Site.to_string(), "site");
        let s = FailureScenario::new(
            FailureScope::Array,
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let text = s.to_string();
        assert!(text.contains("array"));
        assert!(text.contains("before the failure"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FailureScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Scenarios without the field (older specs) still parse.
        assert!(!json.contains("degraded_levels"));
    }

    #[test]
    fn degraded_levels_accumulate_without_duplicates() {
        let s = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now)
            .with_degraded_level(2)
            .with_degraded_level(2)
            .with_degraded_level(3);
        assert_eq!(s.degraded_levels, vec![2, 3]);
        assert!(s.to_string().contains("already degraded"));
    }
}

mod location_fingerprints {
    use super::*;
    use crate::fingerprint::{FingerprintHasher, Fingerprintable};

    impl Fingerprintable for Location {
        fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
            self.region.fingerprint_into(hasher);
            self.site.fingerprint_into(hasher);
            self.building.fingerprint_into(hasher);
        }
    }
}

//! Structural fingerprinting for cache keys.
//!
//! [`FingerprintHasher`] is an FNV-1a stream over the primitive values
//! of a model object, visited in declaration order. It replaces
//! serde-JSON serialization on the evaluation-cache key path: hashing
//! the fields directly skips the string formatting, heap allocation,
//! and float-to-decimal conversion that dominated `EvalEngine::prepare`
//! at microsecond-scale work items.
//!
//! Stability contract (see DESIGN.md §16):
//!
//! - every serde-serialized field is fed to the hasher, in the order the
//!   fields are declared (which is the order serde emits them);
//! - enum variants write a one-byte discriminant tag before their
//!   payload, `Option` writes a presence byte, and collections/strings
//!   write their length first, so concatenation ambiguities cannot
//!   alias two different structures;
//! - floats hash their IEEE 754 bit pattern (`to_bits`), so `-0.0` and
//!   `0.0` are *distinct* keys (serde-JSON also distinguishes them)
//!   and every NaN pattern hashes consistently with itself.
//!
//! Adding, removing, reordering, or renaming a serialized field — or
//! reordering enum variants — is fingerprint-breaking: old and new
//! processes will disagree on keys. That is fine for the in-process
//! memo cache (fingerprints are never persisted), but any future
//! on-disk cache must version the hash. A test in `crates/opt` pins the
//! structural fingerprint against the serde-JSON fallback over the
//! preset corpus and a randomized design-space sample so a missed field
//! shows up as a collision between distinct designs.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An FNV-1a accumulator with framing helpers for structured values.
///
/// Also counts the bytes hashed: the count serves as the cache-weight
/// estimate for the byte-budgeted memo cache (proportional to the
/// structural size of the design, like the JSON length it replaces).
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u64,
    bytes: usize,
}

impl Default for FingerprintHasher {
    fn default() -> FingerprintHasher {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> FingerprintHasher {
        FingerprintHasher {
            state: FNV_OFFSET,
            bytes: 0,
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Total bytes hashed so far (the cache-weight estimate).
    pub fn bytes_hashed(&self) -> usize {
        self.bytes
    }

    /// Feeds raw bytes through FNV-1a.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for byte in bytes {
            state ^= u64::from(*byte);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
        self.bytes += bytes.len();
    }

    /// Hashes one byte — used for enum discriminants and `Option` tags.
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Hashes a `u32` (little-endian).
    pub fn write_u32(&mut self, value: u32) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Hashes a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Hashes a `usize` widened to `u64`, for collection lengths.
    pub fn write_len(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Hashes an `f64` by IEEE 754 bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Hashes a `bool` as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(u8::from(value));
    }

    /// Hashes a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// cannot alias.
    pub fn write_str(&mut self, value: &str) {
        self.write_len(value.len());
        self.write_bytes(value.as_bytes());
    }
}

/// A model value that can feed its structure to a [`FingerprintHasher`].
///
/// Implementations live in each type's own module (the fields are
/// private) and must visit every serde-serialized field in declaration
/// order — see the module docs for the stability contract.
pub trait Fingerprintable {
    /// Feeds this value's serialized fields to the hasher.
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher);
}

impl<T: Fingerprintable + ?Sized> Fingerprintable for &T {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        (**self).fingerprint_into(hasher);
    }
}

impl<T: Fingerprintable> Fingerprintable for Option<T> {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        match self {
            None => hasher.write_u8(0),
            Some(value) => {
                hasher.write_u8(1);
                value.fingerprint_into(hasher);
            }
        }
    }
}

impl<T: Fingerprintable> Fingerprintable for Vec<T> {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_len(self.len());
        for item in self {
            item.fingerprint_into(hasher);
        }
    }
}

impl Fingerprintable for f64 {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_f64(*self);
    }
}

impl Fingerprintable for u32 {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_u32(*self);
    }
}

impl Fingerprintable for str {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_str(self);
    }
}

impl Fingerprintable for String {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_str(self);
    }
}

macro_rules! unit_fingerprint {
    ($($unit:ty),* $(,)?) => {
        $(impl Fingerprintable for $unit {
            fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
                hasher.write_f64(self.value());
            }
        })*
    };
}

unit_fingerprint!(
    crate::units::TimeDelta,
    crate::units::Bytes,
    crate::units::Bandwidth,
    crate::units::Money,
    crate::units::MoneyRate,
);

impl Fingerprintable for crate::units::Utilization {
    fn fingerprint_into(&self, hasher: &mut FingerprintHasher) {
        hasher.write_f64(self.as_fraction());
    }
}

/// Hashes a `(design, workload)` pair into the evaluation-cache key and
/// its byte weight, with a domain-separating tag between the two so a
/// field sliding from one side to the other cannot alias.
pub fn fingerprint_pair<D: Fingerprintable, W: Fingerprintable>(
    design: &D,
    workload: &W,
) -> (u64, usize) {
    let mut hasher = FingerprintHasher::new();
    design.fingerprint_into(&mut hasher);
    hasher.write_u8(0x1f);
    workload.fingerprint_into(&mut hasher);
    (hasher.finish(), hasher.bytes_hashed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_separates_adjacent_strings() {
        let mut ab_c = FingerprintHasher::new();
        "ab".fingerprint_into(&mut ab_c);
        "c".fingerprint_into(&mut ab_c);
        let mut a_bc = FingerprintHasher::new();
        "a".fingerprint_into(&mut a_bc);
        "bc".fingerprint_into(&mut a_bc);
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn option_tags_disambiguate_presence() {
        let mut none_then_one = FingerprintHasher::new();
        Option::<u32>::None.fingerprint_into(&mut none_then_one);
        1u32.fingerprint_into(&mut none_then_one);
        let mut some_one = FingerprintHasher::new();
        Some(1u32).fingerprint_into(&mut some_one);
        // Same payload bytes either way; the tags must still separate
        // "absent, then a bare 1" from "present 1".
        assert_ne!(none_then_one.finish(), some_one.finish());
    }

    #[test]
    fn negative_zero_is_a_distinct_key() {
        let mut pos = FingerprintHasher::new();
        0.0f64.fingerprint_into(&mut pos);
        let mut neg = FingerprintHasher::new();
        (-0.0f64).fingerprint_into(&mut neg);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn bytes_hashed_tracks_every_write() {
        let mut hasher = FingerprintHasher::new();
        hasher.write_u8(7);
        hasher.write_f64(1.5);
        "abc".fingerprint_into(&mut hasher);
        // 1 + 8 + (8 len prefix + 3 payload)
        assert_eq!(hasher.bytes_hashed(), 20);
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        let run = || {
            let mut hasher = FingerprintHasher::new();
            hasher.write_str("design");
            hasher.write_f64(3.25);
            hasher.write_u32(9);
            hasher.finish()
        };
        assert_eq!(run(), run());
    }
}

//! Preflight diagnostics and auto-repair over a design/workload/scenario
//! triple.
//!
//! The evaluation pipeline is fail-fast: the first [`Error`] aborts the
//! whole run. That is the right behaviour *inside* an evaluation, but the
//! wrong interface for exploring many imperfect candidate designs (§3,
//! §5) — a misconfigured spec should come back as *data to diagnose*, not
//! as one opaque error per run. [`preflight`] therefore runs **every**
//! cross-layer invariant check and accumulates the violations into
//! [`Diagnostic`]s with stable machine-readable codes (`D001`…),
//! severities, a dotted parameter path, and a concrete suggested fix.
//! [`repair`] then applies the safe subset of those suggestions (clamp
//! windows, drop dangling references, resize spare pools) and returns the
//! fixed design plus the list of applied repairs; its output carries no
//! fixable diagnostics on a second preflight.
//!
//! The full code catalog, with the paper section justifying each check,
//! lives in `DESIGN.md` §10.

use crate::analysis::{data_loss, recovery, utilization_from_demands};
use crate::composite::CompositeScenario;
use crate::demands::DemandSet;
use crate::device::{DeviceSpec, SpareSpec};
use crate::error::Error;
use crate::failure::{FailureScenario, FailureScope, Location, RecoveryTarget};
use crate::hierarchy::{Level, RecoverySite, StorageDesign};
use crate::protection::{
    Backup, IncrementalPolicy, KOutOfN, MirrorMode, ProtectionParams, RemoteMirror, RemoteVault,
    SplitMirror, Technique, VirtualSnapshot,
};
use crate::units::TimeDelta;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The design cannot be evaluated correctly until this is addressed.
    #[serde(rename = "error")]
    Error,
    /// The design is evaluable but almost certainly misconfigured
    /// (§3.2.1's soft composition conventions).
    #[serde(rename = "warning")]
    Warning,
    /// An observation worth knowing that needs no action.
    #[serde(rename = "hint")]
    Hint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
            Severity::Hint => f.write_str("hint"),
        }
    }
}

/// One accumulated preflight finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (`D001`…); catalogued in
    /// `DESIGN.md` §10.
    pub code: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Dotted path to the offending parameter (e.g.
    /// `levels[2].params.propW`).
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// A concrete suggested fix.
    pub suggestion: String,
    /// Whether [`repair`] can apply the suggestion automatically.
    pub fixable: bool,
}

impl Diagnostic {
    fn new(
        code: &str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
        suggestion: impl Into<String>,
        fixable: bool,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            path: path.into(),
            message: message.into(),
            suggestion: suggestion.into(),
            fixable,
        }
    }

    /// Whether this finding blocks correct evaluation.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

/// The accumulated result of a preflight run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Preflight {
    diagnostics: Vec<Diagnostic>,
}

impl Preflight {
    /// Every finding, errors first within each check category.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Warning)
    }

    /// The hint-severity findings.
    pub fn hints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Hint)
    }

    fn by_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether any warning-severity finding is present.
    pub fn has_warnings(&self) -> bool {
        self.warnings().next().is_some()
    }

    /// Whether the run produced no findings at all (hints included).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// A one-line count summary, e.g. `2 errors, 1 warning, 0 hints`.
    pub fn summary(&self) -> String {
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let hints = self.hints().count();
        format!(
            "{errors} error{}, {warnings} warning{}, {hints} hint{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if hints == 1 { "" } else { "s" },
        )
    }
}

/// Runs every preflight check against a single failure scenario.
///
/// Equivalent to [`preflight_all`] with a one-element scenario slice.
pub fn preflight(
    design: &StorageDesign,
    workload: &Workload,
    scenario: &FailureScenario,
) -> Preflight {
    preflight_all(design, workload, std::slice::from_ref(scenario))
}

/// Runs every preflight check and accumulates all findings — no
/// first-error abort.
///
/// Checks, in order: workload physics, hierarchy structure and device
/// references (§3.2.1), per-device parameters (§3.2.2), the recovery
/// site, per-level protection parameters (window consistency, §3.2.1),
/// the soft composition conventions, capacity/bandwidth feasibility
/// (§3.3.1), and per-scenario recovery-path reachability including
/// spare-pool coverage (§3.3.4). Checks that would be meaningless (or
/// panic) on a structurally broken hierarchy — feasibility and scenario
/// reachability — run only once the structure is sound; everything else
/// always runs, so one broken layer never hides another.
pub fn preflight_all(
    design: &StorageDesign,
    workload: &Workload,
    scenarios: &[FailureScenario],
) -> Preflight {
    let mut diags = Vec::new();
    check_workload(workload, &mut diags);
    let structure_sound = check_structure(design, &mut diags);
    check_devices(design, &mut diags);
    check_recovery_site(design, &mut diags);
    check_techniques(design, &mut diags);
    check_conventions(design, &mut diags);
    if structure_sound {
        let demands = check_feasibility(design, workload, &mut diags);
        for scenario in scenarios {
            check_scenario(design, workload, demands.as_ref(), scenario, &mut diags);
        }
        check_hints(design, &mut diags);
    }
    let mut seen = BTreeSet::new();
    diags.retain(|d| seen.insert((d.code.clone(), d.path.clone(), d.message.clone())));
    Preflight { diagnostics: diags }
}

/// [`preflight_all`] plus the composite-scenario checks (D070–D074):
/// every composite must lower onto the single-fault vocabulary, and each
/// successfully lowered scenario is then checked for recovery-path
/// reachability exactly like a plain scenario.
///
/// Composite checks need a structurally sound hierarchy (lowering walks
/// the level/device tables), so — like the plain scenario checks — they
/// run only once the structure checks pass.
pub fn preflight_with_composites(
    design: &StorageDesign,
    workload: &Workload,
    scenarios: &[FailureScenario],
    composites: &[CompositeScenario],
) -> Preflight {
    let mut diags = Vec::new();
    check_workload(workload, &mut diags);
    let structure_sound = check_structure(design, &mut diags);
    check_devices(design, &mut diags);
    check_recovery_site(design, &mut diags);
    check_techniques(design, &mut diags);
    check_conventions(design, &mut diags);
    if structure_sound {
        let demands = check_feasibility(design, workload, &mut diags);
        for scenario in scenarios {
            check_scenario(design, workload, demands.as_ref(), scenario, &mut diags);
        }
        for (index, composite) in composites.iter().enumerate() {
            if let Some(lowered) = check_composite(design, index, composite, &mut diags) {
                check_scenario(design, workload, demands.as_ref(), &lowered, &mut diags);
            }
        }
        check_hints(design, &mut diags);
    }
    let mut seen = BTreeSet::new();
    diags.retain(|d| seen.insert((d.code.clone(), d.path.clone(), d.message.clone())));
    Preflight { diagnostics: diags }
}

/// Composite-scenario checks (D070–D074). Returns the lowered
/// single-fault scenario when the composite is evaluable so its recovery
/// path can be checked with the plain-scenario machinery.
fn check_composite(
    design: &StorageDesign,
    index: usize,
    composite: &CompositeScenario,
    diags: &mut Vec<Diagnostic>,
) -> Option<FailureScenario> {
    let path = format!("composites[{index}]");
    match composite.lower(design) {
        Ok(lowered) => {
            if let CompositeScenario::SecondFault { first, second, .. } = composite {
                let destroyed = |scope: &FailureScope| -> Vec<usize> {
                    (0..design.levels().len())
                        .filter(|&level| design.level_destroyed(level, scope))
                        .collect()
                };
                let first_destroyed = destroyed(first);
                if destroyed(second)
                    .iter()
                    .all(|level| first_destroyed.contains(level))
                {
                    diags.push(Diagnostic::new(
                        "D074",
                        Severity::Warning,
                        format!("{path}.second"),
                        format!(
                            "the {} second fault destroys no level the {} first \
                             fault had not already consumed",
                            second.name(),
                            first.name()
                        ),
                        "widen the second fault's scope, or model the pair as a \
                         single degraded scenario",
                        false,
                    ));
                }
            }
            Some(lowered.scenario)
        }
        Err(error) => {
            let (code, suggestion) = match &error {
                Error::InvalidParameter { parameter, .. }
                    if parameter == "composite.correlation" =>
                {
                    ("D070", "set the correlation factor to a value in (0, 1]")
                }
                Error::InvalidParameter { parameter, .. } if parameter == "composite.scopes" => (
                    "D071",
                    "list at least two correlated scopes, or use a plain scenario",
                ),
                Error::InvalidParameter { parameter, .. }
                    if parameter.starts_with("composite.humanError") =>
                {
                    (
                        "D072",
                        "give the human-error rollback a positive point-in-time \
                         age and a positive object size",
                    )
                }
                _ => ("D070", "correct the composite scenario parameters"),
            };
            diags.push(Diagnostic::new(
                code,
                Severity::Error,
                path,
                format!("composite scenario `{composite}`: {error}"),
                suggestion,
                false,
            ));
            None
        }
    }
}

fn check_workload(workload: &Workload, diags: &mut Vec<Diagnostic>) {
    if let Err(error) = workload.validate() {
        diags.push(Diagnostic::new(
            "D011",
            Severity::Error,
            error_path(&error, "workload"),
            error.to_string(),
            "correct the workload measurement; the batch curve must be \
             physically consistent",
            false,
        ));
    }
}

/// Structural checks (D001–D007). Returns whether the hierarchy is sound
/// enough — non-empty, with every device reference in range — for the
/// demand/scenario analyses to run without panicking.
fn check_structure(design: &StorageDesign, diags: &mut Vec<Diagnostic>) -> bool {
    let devices = design.devices();
    let levels = design.levels();
    if levels.is_empty() {
        diags.push(Diagnostic::new(
            "D001",
            Severity::Error,
            "levels",
            "a design needs at least the primary copy level",
            "add a primary-copy level at index 0",
            false,
        ));
        return false;
    }
    let mut references_sound = true;
    for (index, level) in levels.iter().enumerate() {
        let is_primary = matches!(level.technique(), Technique::PrimaryCopy(_));
        if (index == 0) != is_primary {
            diags.push(Diagnostic::new(
                "D002",
                Severity::Error,
                format!("levels[{index}]"),
                if index == 0 {
                    format!("level 0 (`{}`) must be the primary copy", level.name())
                } else {
                    format!(
                        "the primary copy may only appear at level 0, not level {index} (`{}`)",
                        level.name()
                    )
                },
                "reorder the hierarchy so the primary copy is level 0",
                false,
            ));
        }
        if level.host().index() >= devices.len() {
            references_sound = false;
            diags.push(Diagnostic::new(
                "D003",
                Severity::Error,
                format!("levels[{index}].host"),
                format!(
                    "level `{}` hosts its RPs on {}, which is not registered \
                     (the design has {} device{})",
                    level.name(),
                    level.host(),
                    devices.len(),
                    if devices.len() == 1 { "" } else { "s" },
                ),
                "point the host at a registered storage device",
                false,
            ));
        } else if !devices[level.host().index()].kind().is_storage() {
            diags.push(Diagnostic::new(
                "D005",
                Severity::Error,
                format!("levels[{index}].host"),
                format!(
                    "host `{}` is a {}, not a storage device",
                    devices[level.host().index()].name(),
                    devices[level.host().index()].kind()
                ),
                "host RPs on a storage device and list interconnects as transports",
                false,
            ));
        }
        for (slot, &transport) in level.transports().iter().enumerate() {
            if transport.index() >= devices.len() {
                references_sound = false;
                diags.push(Diagnostic::new(
                    "D004",
                    Severity::Error,
                    format!("levels[{index}].transports[{slot}]"),
                    format!(
                        "level `{}` lists transport {}, which is not registered",
                        level.name(),
                        transport,
                    ),
                    "drop the dangling transport reference",
                    true,
                ));
            } else if !devices[transport.index()].kind().is_transport() {
                diags.push(Diagnostic::new(
                    "D006",
                    Severity::Error,
                    format!("levels[{index}].transports[{slot}]"),
                    format!(
                        "transport `{}` is a {}, not an interconnect",
                        devices[transport.index()].name(),
                        devices[transport.index()].kind()
                    ),
                    "list only interconnect devices (links, couriers) as transports",
                    false,
                ));
            }
        }
    }
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for (index, spec) in devices.iter().enumerate() {
        if let Some(first) = names.insert(spec.name(), index) {
            diags.push(Diagnostic::new(
                "D007",
                Severity::Error,
                format!("device[{}]", spec.name()),
                format!(
                    "duplicate device name `{}` (devices #{first} and #{index})",
                    spec.name()
                ),
                "rename one of the duplicates",
                true,
            ));
        }
    }
    references_sound
}

fn check_devices(design: &StorageDesign, diags: &mut Vec<Diagnostic>) {
    for spec in design.devices() {
        if let Err(error) = spec.spare().validate(spec.name()) {
            diags.push(Diagnostic::new(
                "D009",
                Severity::Error,
                error_path(&error, "device.spare"),
                error.to_string(),
                "clamp the spare value to zero",
                true,
            ));
        }
        if let Err(error) = spec.validate() {
            if !is_spare_error(&error) {
                diags.push(Diagnostic::new(
                    "D008",
                    Severity::Error,
                    error_path(&error, "device"),
                    error.to_string(),
                    "correct the device parameter; see Table 4 for \
                     representative values",
                    false,
                ));
            }
        }
    }
}

fn check_recovery_site(design: &StorageDesign, diags: &mut Vec<Diagnostic>) {
    let Some(site) = design.recovery_site() else {
        return;
    };
    if !(site.provisioning_time.value() >= 0.0 && site.provisioning_time.is_finite()) {
        diags.push(Diagnostic::new(
            "D010",
            Severity::Error,
            "recoverySite.provisioningTime",
            format!(
                "provisioning time {} must be non-negative and finite",
                site.provisioning_time
            ),
            "clamp the provisioning time to zero",
            true,
        ));
    }
    if !(site.cost_factor >= 0.0 && site.cost_factor.is_finite()) {
        diags.push(Diagnostic::new(
            "D010",
            Severity::Error,
            "recoverySite.costFactor",
            format!(
                "cost factor {} must be non-negative and finite",
                site.cost_factor
            ),
            "clamp the cost factor to zero",
            true,
        ));
    }
}

fn check_techniques(design: &StorageDesign, diags: &mut Vec<Diagnostic>) {
    for (index, level) in design.levels().iter().enumerate() {
        if let Err(error) = level.technique().validate() {
            let code = technique_code(&error);
            diags.push(Diagnostic::new(
                code,
                Severity::Error,
                format!("levels[{index}].{}", error_path(&error, "params")),
                format!("level `{}`: {error}", level.name()),
                match code {
                    "D021" => {
                        "raise the full propagation window above zero and make \
                         the incrementals fit within the full cycle (or drop them)"
                    }
                    "D022" => "clamp the asynchronous write lag to zero",
                    "D073" => {
                        "keep at least one data fragment and more total fragments \
                         than data fragments"
                    }
                    _ => {
                        "clamp the windows to a consistent schedule: raise accW \
                         to propW, cyclePer to accW, and retW to \
                         (retCnt - 1) x cyclePer"
                    }
                },
                true,
            ));
        }
    }
}

/// The paper's soft composition conventions (§3.2.1): violations are
/// evaluable but usually misconfigured, so they surface as warnings.
fn check_conventions(design: &StorageDesign, diags: &mut Vec<Diagnostic>) {
    let with_params: Vec<(usize, &Level, &ProtectionParams)> = design
        .levels()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.technique().params().map(|p| (i, l, p)))
        .collect();
    for pair in with_params.windows(2) {
        let (i, upper, up) = pair[0];
        let (j, lower, low) = pair[1];
        if low.accumulation_window() < up.cycle_period() {
            diags.push(Diagnostic::new(
                "D030",
                Severity::Warning,
                format!("levels[{j}].params.accW"),
                format!(
                    "level {j} (`{}`) accumulates faster than level {i} (`{}`) cycles \
                     (accW {} < cyclePer {}), so some of its windows go unfilled",
                    lower.name(),
                    upper.name(),
                    low.accumulation_window(),
                    up.cycle_period(),
                ),
                "lengthen the lower level's accumulation window to at least the \
                 upper level's cycle period",
                false,
            ));
        }
        if low.retention_count() < up.retention_count() {
            diags.push(Diagnostic::new(
                "D031",
                Severity::Warning,
                format!("levels[{j}].params.retCnt"),
                format!(
                    "level {j} (`{}`) retains fewer RPs than level {i} (`{}`) ({} < {})",
                    lower.name(),
                    upper.name(),
                    low.retention_count(),
                    up.retention_count(),
                ),
                "retain at least as many RPs as the level propagating into this one",
                false,
            ));
        }
        if up.hold_window() > low.retention_window() {
            diags.push(Diagnostic::new(
                "D032",
                Severity::Warning,
                format!("levels[{i}].params.holdW"),
                format!(
                    "level {i} (`{}`) holds RPs longer than level {j} (`{}`) retains \
                     them (holdW {} > retW {})",
                    upper.name(),
                    lower.name(),
                    up.hold_window(),
                    low.retention_window(),
                ),
                "shorten the hold window or lengthen the lower level's retention",
                false,
            ));
        }
    }
}

/// Normal-mode feasibility (§3.3.1): derive demands and report *every*
/// overcommitted device, not just the first.
fn check_feasibility(
    design: &StorageDesign,
    workload: &Workload,
    diags: &mut Vec<Diagnostic>,
) -> Option<DemandSet> {
    let demands = match design.demands(workload) {
        Ok(demands) => demands,
        Err(error) => {
            diags.push(Diagnostic::new(
                "D042",
                Severity::Error,
                error_path(&error, "levels"),
                format!("demand derivation failed: {error}"),
                "fix the hierarchy composition so every level has the source \
                 it needs",
                false,
            ));
            return None;
        }
    };
    let report = utilization_from_demands(design, &demands);
    for device in &report.devices {
        if device.capacity_utilization.is_overcommitted() {
            diags.push(Diagnostic::new(
                "D040",
                Severity::Error,
                format!("device[{}].capacity", device.device_name),
                format!(
                    "capacity overcommitted at {} ({} demanded)",
                    device.capacity_utilization, device.capacity_demand,
                ),
                "add capacity slots or reduce the retention counts demanding them",
                false,
            ));
        }
        if device.bandwidth_utilization.is_overcommitted() {
            diags.push(Diagnostic::new(
                "D041",
                Severity::Error,
                format!("device[{}].bandwidth", device.device_name),
                format!(
                    "bandwidth overcommitted at {} ({} demanded)",
                    device.bandwidth_utilization, device.bandwidth_demand,
                ),
                "add bandwidth slots or lengthen the propagation windows \
                 demanding them",
                false,
            ));
        }
    }
    Some(demands)
}

/// Per-scenario reachability (§3.3.3–3.3.4): runs the actual data-loss
/// and recovery analyses so the verdict always agrees with
/// [`crate::analysis::evaluate`].
fn check_scenario(
    design: &StorageDesign,
    workload: &Workload,
    demands: Option<&DemandSet>,
    scenario: &FailureScenario,
    diags: &mut Vec<Diagnostic>,
) {
    if !check_scenario_parameters(scenario, diags) {
        return;
    }
    if let FailureScope::ProtectionLevel { level } = scenario.scope {
        if level >= design.levels().len() {
            diags.push(Diagnostic::new(
                "D054",
                Severity::Warning,
                "scenario.scope.level",
                format!(
                    "scenario `{scenario}` degrades protection level {level}, but the \
                     design has only {}",
                    design.levels().len()
                ),
                "reference an existing hierarchy level",
                false,
            ));
        }
    }
    let out_of_range: Vec<usize> = scenario
        .degraded_levels
        .iter()
        .copied()
        .filter(|&l| l >= design.levels().len())
        .collect();
    if !out_of_range.is_empty() {
        diags.push(Diagnostic::new(
            "D052",
            Severity::Warning,
            "scenario.degradedLevels",
            format!(
                "scenario `{scenario}` marks nonexistent level{} {out_of_range:?} as \
                 degraded (the design has {} levels)",
                if out_of_range.len() == 1 { "" } else { "s" },
                design.levels().len()
            ),
            "reference only existing hierarchy levels",
            false,
        ));
    }
    let loss = match data_loss(design, scenario) {
        Ok(loss) => loss,
        Err(Error::NoRecoverySource { .. }) => {
            diags.push(Diagnostic::new(
                "D050",
                Severity::Error,
                "scenario",
                format!("`{scenario}` leaves no surviving recovery source"),
                "add a protection level that survives the scope (an off-site \
                 vault or remote mirror) or relax the recovery target",
                false,
            ));
            return;
        }
        Err(error) => {
            diags.push(Diagnostic::new(
                "D055",
                Severity::Error,
                "scenario",
                format!("data-loss analysis failed under `{scenario}`: {error}"),
                "fix the referenced parameter",
                false,
            ));
            return;
        }
    };
    let Some(demands) = demands else {
        return;
    };
    match recovery(design, workload, demands, scenario, loss.source_level) {
        Ok(_) => {}
        Err(Error::NoReplacement { device }) => {
            let fixable =
                matches!(scenario.scope, FailureScope::Array) || design.recovery_site().is_none();
            diags.push(Diagnostic::new(
                "D051",
                Severity::Error,
                format!("device[{device}].spare"),
                format!(
                    "`{scenario}` destroys `{device}`, which has no spare and no \
                     surviving recovery facility to rebuild on"
                ),
                if matches!(scenario.scope, FailureScope::Array) {
                    "add a spare to the device (e.g. a shared spare pool, \
                     9 h provisioning at 20 % cost)"
                } else if design.recovery_site().is_none() {
                    "declare an off-region recovery site (e.g. 9 h provisioning \
                     at 20 % cost)"
                } else {
                    "move the recovery site outside the failure scope"
                },
                fixable,
            ));
        }
        Err(error) => {
            diags.push(Diagnostic::new(
                "D055",
                Severity::Error,
                error_path(&error, "scenario"),
                format!("recovery analysis failed under `{scenario}`: {error}"),
                "free up bandwidth on the restore path or fix the referenced \
                 parameter",
                false,
            ));
        }
    }
}

/// Validates the scenario's own numbers (D053). Returns whether the
/// scenario is sound enough for the reachability analyses.
fn check_scenario_parameters(scenario: &FailureScenario, diags: &mut Vec<Diagnostic>) -> bool {
    let mut sound = true;
    if let RecoveryTarget::Before { age } = scenario.target {
        if !(age.value() >= 0.0 && age.is_finite()) {
            sound = false;
            diags.push(Diagnostic::new(
                "D053",
                Severity::Error,
                "scenario.target.age",
                format!("recovery target age {age} must be non-negative and finite"),
                "use a non-negative, finite age (or `now`)",
                false,
            ));
        }
    }
    if let FailureScope::DataObject { size } = scenario.scope {
        if !(size.value() > 0.0 && size.is_finite()) {
            sound = false;
            diags.push(Diagnostic::new(
                "D053",
                Severity::Error,
                "scenario.scope.size",
                format!("corrupted-object size {size} must be positive and finite"),
                "use a positive, finite object size",
                false,
            ));
        }
    }
    sound
}

fn check_hints(design: &StorageDesign, diags: &mut Vec<Diagnostic>) {
    let primary = design.primary_location().clone();
    let all_on_site = design
        .levels()
        .iter()
        .all(|level| design.device(level.host()).location().same_site(&primary));
    if all_on_site {
        diags.push(Diagnostic::new(
            "D060",
            Severity::Hint,
            "levels",
            "every protection level sits on the primary site, so a site or \
             regional disaster destroys all copies at once",
            "add an off-site level (remote vault or mirror) for disaster \
             coverage",
            false,
        ));
    }
    if design.recovery_site().is_none() {
        diags.push(Diagnostic::new(
            "D061",
            Severity::Hint,
            "recoverySite",
            "no standby recovery facility is declared; after a site disaster, \
             replacement hardware must be rebuilt in place",
            "declare a recovery site to bound post-disaster provisioning time",
            false,
        ));
    }
}

/// The diagnostic code for a technique-validation error, by the parameter
/// family the error names.
fn technique_code(error: &Error) -> &'static str {
    match error {
        Error::InvalidParameter { parameter, .. } if parameter.starts_with("backup.") => "D021",
        Error::InvalidParameter { parameter, .. } if parameter.starts_with("remoteMirror.") => {
            "D022"
        }
        Error::InvalidParameter { parameter, .. } if parameter.starts_with("kOutOfN.") => "D073",
        _ => "D020",
    }
}

fn is_spare_error(error: &Error) -> bool {
    matches!(
        error,
        Error::InvalidParameter { parameter, .. }
            if parameter.contains(".spareTime") || parameter.contains(".spareDisc")
    )
}

/// Whether the hierarchy is structurally sound enough for the analysis
/// pipeline to run without panicking: non-empty, with every level's host
/// and transport references inside the device table. (Deserialization
/// bypasses the builder, so arbitrary specs can violate this.)
pub(crate) fn structure_is_sound(design: &StorageDesign) -> bool {
    let device_count = design.devices().len();
    !design.levels().is_empty()
        && design.levels().iter().all(|level| {
            level.host().index() < device_count
                && level.transports().iter().all(|t| t.index() < device_count)
        })
}

/// The dotted parameter path an error names, or `fallback` when the error
/// carries none.
fn error_path(error: &Error, fallback: &str) -> String {
    match error {
        Error::InvalidParameter { parameter, .. } => parameter.clone(),
        Error::NonFiniteInput { parameter } => parameter.clone(),
        _ => fallback.to_string(),
    }
}

/// One automatically applied repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repair {
    /// The diagnostic code the repair addresses.
    pub code: String,
    /// The dotted path of the repaired parameter.
    pub path: String,
    /// What was changed, in words.
    pub action: String,
}

/// The result of a [`repair`] pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repaired {
    /// The design with all safe repairs applied. Unfixable defects are
    /// left in place so a follow-up [`preflight`] still reports them.
    pub design: StorageDesign,
    /// The repairs applied, in application order; empty when nothing was
    /// fixable.
    pub applied: Vec<Repair>,
}

/// Applies the safe subset of preflight suggestions and returns the
/// repaired design plus the list of applied repairs.
///
/// Safe repairs: renaming duplicate devices (D007), dropping dangling
/// transport references (D004), clamping negative/non-finite spare and
/// recovery-site values (D009, D010), rebuilding inconsistent protection
/// schedules with bandwidth-safe clamps (D020–D022 — `accW` is *raised*
/// to `propW`, never the reverse, so the repaired level still keeps up),
/// and adding spare coverage where a scenario would otherwise find no
/// replacement hardware (D051). Unfixable defects (wrong device roles,
/// overcommitted hardware, no surviving copies) are left untouched.
///
/// The output carries no fixable diagnostics: running [`repair`] on it
/// again applies nothing (enforced by property test).
pub fn repair(
    design: &StorageDesign,
    workload: &Workload,
    scenarios: &[FailureScenario],
) -> Repaired {
    let mut applied = Vec::new();
    let mut devices = design.devices().to_vec();
    let mut site = design.recovery_site().cloned();

    repair_device_names(&mut devices, &mut applied);
    repair_spares(&mut devices, &mut applied);
    let levels = repair_levels(design.levels(), devices.len(), &mut applied);
    repair_site(&mut site, &mut applied);
    // Coverage repairs never change the device count, so the levels'
    // device references stay valid.
    repair_coverage(
        design.name(),
        workload,
        scenarios,
        &mut devices,
        &levels,
        &mut site,
        &mut applied,
    );

    Repaired {
        design: StorageDesign::from_parts(design.name().to_string(), devices, levels, site),
        applied,
    }
}

fn repair_device_names(devices: &mut [DeviceSpec], applied: &mut Vec<Repair>) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for spec in devices.iter_mut() {
        if seen.contains(spec.name()) {
            let base = spec.name().to_string();
            let mut n = 2;
            let mut renamed = format!("{base} #{n}");
            while seen.contains(&renamed) {
                n += 1;
                renamed = format!("{base} #{n}");
            }
            applied.push(Repair {
                code: "D007".to_string(),
                path: format!("device[{base}]"),
                action: format!("renamed duplicate device to `{renamed}`"),
            });
            *spec = spec.with_name(renamed);
        }
        seen.insert(spec.name().to_string());
    }
}

fn repair_spares(devices: &mut [DeviceSpec], applied: &mut Vec<Repair>) {
    for spec in devices.iter_mut() {
        let (time, factor) = match spec.spare() {
            SpareSpec::None => continue,
            SpareSpec::Dedicated {
                provisioning_time,
                cost_factor,
            }
            | SpareSpec::Shared {
                provisioning_time,
                cost_factor,
            } => (*provisioning_time, *cost_factor),
        };
        let clamped_time = clamp_delta(time);
        let clamped_factor = if factor >= 0.0 && factor.is_finite() {
            factor
        } else {
            0.0
        };
        if clamped_time == time && clamped_factor == factor {
            continue;
        }
        let fixed = match spec.spare() {
            SpareSpec::Dedicated { .. } => SpareSpec::dedicated(clamped_time, clamped_factor),
            _ => SpareSpec::shared(clamped_time, clamped_factor),
        };
        applied.push(Repair {
            code: "D009".to_string(),
            path: format!("device[{}].spare", spec.name()),
            action: "clamped the spare's provisioning time / cost factor to zero".to_string(),
        });
        *spec = spec.with_spare(fixed);
    }
}

fn repair_levels(levels: &[Level], device_count: usize, applied: &mut Vec<Repair>) -> Vec<Level> {
    let mut repaired = Vec::with_capacity(levels.len());
    for (index, level) in levels.iter().enumerate() {
        let mut transports: Vec<_> = level.transports().to_vec();
        let before = transports.len();
        transports.retain(|t| t.index() < device_count);
        if transports.len() < before {
            applied.push(Repair {
                code: "D004".to_string(),
                path: format!("levels[{index}].transports"),
                action: format!(
                    "dropped {} dangling transport reference{}",
                    before - transports.len(),
                    if before - transports.len() == 1 {
                        ""
                    } else {
                        "s"
                    },
                ),
            });
        }
        let mut technique = level.technique().clone();
        if let Err(error) = technique.validate() {
            if let Some(fixed) = repair_technique(&technique) {
                applied.push(Repair {
                    code: technique_code(&error).to_string(),
                    path: format!("levels[{index}].{}", error_path(&error, "params")),
                    action: format!("rebuilt the schedule with consistent windows (was: {error})"),
                });
                technique = fixed;
            }
        }
        repaired.push(
            Level::new(level.name().to_string(), technique, level.host())
                .with_transports(transports),
        );
    }
    repaired
}

fn repair_site(site: &mut Option<RecoverySite>, applied: &mut Vec<Repair>) {
    let Some(site) = site.as_mut() else {
        return;
    };
    if !(site.provisioning_time.value() >= 0.0 && site.provisioning_time.is_finite()) {
        site.provisioning_time = TimeDelta::ZERO;
        applied.push(Repair {
            code: "D010".to_string(),
            path: "recoverySite.provisioningTime".to_string(),
            action: "clamped the provisioning time to zero".to_string(),
        });
    }
    if !(site.cost_factor >= 0.0 && site.cost_factor.is_finite()) {
        site.cost_factor = 0.0;
        applied.push(Repair {
            code: "D010".to_string(),
            path: "recoverySite.costFactor".to_string(),
            action: "clamped the cost factor to zero".to_string(),
        });
    }
}

/// Resolves D051 findings: re-runs the reachability analysis on the
/// partially repaired design and adds spare coverage — a shared spare
/// pool for array-scope gaps, an off-region recovery site for wider
/// scopes — until no fixable gap remains.
fn repair_coverage(
    name: &str,
    workload: &Workload,
    scenarios: &[FailureScenario],
    devices: &mut [DeviceSpec],
    levels: &[Level],
    site: &mut Option<RecoverySite>,
    applied: &mut Vec<Repair>,
) {
    let probe = StorageDesign::from_parts(
        name.to_string(),
        devices.to_vec(),
        levels.to_vec(),
        site.clone(),
    );
    if !structure_is_sound(&probe) {
        return;
    }
    // Each pass fixes at most one gap (a spare on one device, or the
    // recovery site), so the bound is generous.
    for _ in 0..devices.len() + 2 {
        let candidate = StorageDesign::from_parts(
            name.to_string(),
            devices.to_vec(),
            levels.to_vec(),
            site.clone(),
        );
        let Ok(demands) = candidate.demands(workload) else {
            return;
        };
        let mut fixed_one = false;
        for scenario in scenarios {
            if !check_scenario_parameters(scenario, &mut Vec::new()) {
                continue;
            }
            let Ok(loss) = data_loss(&candidate, scenario) else {
                continue;
            };
            let Err(Error::NoReplacement { device }) =
                recovery(&candidate, workload, &demands, scenario, loss.source_level)
            else {
                continue;
            };
            if matches!(scenario.scope, FailureScope::Array) {
                let Some(id) = candidate.device_id(&device) else {
                    continue;
                };
                if devices[id.index()].spare().exists() {
                    continue;
                }
                devices[id.index()] = devices[id.index()]
                    .with_spare(SpareSpec::shared(TimeDelta::from_hours(9.0), 0.2));
                applied.push(Repair {
                    code: "D051".to_string(),
                    path: format!("device[{device}].spare"),
                    action: "added a shared spare pool (9 h provisioning, 20 % cost)".to_string(),
                });
                fixed_one = true;
                break;
            }
            if site.is_none() {
                let primary = candidate.primary_location();
                *site = Some(RecoverySite {
                    location: Location::new(
                        format!("{}-recovery", primary.region()),
                        "recovery-site",
                        "recovery-facility",
                    ),
                    provisioning_time: TimeDelta::from_hours(9.0),
                    cost_factor: 0.2,
                });
                applied.push(Repair {
                    code: "D051".to_string(),
                    path: "recoverySite".to_string(),
                    action: "declared an off-region recovery site (9 h provisioning, \
                             20 % cost)"
                        .to_string(),
                });
                fixed_one = true;
                break;
            }
        }
        if !fixed_one {
            return;
        }
    }
}

fn repair_technique(technique: &Technique) -> Option<Technique> {
    match technique {
        Technique::PrimaryCopy(_) => None,
        Technique::SplitMirror(t) => Some(Technique::SplitMirror(SplitMirror::new(clamp_params(
            t.params(),
            false,
        )?))),
        Technique::VirtualSnapshot(t) => Some(Technique::VirtualSnapshot(VirtualSnapshot::new(
            clamp_params(t.params(), false)?,
        ))),
        Technique::RemoteVault(t) => Some(Technique::RemoteVault(RemoteVault::new(clamp_params(
            t.params(),
            false,
        )?))),
        Technique::RemoteMirror(t) => match t.mode() {
            MirrorMode::Synchronous => None,
            MirrorMode::Asynchronous { write_lag } => Some(Technique::RemoteMirror(
                RemoteMirror::asynchronous(clamp_delta(*write_lag)),
            )),
            MirrorMode::Batched { params } => Some(Technique::RemoteMirror(RemoteMirror::batched(
                clamp_params(params, false)?,
            ))),
        },
        Technique::Backup(t) => {
            let full = clamp_params(t.full_params(), true)?;
            let with_incrementals = t
                .incremental()
                .and_then(|incr| clamp_incremental(*incr, full.cycle_period()))
                .and_then(|incr| Backup::with_incrementals(full, incr).ok());
            match with_incrementals {
                Some(backup) => Some(Technique::Backup(backup)),
                None => Backup::full_only(full).ok().map(Technique::Backup),
            }
        }
        Technique::KOutOfN(t) => {
            let k = t.data_fragments().max(1);
            Some(Technique::KOutOfN(KOutOfN::new(
                k,
                t.total_fragments().max(k + 1),
                clamp_params(t.params(), false)?,
                t.repair(),
            )))
        }
    }
}

/// Rebuilds a parameter set through the validating builder with
/// bandwidth-safe clamps: `accW` is raised to `propW` (lengthening an
/// accumulation window only *lowers* the batch update rate, so the level
/// still keeps up), `cyclePer` to `accW`, and `retW` to `retCnt ×
/// cyclePer`; non-finite windows reset to defaults and zero counts to
/// one. `positive_prop` additionally forces a positive propagation window
/// (the backup model sizes transfer bandwidth by it).
fn clamp_params(params: &ProtectionParams, positive_prop: bool) -> Option<ProtectionParams> {
    let mut acc = params.accumulation_window();
    if !(acc.value() > 0.0 && acc.is_finite()) {
        acc = TimeDelta::from_hours(24.0);
    }
    acc = cap_window(acc);
    let mut prop = params.propagation_window();
    if !(prop.value() >= 0.0 && prop.is_finite()) {
        prop = TimeDelta::ZERO;
    }
    prop = cap_window(prop);
    if positive_prop && prop.value() <= 0.0 {
        prop = acc;
    }
    if prop > acc {
        acc = prop;
    }
    let mut cycle = params.cycle_period();
    if !(cycle.value() >= 0.0 && cycle.is_finite()) || cycle < acc {
        cycle = acc;
    }
    cycle = cap_window(cycle);
    let retention_count = params.retention_count().max(1);
    let min_retention = cycle * (retention_count - 1) as f64;
    let mut retention_window = params.retention_window();
    if !(retention_window.value() >= 0.0 && retention_window.is_finite())
        || retention_window < min_retention
    {
        retention_window = cycle * retention_count as f64;
    }
    ProtectionParams::builder()
        .accumulation_window(acc)
        .propagation_window(prop)
        .hold_window(clamp_delta(params.hold_window()))
        .cycle_count(params.cycle_count().max(1))
        .cycle_period(cycle)
        .retention_count(retention_count)
        .retention_window(retention_window)
        .copy_representation(params.copy_representation())
        .propagation_representation(params.propagation_representation())
        .build()
        .ok()
}

/// Clamps an incremental policy to fit the backup constructor's rules, or
/// `None` when the incrementals cannot be salvaged (the repair then falls
/// back to fulls only).
fn clamp_incremental(
    mut incr: IncrementalPolicy,
    full_cycle: TimeDelta,
) -> Option<IncrementalPolicy> {
    if incr.count == 0 {
        return None;
    }
    if !(incr.accumulation_window.value() > 0.0 && incr.accumulation_window.is_finite()) {
        return None;
    }
    incr.hold_window = clamp_delta(incr.hold_window);
    if !(incr.propagation_window.value() > 0.0 && incr.propagation_window.is_finite()) {
        incr.propagation_window = incr.accumulation_window;
    }
    if incr.accumulation_window * incr.count as f64 >= full_cycle {
        return None;
    }
    Some(incr)
}

fn clamp_delta(delta: TimeDelta) -> TimeDelta {
    if delta.value() >= 0.0 && delta.is_finite() {
        delta
    } else {
        TimeDelta::ZERO
    }
}

/// Ceiling for repaired schedule windows: a millennium. Larger windows
/// (representable but absurd) make downstream products like
/// `cyclePer x retCnt` overflow to infinity, so repairs clamp to this
/// rather than preserving them.
fn cap_window(delta: TimeDelta) -> TimeDelta {
    let max = TimeDelta::from_hours(1000.0 * 365.25 * 24.0);
    if delta > max {
        max
    } else {
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::RecoveryTarget;
    use crate::units::Bytes;

    fn fixture() -> (StorageDesign, Workload, Vec<FailureScenario>) {
        (
            crate::presets::baseline_design(),
            crate::presets::cello_workload(),
            vec![
                FailureScenario::new(
                    FailureScope::DataObject {
                        size: Bytes::from_mib(1.0),
                    },
                    RecoveryTarget::Before {
                        age: TimeDelta::from_hours(24.0),
                    },
                ),
                FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
                FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            ],
        )
    }

    /// Serializes, mutates with `mutate`, and deserializes a design —
    /// the only way to obtain the invalid states serde admits.
    fn mutated(
        design: &StorageDesign,
        mutate: impl FnOnce(&mut serde_json::Value),
    ) -> StorageDesign {
        let mut value = serde_json::to_value(design).unwrap();
        mutate(&mut value);
        serde_json::from_value(value).unwrap()
    }

    #[test]
    fn baseline_passes_with_no_errors_or_warnings() {
        let (design, workload, scenarios) = fixture();
        let report = preflight_all(&design, &workload, &scenarios);
        assert!(!report.has_errors(), "{:?}", report.diagnostics());
        assert!(!report.has_warnings(), "{:?}", report.diagnostics());
    }

    #[test]
    fn multiple_independent_defects_are_all_reported() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // 1. propW > accW on the backup level.
            v["levels"][2]["technique"]["Backup"]["full"]["propagation_window"] =
                serde_json::json!(1.0e9);
            // 2. A dangling transport on the vault level.
            v["levels"][3]["transports"]
                .as_array_mut()
                .unwrap()
                .push(serde_json::json!(99));
            // 3. A negative spare provisioning time.
            v["devices"][0]["spare"]["Dedicated"]["provisioning_time"] = serde_json::json!(-5.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        let codes: Vec<&str> = report.errors().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"D020"), "{codes:?}");
        assert!(codes.contains(&"D004"), "{codes:?}");
        assert!(codes.contains(&"D009"), "{codes:?}");
    }

    #[test]
    fn empty_hierarchy_reports_d001_without_panicking() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["levels"] = serde_json::json!([]);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D001"));
    }

    #[test]
    fn dangling_host_reports_d003_without_panicking() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["levels"][0]["host"] = serde_json::json!(42);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D003"));
    }

    #[test]
    fn duplicate_device_names_report_d007() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            let clone = v["devices"][0].clone();
            v["devices"].as_array_mut().unwrap().push(clone);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D007" && d.fixable));
    }

    #[test]
    fn overcommitted_devices_are_all_reported() {
        let (design, workload, scenarios) = fixture();
        // A 100× workload swamps the baseline palette.
        let heavy = workload.scaled(100.0).unwrap();
        let report = preflight_all(&design, &heavy, &scenarios);
        assert!(
            report
                .errors()
                .any(|d| d.code == "D040" || d.code == "D041"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn on_site_only_design_reports_unreachable_site_scenario() {
        let (design, workload, _) = fixture();
        // Strip the off-site vault level: a site disaster then destroys
        // every copy.
        let on_site = mutated(&design, |v| {
            v["levels"].as_array_mut().unwrap().truncate(3);
        });
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let report = preflight(&on_site, &workload, &scenario);
        assert!(report.errors().any(|d| d.code == "D050"));
        assert!(report.hints().any(|d| d.code == "D060"));
    }

    #[test]
    fn convention_violations_surface_as_warnings() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // Vault retains fewer RPs than the backup above it.
            v["levels"][3]["technique"]["RemoteVault"]["params"]["retention_count"] =
                serde_json::json!(2);
            v["levels"][3]["technique"]["RemoteVault"]["params"]["retention_window"] =
                serde_json::json!(1.0e9);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.warnings().any(|d| d.code == "D031"));
    }

    #[test]
    fn scenario_parameter_defects_report_d053() {
        let (design, workload, _) = fixture();
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(-1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(f64::NAN),
            },
        );
        let report = preflight(&design, &workload, &scenario);
        assert_eq!(report.errors().filter(|d| d.code == "D053").count(), 2);
    }

    #[test]
    fn degraded_level_out_of_range_reports_d052() {
        let (design, workload, _) = fixture();
        let scenario =
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now).with_degraded_level(17);
        let report = preflight(&design, &workload, &scenario);
        assert!(report.warnings().any(|d| d.code == "D052"));
    }

    /// Serializes, mutates, and deserializes a workload — same trick as
    /// [`mutated`], for the invalid workloads serde admits.
    fn mutated_workload(
        workload: &Workload,
        mutate: impl FnOnce(&mut serde_json::Value),
    ) -> Workload {
        let mut value = serde_json::to_value(workload).unwrap();
        mutate(&mut value);
        serde_json::from_value(value).unwrap()
    }

    #[test]
    fn invalid_workload_reports_d011() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated_workload(&workload, |v| {
            v["avg_update_rate"] = serde_json::json!(-1.0);
        });
        let report = preflight_all(&design, &broken, &scenarios);
        assert!(report.errors().any(|d| d.code == "D011"), "{report:?}");
    }

    #[test]
    fn misplaced_primary_copy_reports_d002() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // Swap the primary copy with the split mirror.
            let primary = v["levels"][0].clone();
            v["levels"][0] = v["levels"][1].clone();
            v["levels"][1] = primary;
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D002"), "{report:?}");
    }

    #[test]
    fn non_storage_host_reports_d005() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // Host the primary copy on the air courier.
            v["levels"][0]["host"] = serde_json::json!(3);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D005"), "{report:?}");
    }

    #[test]
    fn storage_device_as_transport_reports_d006() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // The vault level ships tapes over… the primary array.
            v["levels"][3]["transports"][0] = serde_json::json!(0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D006"), "{report:?}");
    }

    #[test]
    fn bad_device_parameter_reports_d008() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["devices"][0]["access_delay"] = serde_json::json!(-1.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D008"), "{report:?}");
    }

    #[test]
    fn negative_recovery_site_provisioning_reports_d010() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["recovery_site"]["provisioning_time"] = serde_json::json!(-5.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(
            report.errors().any(|d| d.code == "D010" && d.fixable),
            "{report:?}"
        );
    }

    #[test]
    fn zero_backup_propagation_window_reports_d021() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["levels"][2]["technique"]["Backup"]["full"]["propagation_window"] =
                serde_json::json!(0.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.errors().any(|d| d.code == "D021"), "{report:?}");
    }

    #[test]
    fn negative_async_write_lag_reports_d022() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::async_batch_mirror_design(1);
        let broken = mutated(&design, |v| {
            v["levels"][1]["technique"]["RemoteMirror"]["mode"] =
                serde_json::json!({"Asynchronous": {"write_lag": (-5.0)}});
        });
        let report = preflight_all(&broken, &workload, &[]);
        assert!(report.errors().any(|d| d.code == "D022"), "{report:?}");
    }

    #[test]
    fn fast_lower_accumulation_reports_d030() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // The vault accumulates every 2 days while the backup above
            // it cycles weekly: most vault windows go unfilled.
            v["levels"][3]["technique"]["RemoteVault"]["params"]["accumulation_window"] =
                serde_json::json!(172_800.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.warnings().any(|d| d.code == "D030"), "{report:?}");
    }

    #[test]
    fn hold_longer_than_lower_retention_reports_d032() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            // The backup holds RPs past the vault's ~3-year retention.
            v["levels"][2]["technique"]["Backup"]["full"]["hold_window"] =
                serde_json::json!(95_000_000.0);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(report.warnings().any(|d| d.code == "D032"), "{report:?}");
    }

    #[test]
    fn mirror_without_source_reports_d042() {
        let workload = crate::presets::cello_workload();
        let design = crate::presets::async_batch_mirror_design(1);
        let broken = mutated(&design, |v| {
            // Keep only the mirror level: structurally sound (its host
            // and transport exist) but it has no level to mirror from.
            let mirror = v["levels"][1].clone();
            v["levels"] = serde_json::json!([mirror]);
        });
        let report = preflight_all(&broken, &workload, &[]);
        assert!(report.errors().any(|d| d.code == "D042"), "{report:?}");
    }

    #[test]
    fn out_of_range_protection_level_reports_d054() {
        let (design, workload, _) = fixture();
        let scenario = FailureScenario::new(
            FailureScope::ProtectionLevel { level: 17 },
            RecoveryTarget::Now,
        );
        let report = preflight(&design, &workload, &scenario);
        assert!(report.warnings().any(|d| d.code == "D054"), "{report:?}");
    }

    #[test]
    fn zero_restore_bandwidth_reports_d055() {
        let (design, workload, _) = fixture();
        let broken = mutated(&design, |v| {
            // A tape library with no enclosure bandwidth leaves nothing
            // for the restore stream after an array loss.
            v["devices"][1]["enclosure_bandwidth"] = serde_json::json!(0.0);
        });
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let report = preflight(&broken, &workload, &scenario);
        assert!(report.errors().any(|d| d.code == "D055"), "{report:?}");
    }

    #[test]
    fn repair_fixes_every_fixable_defect() {
        let (design, workload, scenarios) = fixture();
        let broken = mutated(&design, |v| {
            v["levels"][2]["technique"]["Backup"]["full"]["propagation_window"] =
                serde_json::json!(1.0e9);
            v["levels"][3]["transports"]
                .as_array_mut()
                .unwrap()
                .push(serde_json::json!(99));
            v["devices"][0]["spare"]["Dedicated"]["provisioning_time"] = serde_json::json!(-5.0);
            let clone = v["devices"][1].clone();
            v["devices"].as_array_mut().unwrap().push(clone);
        });
        let before = preflight_all(&broken, &workload, &scenarios);
        assert!(before.has_errors());

        let repaired = repair(&broken, &workload, &scenarios);
        assert!(repaired.applied.len() >= 4, "{:?}", repaired.applied);
        let after = preflight_all(&repaired.design, &workload, &scenarios);
        assert!(
            after.diagnostics().iter().all(|d| !d.fixable),
            "{:?}",
            after.diagnostics()
        );
        assert!(!after.has_errors(), "{:?}", after.diagnostics());

        // A second repair has nothing left to do.
        let again = repair(&repaired.design, &workload, &scenarios);
        assert!(again.applied.is_empty(), "{:?}", again.applied);
    }

    #[test]
    fn repair_adds_spare_coverage_for_array_gaps() {
        let (design, workload, _) = fixture();
        // Remove the primary array's spare and the design's recovery
        // site: an array failure then finds no replacement.
        let uncovered = mutated(&design, |v| {
            v["devices"][0]["spare"] = serde_json::json!("None");
            v["recovery_site"] = serde_json::Value::Null;
        });
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let report = preflight(&uncovered, &workload, &scenario);
        assert!(report.errors().any(|d| d.code == "D051" && d.fixable));

        let repaired = repair(&uncovered, &workload, &[scenario.clone()]);
        assert!(repaired.applied.iter().any(|r| r.code == "D051"));
        let after = preflight(&repaired.design, &workload, &scenario);
        assert!(!after.has_errors(), "{:?}", after.diagnostics());
    }

    #[test]
    fn repair_declares_a_recovery_site_for_wide_scopes() {
        let (design, workload, _) = fixture();
        let uncovered = mutated(&design, |v| {
            v["recovery_site"] = serde_json::Value::Null;
        });
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let repaired = repair(&uncovered, &workload, &[scenario.clone()]);
        if repaired.applied.iter().any(|r| r.code == "D051") {
            let site = repaired.design.recovery_site().expect("site declared");
            assert!(!site
                .location
                .same_region(repaired.design.primary_location()));
        }
        let after = preflight(&repaired.design, &workload, &scenario);
        assert!(
            !after.errors().any(|d| d.fixable),
            "{:?}",
            after.diagnostics()
        );
    }

    #[test]
    fn diagnostics_serialize_stably() {
        let diagnostic = Diagnostic::new(
            "D020",
            Severity::Error,
            "levels[1].params.propW",
            "message",
            "suggestion",
            true,
        );
        let json = serde_json::to_string(&diagnostic).unwrap();
        assert!(json.contains("\"severity\":\"error\""));
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(diagnostic, back);
        assert_eq!(
            diagnostic.to_string(),
            "error[D020] levels[1].params.propW: message"
        );
    }

    #[test]
    fn composite_preflight_is_clean_for_valid_composites() {
        let (design, workload, scenarios) = fixture();
        let composites = vec![
            CompositeScenario::Correlated {
                scopes: vec![FailureScope::Site, FailureScope::Array],
                correlation: 0.5,
                target: RecoveryTarget::Now,
            },
            CompositeScenario::SecondFault {
                first: FailureScope::Array,
                second: FailureScope::Site,
                target: RecoveryTarget::Now,
            },
            CompositeScenario::HumanError {
                size: Bytes::from_mib(1.0),
                age: TimeDelta::from_hours(24.0),
            },
        ];
        let report = preflight_with_composites(&design, &workload, &scenarios, &composites);
        assert!(!report.has_errors(), "{:?}", report.diagnostics());
        assert!(!report.has_warnings(), "{:?}", report.diagnostics());
    }

    #[test]
    fn invalid_correlation_reports_d070() {
        let (design, workload, _) = fixture();
        let composite = CompositeScenario::Correlated {
            scopes: vec![FailureScope::Site, FailureScope::Array],
            correlation: 0.0,
            target: RecoveryTarget::Now,
        };
        let report = preflight_with_composites(&design, &workload, &[], &[composite]);
        assert!(
            report
                .errors()
                .any(|d| d.code == "D070" && d.path == "composites[0]"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn single_correlated_scope_reports_d071() {
        let (design, workload, _) = fixture();
        let composite = CompositeScenario::Correlated {
            scopes: vec![FailureScope::Site],
            correlation: 0.5,
            target: RecoveryTarget::Now,
        };
        let report = preflight_with_composites(&design, &workload, &[], &[composite]);
        assert!(
            report.errors().any(|d| d.code == "D071"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn degenerate_human_error_reports_d072() {
        let (design, workload, _) = fixture();
        let composite = CompositeScenario::HumanError {
            size: Bytes::from_mib(1.0),
            age: TimeDelta::ZERO,
        };
        let report = preflight_with_composites(&design, &workload, &[], &[composite]);
        assert!(
            report.errors().any(|d| d.code == "D072"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn second_fault_inside_the_first_reports_d074() {
        let (design, workload, _) = fixture();
        // An array second fault after a site fault destroys nothing new.
        let composite = CompositeScenario::SecondFault {
            first: FailureScope::Site,
            second: FailureScope::Array,
            target: RecoveryTarget::Now,
        };
        let report = preflight_with_composites(&design, &workload, &[], &[composite]);
        assert!(
            report
                .warnings()
                .any(|d| d.code == "D074" && d.path == "composites[0].second"),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn redundancy_free_k_out_of_n_reports_d073_and_repair_fixes_it() {
        let workload = crate::presets::cello_workload();
        let scenarios = [FailureScenario::new(
            FailureScope::Array,
            RecoveryTarget::Now,
        )];
        let broken = mutated(&crate::presets::k_out_of_n_design(), |v| {
            // n == k carries no redundancy.
            v["levels"][1]["technique"]["KOutOfN"]["total_fragments"] = serde_json::json!(4);
        });
        let report = preflight_all(&broken, &workload, &scenarios);
        assert!(
            report.errors().any(|d| d.code == "D073" && d.fixable),
            "{:?}",
            report.diagnostics()
        );

        let repaired = repair(&broken, &workload, &scenarios);
        assert!(
            repaired.applied.iter().any(|r| r.code == "D073"),
            "{:?}",
            repaired.applied
        );
        let after = preflight_all(&repaired.design, &workload, &scenarios);
        assert!(!after.has_errors(), "{:?}", after.diagnostics());
    }

    #[test]
    fn summary_counts_pluralize() {
        let report = Preflight {
            diagnostics: vec![Diagnostic::new(
                "D061",
                Severity::Hint,
                "recoverySite",
                "m",
                "s",
                false,
            )],
        };
        assert_eq!(report.summary(), "0 errors, 0 warnings, 1 hint");
        assert!(!report.is_clean());
        assert!(!report.has_errors());
    }
}

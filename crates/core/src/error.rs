//! Error types for design validation and evaluation.

use crate::units::Utilization;
use std::error;
use std::fmt;

/// The error type returned by fallible `ssdep-core` operations.
///
/// Every variant identifies *which* input was unacceptable so that callers
/// (interactive tools, the optimizer) can surface actionable messages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A scalar input failed validation (negative window, zero capacity, …).
    InvalidParameter {
        /// Dotted path naming the offending parameter, e.g.
        /// `"splitMirror.accW"`.
        parameter: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A design referenced a device that was never registered.
    UnknownDevice {
        /// The name used in the dangling reference.
        name: String,
    },
    /// Two devices were registered under the same name.
    DuplicateDevice {
        /// The conflicting name.
        name: String,
    },
    /// The level structure violates the framework's composition
    /// conventions (§3.2.1), e.g. `propW > accW`.
    InconsistentHierarchy {
        /// Zero-based level index at fault.
        level: usize,
        /// Which convention was violated.
        reason: String,
    },
    /// A device's aggregate workload demands exceed its capability
    /// (§3.3.1's global model error).
    Overutilized {
        /// The offending device's name.
        device: String,
        /// Which resource is exhausted.
        resource: ResourceKind,
        /// The computed utilization (> 1).
        utilization: Utilization,
    },
    /// No level of the recovery path retains a retrieval point usable for
    /// the requested recovery target: the data is unrecoverable.
    NoRecoverySource {
        /// Human-readable description of the target that could not be met.
        target: String,
    },
    /// A destroyed device has no spare and no recovery facility exists to
    /// reprovision it, so recovery cannot rebuild the level.
    NoReplacement {
        /// The destroyed device's name.
        device: String,
    },
    /// The failure scenario destroyed every copy, including all secondary
    /// levels, so recovery is impossible.
    AllCopiesLost,
    /// An injected fault could not be mapped onto the design it targets
    /// (unknown device name, out-of-range level, or a scope that touches
    /// nothing in the hierarchy).
    FaultUnresolvable {
        /// Zero-based index of the fault within its plan.
        index: usize,
        /// Why resolution failed.
        reason: String,
    },
    /// A numeric input was NaN or infinite where the model requires a
    /// finite value.
    NonFiniteInput {
        /// Dotted path naming the offending parameter, e.g.
        /// `"faults[0].at"`.
        parameter: String,
    },
}

/// The device resource that an [`Error::Overutilized`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Storage capacity (bytes).
    Capacity,
    /// Transfer bandwidth (bytes/second).
    Bandwidth,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Capacity => f.write_str("capacity"),
            ResourceKind::Bandwidth => f.write_str("bandwidth"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
            Error::UnknownDevice { name } => {
                write!(f, "design references unknown device `{name}`")
            }
            Error::DuplicateDevice { name } => {
                write!(f, "device `{name}` registered more than once")
            }
            Error::InconsistentHierarchy { level, reason } => {
                write!(f, "hierarchy level {level} violates composition conventions: {reason}")
            }
            Error::Overutilized { device, resource, utilization } => {
                write!(
                    f,
                    "device `{device}` {resource} overcommitted at {utilization}"
                )
            }
            Error::NoRecoverySource { target } => {
                write!(f, "no level retains a retrieval point for {target}")
            }
            Error::NoReplacement { device } => {
                write!(
                    f,
                    "device `{device}` was destroyed and has neither a spare nor a recovery facility"
                )
            }
            Error::AllCopiesLost => {
                f.write_str("failure scenario destroys every copy of the data")
            }
            Error::FaultUnresolvable { index, reason } => {
                write!(f, "injected fault #{index} cannot be resolved: {reason}")
            }
            Error::NonFiniteInput { parameter } => {
                write!(f, "parameter `{parameter}` must be a finite number")
            }
        }
    }
}

impl error::Error for Error {}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(parameter: impl Into<String>, reason: impl Into<String>) -> Error {
        Error::InvalidParameter {
            parameter: parameter.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::NonFiniteInput`].
    pub fn non_finite(parameter: impl Into<String>) -> Error {
        Error::NonFiniteInput {
            parameter: parameter.into(),
        }
    }

    /// Convenience constructor for [`Error::FaultUnresolvable`].
    pub fn fault_unresolvable(index: usize, reason: impl Into<String>) -> Error {
        Error::FaultUnresolvable {
            index,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let err = Error::invalid("backup.propW", "must not exceed accW");
        let msg = err.to_string();
        assert!(msg.contains("backup.propW"));
        assert!(msg.starts_with("invalid parameter"));

        let err = Error::Overutilized {
            device: "tape library".into(),
            resource: ResourceKind::Bandwidth,
            utilization: Utilization::from_percent(140.0),
        };
        let msg = err.to_string();
        assert!(msg.contains("tape library"));
        assert!(msg.contains("bandwidth"));
        assert!(msg.contains("140.0%"));
    }

    #[test]
    fn resource_kind_displays() {
        assert_eq!(ResourceKind::Capacity.to_string(), "capacity");
        assert_eq!(ResourceKind::Bandwidth.to_string(), "bandwidth");
    }

    #[test]
    fn fault_unresolvable_display_names_the_fault() {
        let err = Error::fault_unresolvable(3, "unknown device `tape silo`");
        let msg = err.to_string();
        assert!(msg.contains("#3"));
        assert!(msg.contains("tape silo"));
        assert_eq!(
            err,
            Error::FaultUnresolvable {
                index: 3,
                reason: "unknown device `tape silo`".into(),
            }
        );
    }

    #[test]
    fn non_finite_input_display_names_the_parameter() {
        let err = Error::non_finite("faults[0].at");
        let msg = err.to_string();
        assert!(msg.contains("faults[0].at"));
        assert!(msg.contains("finite"));
        assert_eq!(
            err,
            Error::NonFiniteInput {
                parameter: "faults[0].at".into(),
            }
        );
    }
}

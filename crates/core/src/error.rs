//! Error types for design validation and evaluation.

use crate::units::Utilization;
use std::error;
use std::fmt;
use std::time::Duration;

/// The error type returned by fallible `ssdep-core` operations.
///
/// Every variant identifies *which* input was unacceptable so that callers
/// (interactive tools, the optimizer) can surface actionable messages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A scalar input failed validation (negative window, zero capacity, …).
    InvalidParameter {
        /// Dotted path naming the offending parameter, e.g.
        /// `"splitMirror.accW"`.
        parameter: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A design referenced a device that was never registered.
    UnknownDevice {
        /// The name used in the dangling reference.
        name: String,
    },
    /// Two devices were registered under the same name.
    DuplicateDevice {
        /// The conflicting name.
        name: String,
    },
    /// The level structure violates the framework's composition
    /// conventions (§3.2.1), e.g. `propW > accW`.
    InconsistentHierarchy {
        /// Zero-based level index at fault.
        level: usize,
        /// Which convention was violated.
        reason: String,
    },
    /// A device's aggregate workload demands exceed its capability
    /// (§3.3.1's global model error).
    Overutilized {
        /// The offending device's name.
        device: String,
        /// Which resource is exhausted.
        resource: ResourceKind,
        /// The computed utilization (> 1).
        utilization: Utilization,
    },
    /// No level of the recovery path retains a retrieval point usable for
    /// the requested recovery target: the data is unrecoverable.
    NoRecoverySource {
        /// Human-readable description of the target that could not be met.
        target: String,
    },
    /// A destroyed device has no spare and no recovery facility exists to
    /// reprovision it, so recovery cannot rebuild the level.
    NoReplacement {
        /// The destroyed device's name.
        device: String,
    },
    /// The failure scenario destroyed every copy, including all secondary
    /// levels, so recovery is impossible.
    AllCopiesLost,
    /// An injected fault could not be mapped onto the design it targets
    /// (unknown device name, out-of-range level, or a scope that touches
    /// nothing in the hierarchy).
    FaultUnresolvable {
        /// Zero-based index of the fault within its plan.
        index: usize,
        /// Why resolution failed.
        reason: String,
    },
    /// A numeric input was NaN or infinite where the model requires a
    /// finite value.
    NonFiniteInput {
        /// Dotted path naming the offending parameter, e.g.
        /// `"faults[0].at"`.
        parameter: String,
    },
    /// An I/O operation against the outside world (trace files, spec
    /// files, checkpoint journals) failed. Unlike every other variant,
    /// these are [`ErrorClass::Transient`]: the environment — not the
    /// model inputs — rejected the operation, so a retry may succeed.
    Io {
        /// What was being attempted, e.g. `"trace.csv read"`.
        operation: String,
        /// The underlying failure, rendered.
        reason: String,
    },
}

/// Bounded exponential backoff over [`ErrorClass::Transient`] failures.
///
/// `run` invokes an operation up to `1 + max_retries` times, sleeping
/// `base_delay × 2^(attempt-1)` (capped at `max_delay`) between
/// attempts. Permanent errors short-circuit on the first attempt; a
/// transient error that survives every retry is returned with the
/// attempt count appended to its message, so logs show how hard the
/// operation was tried.
///
/// With a [`jitter seed`](RetryPolicy::with_jitter) set, each delay is
/// drawn deterministically from `[backoff/2, backoff]` — callers that
/// retry the same shared fault from many workers (parallel sweeps, serve
/// handlers) salt the draw per task so the herd spreads out instead of
/// re-colliding in lockstep. Without a seed the classic exact-backoff
/// curve applies unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a transient failure is retried (0 = fail fast).
    pub max_retries: u32,
    /// The delay before the first retry.
    pub base_delay: Duration,
    /// The ceiling on any single backoff delay.
    pub max_delay: Duration,
    /// Seed for deterministic delay jitter; `None` keeps the exact
    /// exponential curve.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default 25 ms → 2 s
    /// backoff curve.
    pub const fn new(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            jitter_seed: None,
        }
    }

    /// A policy that retries without sleeping — for tests and for
    /// callers that implement their own pacing.
    pub const fn immediate(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// The same policy with deterministic delay jitter seeded by `seed`.
    pub const fn with_jitter(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = Some(seed);
        self
    }

    /// The backoff delay before retry number `attempt` (1-based).
    ///
    /// With a jitter seed, this is the `salt = 0` draw of
    /// [`delay_for_task`](RetryPolicy::delay_for_task).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        self.delay_for_task(attempt, 0)
    }

    /// The backoff delay before retry number `attempt` (1-based) of the
    /// task identified by `salt`.
    ///
    /// Without a jitter seed, `salt` is ignored and the exact
    /// exponential curve applies. With one, the delay is a deterministic
    /// draw from `[backoff/2, backoff]` keyed by `(seed, salt, attempt)`
    /// — the same inputs always sleep the same amount, but two tasks
    /// retrying the same shared fault desynchronize instead of hammering
    /// it again simultaneously.
    pub fn delay_for_task(&self, attempt: u32, salt: u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let full = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        let Some(seed) = self.jitter_seed else {
            return full;
        };
        let nanos = full.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos < 2 {
            return full;
        }
        let half = nanos / 2;
        let span = nanos - half + 1;
        let draw = splitmix64(
            seed ^ splitmix64(salt.wrapping_add(0x9e37_79b9_7f4a_7c15)) ^ u64::from(attempt),
        );
        Duration::from_nanos(half + draw % span)
    }

    /// Runs `op`, retrying transient failures per the policy.
    ///
    /// # Errors
    ///
    /// Returns the first permanent error, or the last transient error
    /// (annotated with the attempt count) once retries are exhausted.
    pub fn run<T>(&self, op: impl FnMut() -> Result<T, Error>) -> Result<T, Error> {
        self.run_salted(0, op)
    }

    /// [`run`](RetryPolicy::run) with a caller-chosen jitter salt, so
    /// concurrent tasks sharing one policy draw distinct backoff delays.
    ///
    /// # Errors
    ///
    /// As [`run`](RetryPolicy::run).
    pub fn run_salted<T>(
        &self,
        salt: u64,
        mut op: impl FnMut() -> Result<T, Error>,
    ) -> Result<T, Error> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt <= self.max_retries => {
                    let delay = self.delay_for_task(attempt, salt);
                    // An immediate policy's zero backoff is not a sleep
                    // at all — skip the syscall on the retry hot path.
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return Err(e.with_attempts(attempt)),
            }
        }
    }
}

/// SplitMix64: a tiny, well-mixed 64-bit hash used to derive the
/// deterministic retry jitter from `(seed, salt, attempt)`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether an error is worth retrying.
///
/// The evaluation supervisor's retry policy keys off this split:
/// [`ErrorClass::Transient`] failures (I/O against traces, specs, and
/// journals) are retried with bounded exponential backoff, while
/// [`ErrorClass::Permanent`] failures (model and input errors, which are
/// deterministic) are surfaced immediately — retrying them would only
/// repeat the same answer more slowly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The environment failed; the same call may succeed if retried.
    Transient,
    /// The inputs are wrong; retrying cannot change the outcome.
    Permanent,
}

/// The device resource that an [`Error::Overutilized`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Storage capacity (bytes).
    Capacity,
    /// Transfer bandwidth (bytes/second).
    Bandwidth,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Capacity => f.write_str("capacity"),
            ResourceKind::Bandwidth => f.write_str("bandwidth"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
            Error::UnknownDevice { name } => {
                write!(f, "design references unknown device `{name}`")
            }
            Error::DuplicateDevice { name } => {
                write!(f, "device `{name}` registered more than once")
            }
            Error::InconsistentHierarchy { level, reason } => {
                write!(
                    f,
                    "hierarchy level {level} violates composition conventions: {reason}"
                )
            }
            Error::Overutilized {
                device,
                resource,
                utilization,
            } => {
                write!(
                    f,
                    "device `{device}` {resource} overcommitted at {utilization}"
                )
            }
            Error::NoRecoverySource { target } => {
                write!(f, "no level retains a retrieval point for {target}")
            }
            Error::NoReplacement { device } => {
                write!(
                    f,
                    "device `{device}` was destroyed and has neither a spare nor a recovery facility"
                )
            }
            Error::AllCopiesLost => f.write_str("failure scenario destroys every copy of the data"),
            Error::FaultUnresolvable { index, reason } => {
                write!(f, "injected fault #{index} cannot be resolved: {reason}")
            }
            Error::NonFiniteInput { parameter } => {
                write!(f, "parameter `{parameter}` must be a finite number")
            }
            Error::Io { operation, reason } => {
                write!(f, "i/o failure during {operation}: {reason}")
            }
        }
    }
}

impl error::Error for Error {}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(parameter: impl Into<String>, reason: impl Into<String>) -> Error {
        Error::InvalidParameter {
            parameter: parameter.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::NonFiniteInput`].
    pub fn non_finite(parameter: impl Into<String>) -> Error {
        Error::NonFiniteInput {
            parameter: parameter.into(),
        }
    }

    /// Convenience constructor for [`Error::FaultUnresolvable`].
    pub fn fault_unresolvable(index: usize, reason: impl Into<String>) -> Error {
        Error::FaultUnresolvable {
            index,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::Io`].
    pub fn io(operation: impl Into<String>, reason: impl Into<String>) -> Error {
        Error::Io {
            operation: operation.into(),
            reason: reason.into(),
        }
    }

    /// [`Error::io`] with the file the operation touched spelled out in
    /// the operation — ``journal append `/path/to/file` `` — so every I/O
    /// failure names the artifact a user must look at, not just the verb.
    pub fn io_at(
        operation: impl Into<String>,
        path: &std::path::Path,
        reason: impl Into<String>,
    ) -> Error {
        Error::Io {
            operation: format!("{} `{}`", operation.into(), path.display()),
            reason: reason.into(),
        }
    }

    /// The retry classification of this error.
    ///
    /// Only [`Error::Io`] is [`ErrorClass::Transient`]; every model and
    /// input error is deterministic, hence [`ErrorClass::Permanent`].
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::Io { .. } => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }

    /// Whether a retry of the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Annotates an [`Error::Io`] with how many attempts were made
    /// before giving up; other variants pass through unchanged (their
    /// first attempt is definitive).
    pub fn with_attempts(self, attempts: u32) -> Error {
        match self {
            Error::Io { operation, reason } if attempts > 1 => Error::Io {
                operation,
                reason: format!("{reason} (after {attempts} attempts)"),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let err = Error::invalid("backup.propW", "must not exceed accW");
        let msg = err.to_string();
        assert!(msg.contains("backup.propW"));
        assert!(msg.starts_with("invalid parameter"));

        let err = Error::Overutilized {
            device: "tape library".into(),
            resource: ResourceKind::Bandwidth,
            utilization: Utilization::from_percent(140.0),
        };
        let msg = err.to_string();
        assert!(msg.contains("tape library"));
        assert!(msg.contains("bandwidth"));
        assert!(msg.contains("140.0%"));
    }

    #[test]
    fn resource_kind_displays() {
        assert_eq!(ResourceKind::Capacity.to_string(), "capacity");
        assert_eq!(ResourceKind::Bandwidth.to_string(), "bandwidth");
    }

    #[test]
    fn fault_unresolvable_display_names_the_fault() {
        let err = Error::fault_unresolvable(3, "unknown device `tape silo`");
        let msg = err.to_string();
        assert!(msg.contains("#3"));
        assert!(msg.contains("tape silo"));
        assert_eq!(
            err,
            Error::FaultUnresolvable {
                index: 3,
                reason: "unknown device `tape silo`".into(),
            }
        );
    }

    #[test]
    fn io_errors_are_transient_everything_else_permanent() {
        let io = Error::io("trace.csv read", "connection reset");
        assert_eq!(io.class(), ErrorClass::Transient);
        assert!(io.is_transient());
        let msg = io.to_string();
        assert!(msg.contains("trace.csv read"), "{msg}");
        assert!(msg.contains("connection reset"), "{msg}");

        let permanent = [
            Error::invalid("x", "y"),
            Error::UnknownDevice { name: "t".into() },
            Error::AllCopiesLost,
            Error::fault_unresolvable(0, "nothing matches"),
            Error::non_finite("p"),
        ];
        for err in permanent {
            assert_eq!(err.class(), ErrorClass::Permanent, "{err}");
            assert!(!err.is_transient(), "{err}");
        }
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        let policy = RetryPolicy::immediate(3);
        let mut calls = 0;
        let result = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(Error::io("journal read", "interrupted"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn retry_policy_fails_fast_on_permanent_errors() {
        let policy = RetryPolicy::immediate(5);
        let mut calls = 0;
        let err = policy
            .run::<()>(|| {
                calls += 1;
                Err(Error::invalid("x", "deterministically wrong"))
            })
            .unwrap_err();
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert!(!err.to_string().contains("attempts"));
    }

    #[test]
    fn exhausted_retries_surface_the_attempt_count() {
        let policy = RetryPolicy::immediate(2);
        let mut calls = 0;
        let err = policy
            .run::<()>(|| {
                calls += 1;
                Err(Error::io("trace.csv read", "disk flaky"))
            })
            .unwrap_err();
        assert_eq!(calls, 3, "1 attempt + 2 retries");
        let msg = err.to_string();
        assert!(msg.contains("after 3 attempts"), "{msg}");
        assert!(err.is_transient());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(45),
            jitter_seed: None,
        };
        assert_eq!(policy.delay_for(1), Duration::from_millis(10));
        assert_eq!(policy.delay_for(2), Duration::from_millis(20));
        assert_eq!(policy.delay_for(3), Duration::from_millis(40));
        assert_eq!(policy.delay_for(4), Duration::from_millis(45));
        assert_eq!(policy.delay_for(64), Duration::from_millis(45));
        // Salts are inert without a jitter seed.
        assert_eq!(policy.delay_for_task(3, 7), Duration::from_millis(40));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(45),
            jitter_seed: None,
        }
        .with_jitter(42);
        for attempt in 1..=6 {
            let exact = RetryPolicy {
                jitter_seed: None,
                ..policy
            }
            .delay_for(attempt);
            for salt in 0..16u64 {
                let jittered = policy.delay_for_task(attempt, salt);
                assert_eq!(
                    jittered,
                    policy.delay_for_task(attempt, salt),
                    "same (seed, salt, attempt) must sleep the same amount"
                );
                assert!(jittered >= exact / 2, "{jittered:?} < {exact:?}/2");
                assert!(jittered <= exact, "{jittered:?} > {exact:?}");
            }
        }
    }

    #[test]
    fn jitter_desynchronizes_salts_and_seeds() {
        let policy = RetryPolicy::new(4).with_jitter(1);
        let delays: Vec<Duration> = (0..8u64).map(|s| policy.delay_for_task(2, s)).collect();
        assert!(
            delays.windows(2).any(|w| w[0] != w[1]),
            "every salt drew the identical delay: {delays:?}"
        );
        let reseeded = RetryPolicy::new(4).with_jitter(2);
        assert!(
            (0..8u64).any(|s| policy.delay_for_task(2, s) != reseeded.delay_for_task(2, s)),
            "changing the seed never changed a draw"
        );
        // Zero-delay policies stay zero-delay under jitter.
        let instant = RetryPolicy::immediate(2).with_jitter(9);
        assert_eq!(instant.delay_for_task(1, 3), Duration::ZERO);
    }

    #[test]
    fn non_finite_input_display_names_the_parameter() {
        let err = Error::non_finite("faults[0].at");
        let msg = err.to_string();
        assert!(msg.contains("faults[0].at"));
        assert!(msg.contains("finite"));
        assert_eq!(
            err,
            Error::NonFiniteInput {
                parameter: "faults[0].at".into(),
            }
        );
    }
}

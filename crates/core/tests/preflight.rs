//! Property tests over the preflight diagnostics engine.
//!
//! Serde deserialization bypasses the builders' validation, so any
//! mutation of a serialized design is a state `preflight` must survive.
//! Three invariants are checked over randomly mutated baseline designs:
//!
//! 1. `preflight_all` never panics;
//! 2. whatever `StorageDesign::validate` rejects, preflight reports as
//!    at least one error-severity diagnostic (no silent acceptance);
//! 3. `repair`'s output carries no fixable diagnostics on a second
//!    preflight, and a second repair pass applies nothing.

// Test helpers expect on fixture plumbing: a panic is the failure
// report itself.
#![allow(clippy::expect_used)]
use proptest::prelude::*;
use ssdep_core::diagnose::{preflight_all, repair};
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_core::workload::Workload;

fn workload() -> Workload {
    ssdep_core::presets::cello_workload()
}

fn scenarios() -> Vec<FailureScenario> {
    vec![
        FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        ),
        FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
        FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
    ]
}

/// One serde-level mutation of the serialized baseline design.
#[derive(Clone, Debug)]
enum Mutation {
    /// Overwrite a numeric leaf with a hostile value.
    Numeric { path: usize, value: f64 },
    /// Point a level's host at an out-of-range device.
    DanglingHost { level: usize },
    /// Append an out-of-range transport reference.
    DanglingTransport { level: usize },
    /// Copy device 0's name onto device 1.
    DuplicateName,
    /// Drop the whole hierarchy.
    EmptyLevels,
    /// Truncate the hierarchy to its first `keep` levels.
    Truncate { keep: usize },
    /// Zero a retention count.
    ZeroRetention,
}

const NUMERIC_LEAVES: usize = 11;

/// The mutable numeric leaves of the serialized baseline design.
fn numeric_leaf(v: &mut serde_json::Value, index: usize) -> &mut serde_json::Value {
    let full = "full";
    let params = "params";
    match index {
        0 => &mut v["levels"][2]["technique"]["Backup"][full]["propagation_window"],
        1 => &mut v["levels"][2]["technique"]["Backup"][full]["accumulation_window"],
        2 => &mut v["levels"][2]["technique"]["Backup"][full]["cycle_period"],
        3 => &mut v["levels"][2]["technique"]["Backup"][full]["retention_window"],
        4 => &mut v["levels"][1]["technique"]["SplitMirror"][params]["accumulation_window"],
        5 => &mut v["levels"][1]["technique"]["SplitMirror"][params]["propagation_window"],
        6 => &mut v["levels"][3]["technique"]["RemoteVault"][params]["hold_window"],
        7 => &mut v["levels"][3]["technique"]["RemoteVault"][params]["retention_window"],
        8 => &mut v["devices"][0]["spare"]["Dedicated"]["provisioning_time"],
        9 => &mut v["recovery_site"]["provisioning_time"],
        _ => &mut v["recovery_site"]["cost_factor"],
    }
}

const HOSTILE: [f64; 5] = [-1.0, 0.0, -1.0e9, 1.0e9, 1.0e308];

fn apply(value: &mut serde_json::Value, mutation: &Mutation) {
    // An earlier EmptyLevels/Truncate may have removed the level a later
    // mutation targets; skip rather than index out of bounds.
    let levels = value["levels"]
        .as_array_mut()
        .map_or(0, |items| items.len());
    match mutation {
        Mutation::Numeric { path, value: v } => {
            let needed = match path {
                0..=3 => 3,
                4 | 5 => 2,
                6 | 7 => 4,
                _ => 0,
            };
            if levels < needed {
                return;
            }
            *numeric_leaf(value, *path) = serde_json::json!(*v);
        }
        Mutation::DanglingHost { level } => {
            if *level >= levels {
                return;
            }
            value["levels"][*level]["host"] = serde_json::json!(99);
        }
        Mutation::DanglingTransport { level } => {
            if *level >= levels {
                return;
            }
            value["levels"][*level]["transports"]
                .as_array_mut()
                .expect("transports is an array")
                .push(serde_json::json!(99));
        }
        Mutation::DuplicateName => {
            let name = value["devices"][0]["name"].clone();
            value["devices"][1]["name"] = name;
        }
        Mutation::EmptyLevels => {
            value["levels"] = serde_json::json!([]);
        }
        Mutation::Truncate { keep } => {
            value["levels"]
                .as_array_mut()
                .expect("levels is an array")
                .truncate(*keep);
        }
        Mutation::ZeroRetention => {
            if levels < 4 {
                return;
            }
            value["levels"][3]["technique"]["RemoteVault"]["params"]["retention_count"] =
                serde_json::json!(0);
        }
    }
}

fn mutation() -> BoxedStrategy<Mutation> {
    prop_oneof![
        (0..NUMERIC_LEAVES, 0..HOSTILE.len()).prop_map(|(path, choice)| Mutation::Numeric {
            path,
            value: HOSTILE[choice],
        }),
        (0..4usize).prop_map(|level| Mutation::DanglingHost { level }),
        (0..4usize).prop_map(|level| Mutation::DanglingTransport { level }),
        Just(Mutation::DuplicateName),
        Just(Mutation::EmptyLevels),
        (1..4usize).prop_map(|keep| Mutation::Truncate { keep }),
        Just(Mutation::ZeroRetention),
    ]
    .boxed()
}

/// Applies 1–3 mutations to the baseline design and deserializes the
/// result; `None` when the mutated document no longer parses at all
/// (that case belongs to the spec parser, not preflight).
fn mutated(mutations: &[Mutation]) -> Option<StorageDesign> {
    let baseline = ssdep_core::presets::baseline_design();
    let mut value = serde_json::to_value(&baseline).expect("baseline serializes");
    for mutation in mutations {
        apply(&mut value, mutation);
    }
    serde_json::from_value(value).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn preflight_never_panics_and_never_misses_what_validate_rejects(
        first in mutation(),
        second in mutation(),
        count in 1..3usize,
    ) {
        let plan: Vec<Mutation> = [first, second].into_iter().take(count).collect();
        let Some(design) = mutated(&plan) else {
            // The mutation broke serde itself; nothing for preflight.
            return Ok(());
        };
        let report = preflight_all(&design, &workload(), &scenarios());
        if design.validate().is_err() {
            prop_assert!(
                report.has_errors(),
                "validate rejects {plan:?} but preflight found only {:?}",
                report.diagnostics()
            );
        }
    }

    #[test]
    fn repair_output_passes_a_second_preflight(
        first in mutation(),
        second in mutation(),
        count in 1..3usize,
    ) {
        let plan: Vec<Mutation> = [first, second].into_iter().take(count).collect();
        let Some(design) = mutated(&plan) else {
            return Ok(());
        };
        let (workload, scenarios) = (workload(), scenarios());
        let repaired = repair(&design, &workload, &scenarios);
        let after = preflight_all(&repaired.design, &workload, &scenarios);
        let leftover: Vec<_> = after.diagnostics().iter().filter(|d| d.fixable).collect();
        prop_assert!(
            leftover.is_empty(),
            "repair of {plan:?} left fixable diagnostics: {leftover:?}"
        );
        let second_pass = repair(&repaired.design, &workload, &scenarios);
        prop_assert!(
            second_pass.applied.is_empty(),
            "second repair of {plan:?} applied {:?}",
            second_pass.applied
        );
    }
}

//! Calibrating generator locality against a target batch-update-rate
//! curve.
//!
//! Under the hot/cold two-population model, the expected number of unique
//! extents touched in a window is closed-form (each population is an
//! occupancy process), so we can search the `(hot_fraction, hot_extents)`
//! plane directly against the paper's Table 2 targets instead of
//! generating traces per candidate.

use serde::{Deserialize, Serialize};
use ssdep_core::units::{round_to_u64, Bandwidth, Bytes, TimeDelta};

/// Expected unique extents touched within a window of `window_secs`
/// seconds, for a hot/cold update mix.
///
/// With updates arriving Poisson at rate `r` over a population of `n`
/// equally likely extents, the expected occupancy after time `w` is
/// `n(1 − e^{−rw/n})`; the hot and cold populations contribute
/// independently.
pub fn expected_unique_extents(
    window_secs: f64,
    updates_per_sec: f64,
    extent_count: u64,
    hot_fraction: f64,
    hot_extents: u64,
) -> f64 {
    let hot = hot_extents.min(extent_count) as f64;
    let cold = (extent_count - hot_extents.min(extent_count)) as f64;
    let hot_rate = hot_fraction * updates_per_sec;
    let cold_rate = (1.0 - hot_fraction) * updates_per_sec;
    let mut unique = 0.0;
    if hot > 0.0 && hot_rate > 0.0 {
        unique += hot * (1.0 - (-hot_rate * window_secs / hot).exp());
    }
    if cold > 0.0 && cold_rate > 0.0 {
        unique += cold * (1.0 - (-cold_rate * window_secs / cold).exp());
    }
    unique
}

/// One point of the target curve: at windows of `window`, unique updates
/// should arrive at `rate`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitTarget {
    /// The accumulation window.
    pub window: TimeDelta,
    /// The target unique-update rate for that window.
    pub rate: Bandwidth,
}

/// The outcome of a locality fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Fraction of updates routed to the hot set.
    pub hot_fraction: f64,
    /// Number of extents in the hot set.
    pub hot_extents: u64,
    /// Root-mean-square relative error across the targets.
    pub rms_relative_error: f64,
}

/// Searches `(hot_fraction, hot_extents)` for the combination whose
/// analytic batch-update-rate curve best matches `targets` (in RMS
/// relative error), for a generator with the given update rate, extent
/// count, and extent size.
///
/// A coarse log-spaced grid is refined once around the best cell; the
/// whole search is a few thousand closed-form evaluations.
pub fn fit_locality(
    targets: &[FitTarget],
    updates_per_sec: f64,
    extent_count: u64,
    extent_size: Bytes,
) -> FitResult {
    let error_of = |hot_fraction: f64, hot_extents: u64| -> f64 {
        let mut sum = 0.0;
        for target in targets {
            let unique = expected_unique_extents(
                target.window.as_secs(),
                updates_per_sec,
                extent_count,
                hot_fraction,
                hot_extents,
            );
            let predicted = extent_size * unique / target.window;
            let relative = (predicted - target.rate) / target.rate;
            sum += relative * relative;
        }
        (sum / targets.len().max(1) as f64).sqrt()
    };

    let mut best = FitResult {
        hot_fraction: 0.0,
        hot_extents: 0,
        rms_relative_error: error_of(0.0, 0),
    };
    let consider = |hot_fraction: f64, hot_extents: u64, best: &mut FitResult| {
        if hot_extents == 0 || hot_extents >= extent_count {
            return;
        }
        let error = error_of(hot_fraction, hot_extents);
        if error < best.rms_relative_error {
            *best = FitResult {
                hot_fraction,
                hot_extents,
                rms_relative_error: error,
            };
        }
    };

    // Coarse pass: duty fractions × log-spaced hot-set sizes.
    let max_hot = (extent_count / 2).max(2);
    let log_steps = 40;
    for fi in 1..20 {
        let hot_fraction = fi as f64 * 0.05;
        for si in 0..=log_steps {
            let hot = round_to_u64(
                (2.0_f64.ln() + (max_hot as f64).ln() * si as f64 / log_steps as f64).exp(),
            );
            consider(hot_fraction, hot.max(2), &mut best);
        }
    }
    // Refinement around the best cell.
    let center_fraction = best.hot_fraction;
    let center_hot = best.hot_extents.max(2);
    for fi in -5i32..=5 {
        let hot_fraction = (center_fraction + fi as f64 * 0.01).clamp(0.01, 0.99);
        for si in -10i32..=10 {
            let hot = round_to_u64(center_hot as f64 * 1.15_f64.powi(si));
            consider(hot_fraction, hot.max(2), &mut best);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_saturates_at_the_population() {
        let unique = expected_unique_extents(1e12, 10.0, 1000, 0.0, 0);
        assert!((unique - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn occupancy_is_nearly_linear_for_short_windows() {
        // 10 updates/s over a huge population: almost no collisions.
        let unique = expected_unique_extents(60.0, 10.0, 100_000_000, 0.0, 0);
        assert!((unique - 600.0).abs() / 600.0 < 0.01);
    }

    #[test]
    fn hot_population_collapses_long_window_uniqueness() {
        let with_hot = expected_unique_extents(86_400.0, 1.0, 1_000_000, 0.8, 500);
        let without = expected_unique_extents(86_400.0, 1.0, 1_000_000, 0.0, 0);
        assert!(with_hot < without * 0.35);
    }

    #[test]
    fn fit_recovers_a_known_configuration() {
        // Build targets from a known (h, H), then fit them back.
        let (h, hot, n, rate) = (0.6, 1500u64, 1_000_000u64, 0.8);
        let extent = Bytes::from_mib(1.0);
        let targets: Vec<FitTarget> = [60.0, 3600.0, 43_200.0, 86_400.0, 604_800.0]
            .iter()
            .map(|&w| FitTarget {
                window: TimeDelta::from_secs(w),
                rate: extent * expected_unique_extents(w, rate, n, h, hot)
                    / TimeDelta::from_secs(w),
            })
            .collect();
        let result = fit_locality(&targets, rate, n, extent);
        assert!(
            result.rms_relative_error < 0.02,
            "error {}",
            result.rms_relative_error
        );
        assert!((result.hot_fraction - h).abs() < 0.1);
        let ratio = result.hot_extents as f64 / hot as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "hot size {} vs {hot}",
            result.hot_extents
        );
    }

    #[test]
    fn fit_against_cello_targets_is_reasonable() {
        let result = crate::cello::cello_fit();
        assert!(
            result.rms_relative_error < 0.25,
            "cello fit error {}",
            result.rms_relative_error
        );
        assert!(result.hot_fraction > 0.0);
        assert!(result.hot_extents > 0);
    }
}

//! A generator configuration calibrated against the paper's *cello*
//! workload (Table 2).
//!
//! The real cello trace (an HP Labs workgroup file server) is not
//! available, so this module provides the synthetic stand-in: a
//! [`TraceGenerator`] whose measured statistics — 1360 GB, 799 KB/s of
//! updates, 10× bursts, unique-update rates of ~727/350/317 KB/s at
//! 1 min / 12 hr / ≥24 hr windows — approximate Table 2. Because the
//! analytic framework consumes only these statistics, the substitution
//! exercises the same model paths as the original trace.

use crate::estimate;
use crate::fit::{fit_locality, FitResult, FitTarget};
use crate::gen::TraceGenerator;
use ssdep_core::error::Error;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;

/// Extent granularity used for the cello stand-in.
pub fn cello_extent_size() -> Bytes {
    Bytes::from_mib(1.0)
}

/// Number of extents: 1360 GiB at 1 MiB each.
pub fn cello_extent_count() -> u64 {
    1360 * 1024
}

/// Average update arrival rate in extents/second (799 KiB/s over 1 MiB
/// extents).
pub fn cello_updates_per_sec() -> f64 {
    799.0 / 1024.0
}

/// The Table 2 batch-update-rate targets.
pub fn cello_targets() -> Vec<FitTarget> {
    [
        (TimeDelta::from_minutes(1.0), 727.0),
        (TimeDelta::from_hours(12.0), 350.0),
        (TimeDelta::from_hours(24.0), 317.0),
        (TimeDelta::from_hours(48.0), 317.0),
        (TimeDelta::from_weeks(1.0), 317.0),
    ]
    .into_iter()
    .map(|(window, kib)| FitTarget {
        window,
        rate: Bandwidth::from_kib_per_sec(kib),
    })
    .collect()
}

/// Fits the hot/cold locality parameters against [`cello_targets`].
pub fn cello_fit() -> FitResult {
    fit_locality(
        &cello_targets(),
        cello_updates_per_sec(),
        cello_extent_count(),
        cello_extent_size(),
    )
}

/// A trace generator calibrated to cello: Table 2 rates and burstiness,
/// fitted overwrite locality.
// The builder is fed only compile-time calibration constants; a failure
// is a bug in this preset, not a runtime condition to propagate.
#[allow(clippy::expect_used)]
pub fn cello_generator(duration: TimeDelta, seed: u64) -> TraceGenerator {
    let fit = cello_fit();
    TraceGenerator::builder()
        .duration(duration)
        .extent_size(cello_extent_size())
        .extent_count(cello_extent_count())
        .updates_per_sec(cello_updates_per_sec())
        .burst_multiplier(10.0)
        .burst_duty(0.05)
        .mean_burst_secs(30.0)
        .locality(fit.hot_fraction, fit.hot_extents)
        .seed(seed)
        .build()
        .expect("calibrated cello parameters are valid")
}

/// Generates a cello-like trace and measures a [`Workload`] from it —
/// the full substitution pipeline for the paper's Table 2.
///
/// Curve windows longer than the trace are skipped, so short `duration`s
/// yield coarser curves; use at least a few days for the 12/24-hour
/// points.
///
/// # Errors
///
/// Propagates estimator errors (e.g. a duration shorter than one minute).
pub fn measured_cello_workload(duration: TimeDelta, seed: u64) -> Result<Workload, Error> {
    let trace = cello_generator(duration, seed).generate();
    let windows: Vec<TimeDelta> = cello_targets()
        .into_iter()
        .map(|t| t.window)
        .filter(|w| *w <= duration)
        .collect();
    if windows.is_empty() {
        return Err(Error::invalid(
            "cello.duration",
            "must cover at least the one-minute curve window",
        ));
    }
    // Burst detection over the burst-episode timescale: one-second slots
    // would report pure Poisson noise as burstiness at cello's ~0.8
    // updates/second arrival rate.
    estimate::workload_from_trace(
        "cello (synthetic)",
        &trace,
        Bandwidth::from_kib_per_sec(1028.0),
        &windows,
        TimeDelta::from_secs(30.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_hits_the_table_2_average_rate() {
        let trace = cello_generator(TimeDelta::from_hours(12.0), 1).generate();
        let rate = trace.avg_update_rate();
        let target = Bandwidth::from_kib_per_sec(799.0);
        assert!(
            (rate / target - 1.0).abs() < 0.1,
            "measured {rate}, target {target}"
        );
    }

    #[test]
    fn measured_workload_resembles_table_2() {
        // Two days is enough for the 1 min / 12 hr / 24 hr points.
        let workload = measured_cello_workload(TimeDelta::from_days(2.0), 7).unwrap();
        assert_eq!(workload.data_capacity(), Bytes::from_gib(1360.0));

        let update = workload.avg_update_rate().as_kib_per_sec();
        assert!(
            (update - 799.0).abs() / 799.0 < 0.1,
            "update rate {update:.0} KiB/s"
        );

        let minute = workload
            .batch_update_rate(TimeDelta::from_minutes(1.0))
            .as_kib_per_sec();
        assert!(
            (minute - 727.0).abs() / 727.0 < 0.15,
            "1-minute batch rate {minute:.0} KiB/s vs 727"
        );

        let half_day = workload
            .batch_update_rate(TimeDelta::from_hours(12.0))
            .as_kib_per_sec();
        assert!(
            (half_day - 350.0).abs() / 350.0 < 0.35,
            "12-hour batch rate {half_day:.0} KiB/s vs 350"
        );

        let burst = workload.burst_multiplier();
        assert!(burst > 4.0, "burst multiplier {burst:.1} too low");
    }

    #[test]
    fn different_seeds_give_statistically_similar_workloads() {
        let a = measured_cello_workload(TimeDelta::from_hours(6.0), 1).unwrap();
        let b = measured_cello_workload(TimeDelta::from_hours(6.0), 2).unwrap();
        let ra = a.avg_update_rate();
        let rb = b.avg_update_rate();
        assert!((ra / rb - 1.0).abs() < 0.15, "{ra} vs {rb}");
    }

    #[test]
    fn too_short_duration_errors() {
        assert!(measured_cello_workload(TimeDelta::from_secs(30.0), 1).is_err());
    }
}

//! # ssdep-workload — synthetic update traces and workload estimation
//!
//! The dependability framework in [`ssdep_core`] consumes workloads as
//! summary statistics: data capacity, average access/update rates, a
//! burst multiplier, and the batch-update-rate curve `batchUpdR(win)`
//! (paper §3.1.1, Table 2). The paper measured those statistics from the
//! *cello* workgroup file server trace, which is not publicly available —
//! this crate substitutes for it:
//!
//! * [`trace`] — a block-extent update trace representation;
//! * [`gen`] — a deterministic, seedable synthetic trace generator with
//!   ON/OFF burstiness and hot/cold overwrite locality;
//! * [`estimate`] — estimators that *measure* `avgUpdateR`, `burstM`, and
//!   `batchUpdR(win)` from any trace (synthetic or converted from real
//!   logs) and package them as an [`ssdep_core::Workload`];
//! * [`fit`] — calibration: search generator parameters until the
//!   measured statistics match a target curve;
//! * [`cello`] — a generator configuration calibrated against the
//!   paper's Table 2.
//!
//! Because the analytic models consume only the summary statistics, any
//! trace whose measured statistics match the paper's exercises exactly
//! the same model code paths — that is what makes the substitution sound.
//!
//! ```
//! use ssdep_workload::gen::TraceGenerator;
//! use ssdep_workload::estimate;
//! use ssdep_core::units::TimeDelta;
//!
//! let trace = TraceGenerator::builder()
//!     .duration(TimeDelta::from_hours(2.0))
//!     .extent_count(10_000)
//!     .updates_per_sec(5.0)
//!     .seed(7)
//!     .build()
//!     .expect("valid generator parameters")
//!     .generate();
//! let rate = estimate::avg_update_rate(&trace);
//! assert!(rate.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cello;
pub mod estimate;
pub mod fit;
pub mod gen;
pub mod io;
pub mod trace;

pub use gen::TraceGenerator;
pub use trace::{Trace, UpdateRecord};

//! Deterministic synthetic trace generation.
//!
//! The generator produces update traces with the two properties the
//! dependability models care about:
//!
//! * **burstiness** — an ON/OFF modulated arrival process: most of the
//!   time updates arrive at a low base rate, and during burst episodes at
//!   `burst_multiplier ×` the average, with the duty cycle chosen so the
//!   long-run average matches the configured rate;
//! * **overwrite locality** — a hot/cold two-population model: a fraction
//!   of updates lands on a small hot set of extents, so longer
//!   accumulation windows absorb progressively more overwrites and the
//!   measured `batchUpdR(win)` declines with the window, exactly as the
//!   paper's Table 2 curve does.
//!
//! Generation is slot-based (one-second slots), seeded, and fully
//! deterministic: the same parameters and seed always produce the same
//! trace.

use crate::trace::{Trace, UpdateRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssdep_core::error::Error;
use ssdep_core::units::{round_to_u64, Bandwidth, Bytes, TimeDelta};

/// A configured, seedable trace generator. Build with
/// [`TraceGenerator::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenerator {
    duration: TimeDelta,
    extent_size: Bytes,
    extent_count: u64,
    updates_per_sec: f64,
    burst_multiplier: f64,
    burst_duty: f64,
    mean_burst_secs: f64,
    hot_fraction: f64,
    hot_extents: u64,
    diurnal_amplitude: f64,
    seed: u64,
}

impl TraceGenerator {
    /// Starts building a generator.
    ///
    /// Defaults: 1 MiB extents, no burstiness (`burst_multiplier = 1`),
    /// 5 % burst duty cycle, one-minute mean bursts, no locality
    /// (`hot_fraction = 0`), seed 0.
    pub fn builder() -> TraceGeneratorBuilder {
        TraceGeneratorBuilder {
            duration: None,
            extent_size: Bytes::from_mib(1.0),
            extent_count: None,
            updates_per_sec: None,
            burst_multiplier: 1.0,
            burst_duty: 0.05,
            mean_burst_secs: 60.0,
            hot_fraction: 0.0,
            hot_extents: 0,
            diurnal_amplitude: 0.0,
            seed: 0,
        }
    }

    /// The average update rate the generator aims for, in bytes/second.
    pub fn target_update_rate(&self) -> Bandwidth {
        (self.extent_size * self.updates_per_sec) / TimeDelta::from_secs(1.0)
    }

    /// The configured dataset capacity.
    pub fn data_capacity(&self) -> Bytes {
        self.extent_size * self.extent_count as f64
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_slots = self.duration.whole_secs();

        // Rates for the two states, preserving the long-run average:
        // avg = duty × peak + (1 − duty) × low.
        let peak = self.updates_per_sec * self.burst_multiplier;
        let low = if self.burst_duty < 1.0 {
            (self.updates_per_sec - self.burst_duty * peak) / (1.0 - self.burst_duty)
        } else {
            self.updates_per_sec
        };
        // State machine with the configured mean burst length and duty.
        let exit_prob = 1.0 / self.mean_burst_secs.max(1.0);
        let enter_prob = if self.burst_duty >= 1.0 {
            1.0
        } else {
            (self.burst_duty * exit_prob / (1.0 - self.burst_duty)).min(1.0)
        };

        let mut bursting = false;
        let mut records = Vec::new();
        const DAY_SECS: f64 = 24.0 * 3600.0;
        for slot in 0..total_slots {
            bursting = if bursting {
                rng.random::<f64>() >= exit_prob
            } else {
                rng.random::<f64>() < enter_prob
            };
            let mut rate = if bursting { peak } else { low };
            if self.diurnal_amplitude > 0.0 {
                // Sinusoidal day/night modulation; amplitude < 1 keeps
                // the rate positive and the long-run average unchanged.
                let phase = 2.0 * std::f64::consts::PI * (slot as f64) / DAY_SECS;
                rate *= 1.0 + self.diurnal_amplitude * phase.sin();
            }
            let count = sample_poisson(&mut rng, rate);
            let mut offsets: Vec<f64> = (0..count).map(|_| rng.random::<f64>()).collect();
            offsets.sort_by(f64::total_cmp);
            for offset in offsets {
                let extent = self.pick_extent(&mut rng);
                records.push(UpdateRecord {
                    time: slot as f64 + offset,
                    extent,
                });
            }
        }
        Trace::from_sorted_records(self.extent_size, self.extent_count, self.duration, records)
    }

    fn pick_extent(&self, rng: &mut StdRng) -> u64 {
        let hot = self.hot_extents.min(self.extent_count);
        if hot > 0 && rng.random::<f64>() < self.hot_fraction {
            rng.random_range(0..hot)
        } else if self.extent_count > hot {
            rng.random_range(hot..self.extent_count)
        } else {
            rng.random_range(0..self.extent_count)
        }
    }
}

/// Draws from a Poisson distribution (Knuth's method below λ = 30, a
/// clamped normal approximation above).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let threshold = (-lambda).exp();
        let mut product = rng.random::<f64>();
        let mut count = 0u64;
        while product > threshold {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        // Box-Muller normal approximation N(λ, λ).
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        round_to_u64(lambda + lambda.sqrt() * normal)
    }
}

/// Incremental builder for [`TraceGenerator`].
#[derive(Debug, Clone)]
pub struct TraceGeneratorBuilder {
    duration: Option<TimeDelta>,
    extent_size: Bytes,
    extent_count: Option<u64>,
    updates_per_sec: Option<f64>,
    burst_multiplier: f64,
    burst_duty: f64,
    mean_burst_secs: f64,
    hot_fraction: f64,
    hot_extents: u64,
    diurnal_amplitude: f64,
    seed: u64,
}

impl TraceGeneratorBuilder {
    /// Sets the trace duration (required).
    pub fn duration(mut self, duration: TimeDelta) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Sets the extent size (default 1 MiB).
    pub fn extent_size(mut self, size: Bytes) -> Self {
        self.extent_size = size;
        self
    }

    /// Sets the number of extents in the dataset (required).
    pub fn extent_count(mut self, count: u64) -> Self {
        self.extent_count = Some(count);
        self
    }

    /// Sets the long-run average update arrival rate, in extents per
    /// second (required).
    pub fn updates_per_sec(mut self, rate: f64) -> Self {
        self.updates_per_sec = Some(rate);
        self
    }

    /// Sets the peak-to-average burst ratio (default 1 = no bursts).
    pub fn burst_multiplier(mut self, multiplier: f64) -> Self {
        self.burst_multiplier = multiplier;
        self
    }

    /// Sets the fraction of time spent bursting (default 0.05). Must
    /// satisfy `duty × multiplier ≤ 1` so the off-state rate stays
    /// non-negative.
    pub fn burst_duty(mut self, duty: f64) -> Self {
        self.burst_duty = duty;
        self
    }

    /// Sets the mean burst episode length in seconds (default 60).
    pub fn mean_burst_secs(mut self, secs: f64) -> Self {
        self.mean_burst_secs = secs;
        self
    }

    /// Routes `fraction` of updates onto a hot set of `extents` extents
    /// (default: no locality).
    pub fn locality(mut self, fraction: f64, extents: u64) -> Self {
        self.hot_fraction = fraction;
        self.hot_extents = extents;
        self
    }

    /// Modulates the arrival rate sinusoidally over a 24-hour period
    /// with relative amplitude `amplitude` in `[0, 1)` (default 0 = no
    /// day/night pattern). The long-run average is unchanged.
    pub fn diurnal_amplitude(mut self, amplitude: f64) -> Self {
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the RNG seed (default 0). Identical parameters + seed give
    /// identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the generator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for missing or non-physical
    /// parameters (zero extents, negative rates, `duty × burst > 1`,
    /// hot set larger than the dataset, …).
    pub fn build(self) -> Result<TraceGenerator, Error> {
        let duration = self
            .duration
            .ok_or_else(|| Error::invalid("gen.duration", "missing"))?;
        if !(duration.value() > 0.0 && duration.is_finite()) {
            return Err(Error::invalid(
                "gen.duration",
                "must be positive and finite",
            ));
        }
        let extent_count = self
            .extent_count
            .ok_or_else(|| Error::invalid("gen.extentCount", "missing"))?;
        if extent_count == 0 {
            return Err(Error::invalid("gen.extentCount", "must be at least 1"));
        }
        if !(self.extent_size.value() > 0.0 && self.extent_size.is_finite()) {
            return Err(Error::invalid(
                "gen.extentSize",
                "must be positive and finite",
            ));
        }
        let updates_per_sec = self
            .updates_per_sec
            .ok_or_else(|| Error::invalid("gen.updatesPerSec", "missing"))?;
        if !(updates_per_sec >= 0.0 && updates_per_sec.is_finite()) {
            return Err(Error::invalid(
                "gen.updatesPerSec",
                "must be non-negative and finite",
            ));
        }
        if !(self.burst_multiplier >= 1.0 && self.burst_multiplier.is_finite()) {
            return Err(Error::invalid(
                "gen.burstMultiplier",
                "must be >= 1 and finite",
            ));
        }
        if !(0.0 < self.burst_duty && self.burst_duty <= 1.0) {
            return Err(Error::invalid("gen.burstDuty", "must be in (0, 1]"));
        }
        if self.burst_duty * self.burst_multiplier > 1.0 + 1e-12 {
            return Err(Error::invalid(
                "gen.burstDuty",
                "duty × multiplier must not exceed 1, or the off-state rate goes negative",
            ));
        }
        if !(self.mean_burst_secs > 0.0 && self.mean_burst_secs.is_finite()) {
            return Err(Error::invalid(
                "gen.meanBurstSecs",
                "must be positive and finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(Error::invalid("gen.hotFraction", "must be in [0, 1]"));
        }
        if self.hot_fraction > 0.0 && (self.hot_extents == 0 || self.hot_extents >= extent_count) {
            return Err(Error::invalid(
                "gen.hotExtents",
                "locality needs a hot set larger than 0 and smaller than the dataset",
            ));
        }
        if !((0.0..1.0).contains(&self.diurnal_amplitude)) {
            return Err(Error::invalid(
                "gen.diurnalAmplitude",
                "must be in [0, 1) to keep the rate positive",
            ));
        }
        Ok(TraceGenerator {
            duration,
            extent_size: self.extent_size,
            extent_count,
            updates_per_sec,
            burst_multiplier: self.burst_multiplier,
            burst_duty: self.burst_duty,
            mean_burst_secs: self.mean_burst_secs,
            hot_fraction: self.hot_fraction,
            hot_extents: self.hot_extents,
            diurnal_amplitude: self.diurnal_amplitude,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TraceGeneratorBuilder {
        TraceGenerator::builder()
            .duration(TimeDelta::from_hours(2.0))
            .extent_count(50_000)
            .updates_per_sec(5.0)
            .seed(42)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = base().build().unwrap().generate();
        let b = base().build().unwrap().generate();
        assert_eq!(a, b);
        let c = base().seed(43).build().unwrap().generate();
        assert_ne!(a, c);
    }

    #[test]
    fn average_rate_is_close_to_target() {
        let trace = base().build().unwrap().generate();
        let per_sec = trace.records().len() as f64 / trace.duration().as_secs();
        assert!(
            (per_sec - 5.0).abs() / 5.0 < 0.05,
            "generated {per_sec:.2} updates/s, wanted 5"
        );
    }

    #[test]
    fn bursts_raise_peak_but_not_average() {
        let bursty = base()
            .duration(TimeDelta::from_hours(12.0))
            .burst_multiplier(10.0)
            .burst_duty(0.05)
            .build()
            .unwrap()
            .generate();
        let per_sec = bursty.records().len() as f64 / bursty.duration().as_secs();
        // Burst episodes are random, so the realized duty (and hence the
        // average) wobbles; a 12-hour trace keeps it within ~15 %.
        assert!(
            (per_sec - 5.0).abs() / 5.0 < 0.15,
            "average drifted to {per_sec:.2}"
        );
        // Some one-second slot should see nearly the 10× peak.
        let mut max_slot = 0usize;
        let mut slot_counts = vec![0usize; bursty.duration().as_secs() as usize];
        for r in bursty.records() {
            slot_counts[r.time as usize] += 1;
            max_slot = max_slot.max(slot_counts[r.time as usize]);
        }
        assert!(max_slot as f64 > 5.0 * 4.0, "peak slot only {max_slot}");
    }

    #[test]
    fn locality_concentrates_updates_on_the_hot_set() {
        let trace = base().locality(0.8, 100).build().unwrap().generate();
        let hot_hits = trace.records().iter().filter(|r| r.extent < 100).count();
        let fraction = hot_hits as f64 / trace.records().len() as f64;
        assert!((fraction - 0.8).abs() < 0.05, "hot fraction {fraction:.2}");
    }

    #[test]
    fn records_are_time_ordered_and_in_range() {
        let trace = base()
            .locality(0.5, 1000)
            .burst_multiplier(5.0)
            .build()
            .unwrap()
            .generate();
        let mut last = 0.0;
        for r in trace.records() {
            assert!(r.time >= last);
            assert!(r.extent < 50_000);
            last = r.time;
        }
    }

    #[test]
    fn poisson_sampler_matches_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda {lambda}: mean {mean:.3}"
            );
        }
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(TraceGenerator::builder().build().is_err());
        assert!(base()
            .burst_multiplier(10.0)
            .burst_duty(0.5)
            .build()
            .is_err());
        assert!(base().locality(0.5, 0).build().is_err());
        assert!(base().locality(1.5, 10).build().is_err());
        assert!(base().updates_per_sec(-1.0).build().is_err());
    }

    #[test]
    fn diurnal_modulation_creates_day_night_contrast() {
        let trace = base()
            .duration(TimeDelta::from_days(2.0))
            .updates_per_sec(20.0)
            .diurnal_amplitude(0.8)
            .build()
            .unwrap()
            .generate();
        // "Day" = first quarter of each cycle (sin > 0 peak region),
        // "night" = third quarter.
        let quarter = 6.0 * 3600.0;
        let count_in = |start: f64, end: f64| trace.slice(start, end).count() as f64;
        let day = count_in(0.0, quarter) + count_in(86_400.0, 86_400.0 + quarter);
        let night = count_in(2.0 * quarter, 3.0 * quarter)
            + count_in(86_400.0 + 2.0 * quarter, 86_400.0 + 3.0 * quarter);
        assert!(day > night * 2.0, "day {day} vs night {night}");
        // Long-run average preserved within tolerance.
        let per_sec = trace.records().len() as f64 / trace.duration().as_secs();
        assert!((per_sec - 20.0).abs() / 20.0 < 0.1, "average {per_sec:.1}");
    }

    #[test]
    fn diurnal_amplitude_must_stay_below_one() {
        assert!(base().diurnal_amplitude(1.0).build().is_err());
        assert!(base().diurnal_amplitude(-0.1).build().is_err());
        assert!(base().diurnal_amplitude(0.99).build().is_ok());
    }

    #[test]
    fn zero_rate_gives_empty_trace() {
        let trace = base().updates_per_sec(0.0).build().unwrap().generate();
        assert!(trace.records().is_empty());
    }
}

//! Measuring workload statistics from a trace (the inverse of what the
//! paper did with the real *cello* trace).
//!
//! The estimators compute exactly the parameters of the paper's Table 2:
//! average update rate, burst multiplier (peak slot rate over average),
//! and the batch update rate `batchUpdR(win)` — the unique-extent update
//! rate per accumulation window, averaged over all whole windows in the
//! trace.

use crate::trace::Trace;
use ssdep_core::error::Error;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;
use std::collections::HashSet;

/// The average (non-unique) update rate over the whole trace.
pub fn avg_update_rate(trace: &Trace) -> Bandwidth {
    trace.avg_update_rate()
}

/// The burst multiplier: the busiest `slot`'s update rate divided by the
/// trace average. Returns 1 for empty traces.
pub fn burst_multiplier(trace: &Trace, slot: TimeDelta) -> f64 {
    let avg = trace.avg_update_rate();
    if avg.value() <= 0.0 || slot.value() <= 0.0 {
        return 1.0;
    }
    let slot_secs = slot.as_secs();
    let slots = trace.duration().whole_divisions(slot);
    let mut counts = vec![0u64; slots as usize];
    for record in trace.records() {
        let index = (record.time / slot_secs) as usize;
        if index < counts.len() {
            counts[index] += 1;
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(0);
    let peak_rate = trace.extent_size() * peak as f64 / slot;
    (peak_rate / avg).max(1.0)
}

/// Average unique bytes updated per window of length `window`, over all
/// whole windows in the trace.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if the trace is shorter than one
/// window.
pub fn unique_bytes_per_window(trace: &Trace, window: TimeDelta) -> Result<Bytes, Error> {
    if window.value() <= 0.0 {
        return Err(Error::invalid("estimate.window", "must be positive"));
    }
    let window_secs = window.as_secs();
    let windows = trace.duration().whole_divisions(window);
    if windows == 0 {
        return Err(Error::invalid(
            "estimate.window",
            format!(
                "trace ({}) is shorter than one window ({window})",
                trace.duration()
            ),
        ));
    }
    let mut total_unique = 0u64;
    let mut seen: HashSet<u64> = HashSet::new();
    for index in 0..windows {
        seen.clear();
        let start = index as f64 * window_secs;
        for record in trace.slice(start, start + window_secs) {
            seen.insert(record.extent);
        }
        total_unique += seen.len() as u64;
    }
    Ok(trace.extent_size() * (total_unique as f64 / windows as f64))
}

/// The batch update rate for windows of length `window`:
/// unique bytes per window divided by the window length.
///
/// # Errors
///
/// As [`unique_bytes_per_window`].
pub fn batch_update_rate(trace: &Trace, window: TimeDelta) -> Result<Bandwidth, Error> {
    Ok(unique_bytes_per_window(trace, window)? / window)
}

/// A measured batch-update-rate curve, repaired to the physical
/// monotonicity the [`Workload`] builder requires.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCurve {
    /// `(window, rate)` points, windows ascending, rates non-increasing.
    pub points: Vec<(TimeDelta, Bandwidth)>,
}

/// Measures the batch update rate at each requested window and repairs
/// sampling noise so the curve satisfies the builder's invariants:
/// rates non-increasing with window, unique bytes non-decreasing, and no
/// rate above the trace's average update rate.
///
/// # Errors
///
/// As [`unique_bytes_per_window`] for each window.
pub fn measure_curve(trace: &Trace, windows: &[TimeDelta]) -> Result<MeasuredCurve, Error> {
    let mut sorted: Vec<TimeDelta> = windows.to_vec();
    sorted.sort_by(|a, b| a.value().total_cmp(&b.value()));
    sorted.dedup();
    let avg = trace.avg_update_rate();

    let mut points = Vec::with_capacity(sorted.len());
    let mut prev_rate = avg;
    let mut prev_bytes = Bytes::ZERO;
    for window in sorted {
        let mut rate = batch_update_rate(trace, window)?;
        // Repair: unique rate can never exceed the average update rate,
        // must not increase with the window, and the implied unique
        // bytes must not shrink.
        rate = rate.min(prev_rate).min(avg);
        let mut bytes = rate * window;
        if bytes < prev_bytes {
            bytes = prev_bytes;
            rate = bytes / window;
        }
        points.push((window, rate));
        prev_rate = rate;
        prev_bytes = bytes;
    }
    Ok(MeasuredCurve { points })
}

/// Measures a complete [`Workload`] description from a trace.
///
/// `access_rate` supplies the read+write access rate (traces record only
/// updates); `burst_slot` is the peak-detection slot for the burst
/// multiplier (the paper's burstiness is quoted against short peaks —
/// one second is a reasonable default).
///
/// # Errors
///
/// Propagates estimator and [`Workload`] builder errors.
pub fn workload_from_trace(
    name: &str,
    trace: &Trace,
    access_rate: Bandwidth,
    windows: &[TimeDelta],
    burst_slot: TimeDelta,
) -> Result<Workload, Error> {
    let curve = measure_curve(trace, windows)?;
    let mut builder = Workload::builder(name)
        .data_capacity(trace.data_capacity())
        .avg_access_rate(access_rate.max(trace.avg_update_rate()))
        .avg_update_rate(trace.avg_update_rate())
        .burst_multiplier(burst_multiplier(trace, burst_slot));
    for (window, rate) in curve.points {
        builder = builder.batch_rate(window, rate);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::trace::UpdateRecord;

    fn hand_trace() -> Trace {
        // Ten seconds, four extents; extent 0 hammered.
        Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![
                UpdateRecord {
                    time: 0.5,
                    extent: 0,
                },
                UpdateRecord {
                    time: 1.5,
                    extent: 0,
                },
                UpdateRecord {
                    time: 2.5,
                    extent: 1,
                },
                UpdateRecord {
                    time: 3.5,
                    extent: 0,
                },
                UpdateRecord {
                    time: 6.0,
                    extent: 2,
                },
                UpdateRecord {
                    time: 9.5,
                    extent: 0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn unique_counting_on_a_hand_trace() {
        let trace = hand_trace();
        // One 10 s window: extents {0,1,2} unique → 3 MiB.
        let unique = unique_bytes_per_window(&trace, TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(unique, Bytes::from_mib(3.0));
        // Two 5 s windows: {0,1} and {2,0} → average 2 MiB.
        let unique = unique_bytes_per_window(&trace, TimeDelta::from_secs(5.0)).unwrap();
        assert_eq!(unique, Bytes::from_mib(2.0));
    }

    #[test]
    fn batch_rate_declines_with_window_on_hot_traces() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(4.0))
            .extent_count(20_000)
            .updates_per_sec(10.0)
            .locality(0.9, 200)
            .seed(11)
            .build()
            .unwrap()
            .generate();
        let short = batch_update_rate(&trace, TimeDelta::from_secs(10.0)).unwrap();
        let long = batch_update_rate(&trace, TimeDelta::from_hours(1.0)).unwrap();
        assert!(
            long < short * 0.5,
            "long-window rate {long} not well below short-window {short}"
        );
    }

    #[test]
    fn uniform_traces_barely_dedup() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(1.0))
            .extent_count(10_000_000)
            .updates_per_sec(5.0)
            .seed(3)
            .build()
            .unwrap()
            .generate();
        let short = batch_update_rate(&trace, TimeDelta::from_secs(60.0)).unwrap();
        let long = batch_update_rate(&trace, TimeDelta::from_minutes(30.0)).unwrap();
        assert!(
            long > short * 0.95,
            "uniform trace dedup should be negligible"
        );
    }

    #[test]
    fn burst_multiplier_sees_bursts() {
        let quiet = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(1.0))
            .extent_count(10_000)
            .updates_per_sec(20.0)
            .seed(5)
            .build()
            .unwrap()
            .generate();
        let bursty = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(1.0))
            .extent_count(10_000)
            .updates_per_sec(20.0)
            .burst_multiplier(10.0)
            .burst_duty(0.05)
            .seed(5)
            .build()
            .unwrap()
            .generate();
        let slot = TimeDelta::from_secs(1.0);
        let quiet_burst = burst_multiplier(&quiet, slot);
        let bursty_burst = burst_multiplier(&bursty, slot);
        assert!(
            bursty_burst > quiet_burst * 2.0,
            "{bursty_burst:.1} vs {quiet_burst:.1}"
        );
        assert!(bursty_burst > 6.0);
    }

    #[test]
    fn measured_curve_is_monotone_even_with_noise() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(6.0))
            .extent_count(30_000)
            .updates_per_sec(3.0)
            .locality(0.7, 500)
            .seed(9)
            .build()
            .unwrap()
            .generate();
        let windows: Vec<TimeDelta> = [30.0, 60.0, 300.0, 1800.0, 3600.0, 7200.0]
            .iter()
            .map(|s| TimeDelta::from_secs(*s))
            .collect();
        let curve = measure_curve(&trace, &windows).unwrap();
        for pair in curve.points.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "rates must not increase");
            assert!(
                pair[1].1 * pair[1].0 >= pair[0].1 * pair[0].0,
                "bytes must not shrink"
            );
        }
        assert!(curve.points[0].1 <= trace.avg_update_rate());
    }

    #[test]
    fn workload_from_trace_builds_a_valid_workload() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_hours(6.0))
            .extent_count(30_000)
            .updates_per_sec(3.0)
            .locality(0.7, 500)
            .burst_multiplier(8.0)
            .seed(10)
            .build()
            .unwrap()
            .generate();
        let windows = [TimeDelta::from_minutes(1.0), TimeDelta::from_hours(1.0)];
        let workload = workload_from_trace(
            "synthetic",
            &trace,
            Bandwidth::from_mib_per_sec(5.0),
            &windows,
            TimeDelta::from_secs(1.0),
        )
        .unwrap();
        assert_eq!(workload.data_capacity(), trace.data_capacity());
        assert!(workload.burst_multiplier() > 1.0);
        assert!(
            workload.batch_update_rate(TimeDelta::from_hours(1.0)) < workload.avg_update_rate()
        );
    }

    #[test]
    fn window_longer_than_trace_is_rejected() {
        let trace = hand_trace();
        assert!(unique_bytes_per_window(&trace, TimeDelta::from_secs(60.0)).is_err());
        assert!(unique_bytes_per_window(&trace, TimeDelta::ZERO).is_err());
    }
}

//! Importing and exporting traces as CSV.
//!
//! Real deployments have block-level write logs (blktrace, array audit
//! logs); converting them to [`Trace`]s lets the estimators measure a
//! [`Workload`](ssdep_core::workload::Workload) from production data
//! rather than synthetic substitutes. The format is deliberately
//! trivial — one `time_secs,extent` pair per line with a three-field
//! header describing the dataset geometry:
//!
//! ```text
//! # ssdep-trace,extent_bytes=1048576,extent_count=1392640,duration_secs=604800
//! 0.413,17
//! 0.922,93001
//! ```

use crate::trace::{Trace, UpdateRecord};
use ssdep_core::error::{Error, RetryPolicy};
use ssdep_core::units::{Bytes, TimeDelta};
use std::io::{BufRead, Write};
use std::path::Path;

const HEADER_TAG: &str = "# ssdep-trace";

/// Writes `trace` in the CSV format.
///
/// # Errors
///
/// Returns the transient [`Error::Io`] wrapping the underlying I/O
/// failure.
pub fn write_csv<W: Write>(trace: &Trace, mut writer: W) -> Result<(), Error> {
    let io = |e: std::io::Error| Error::io("trace.csv write", e.to_string());
    writeln!(
        writer,
        "{HEADER_TAG},extent_bytes={},extent_count={},duration_secs={}",
        trace.extent_size().value(),
        trace.extent_count(),
        trace.duration().as_secs()
    )
    .map_err(io)?;
    for record in trace.records() {
        writeln!(writer, "{},{}", record.time, record.extent).map_err(io)?;
    }
    Ok(())
}

/// Reads a trace from the CSV format.
///
/// # Errors
///
/// Returns the transient [`Error::Io`] for underlying I/O failures, and
/// the permanent [`Error::InvalidParameter`] for a missing or malformed
/// header, unparsable rows, out-of-order timestamps, or out-of-range
/// extents — content errors are deterministic and must not be retried.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Trace, Error> {
    let io = |e: std::io::Error| Error::io("trace.csv read", e.to_string());
    let mut lines = reader.lines();

    let header = lines
        .next()
        .ok_or_else(|| Error::invalid("trace.csv", "empty input"))?
        .map_err(io)?;
    if !header.starts_with(HEADER_TAG) {
        return Err(Error::invalid(
            "trace.csv",
            format!("missing `{HEADER_TAG}` header"),
        ));
    }
    let mut extent_bytes = None;
    let mut extent_count = None;
    let mut duration_secs = None;
    for field in header.split(',').skip(1) {
        let Some((key, value)) = field.split_once('=') else {
            return Err(Error::invalid(
                "trace.csv",
                format!("malformed header field `{field}`"),
            ));
        };
        match key.trim() {
            "extent_bytes" => extent_bytes = value.trim().parse::<f64>().ok(),
            "extent_count" => extent_count = value.trim().parse::<u64>().ok(),
            "duration_secs" => duration_secs = value.trim().parse::<f64>().ok(),
            other => {
                return Err(Error::invalid(
                    "trace.csv",
                    format!("unknown header field `{other}`"),
                ))
            }
        }
    }
    let extent_bytes =
        extent_bytes.ok_or_else(|| Error::invalid("trace.csv", "header missing extent_bytes"))?;
    let extent_count =
        extent_count.ok_or_else(|| Error::invalid("trace.csv", "header missing extent_count"))?;
    let duration_secs =
        duration_secs.ok_or_else(|| Error::invalid("trace.csv", "header missing duration_secs"))?;

    let mut records = Vec::new();
    let mut last_time = 0.0f64;
    for (number, line) in lines.enumerate() {
        let line = line.map_err(io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row = number + 2; // 1-based, after the header
        let Some((time, extent)) = trimmed.split_once(',') else {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: expected `time,extent`"),
            ));
        };
        let time: f64 = time
            .trim()
            .parse()
            .map_err(|e| Error::invalid("trace.csv", format!("row {row}: bad time: {e}")))?;
        let extent: u64 = extent
            .trim()
            .parse()
            .map_err(|e| Error::invalid("trace.csv", format!("row {row}: bad extent: {e}")))?;
        if time < last_time {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: timestamps must be non-decreasing"),
            ));
        }
        if time > duration_secs {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: timestamp beyond the declared duration"),
            ));
        }
        if extent >= extent_count {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: extent {extent} out of range"),
            ));
        }
        last_time = time;
        records.push(UpdateRecord { time, extent });
    }

    Trace::from_records(
        Bytes::from_bytes(extent_bytes),
        extent_count,
        TimeDelta::from_secs(duration_secs),
        records,
    )
}

/// Reads a trace from a file, retrying transient I/O failures with
/// bounded exponential backoff.
///
/// Opening and reading the file can fail transiently (network
/// filesystems, contended spindles, interrupted syscalls); those
/// attempts are repeated per `policy`, and an error that survives every
/// retry carries the attempt count in its message. Content errors
/// (malformed header, bad rows) are permanent and fail on the first
/// attempt.
///
/// # Errors
///
/// As [`read_csv`], with transient failures retried first.
pub fn read_csv_path(path: impl AsRef<Path>, policy: RetryPolicy) -> Result<Trace, Error> {
    let path = path.as_ref();
    policy.run(|| {
        let file = std::fs::File::open(path)
            .map_err(|e| Error::io(format!("trace open `{}`", path.display()), e.to_string()))?;
        read_csv(std::io::BufReader::new(file))
    })
}

/// Writes a trace to a file, retrying transient I/O failures with
/// bounded exponential backoff (see [`read_csv_path`]).
///
/// # Errors
///
/// As [`write_csv`], with transient failures retried first.
pub fn write_csv_path(
    trace: &Trace,
    path: impl AsRef<Path>,
    policy: RetryPolicy,
) -> Result<(), Error> {
    let path = path.as_ref();
    policy.run(|| {
        let file = std::fs::File::create(path)
            .map_err(|e| Error::io(format!("trace create `{}`", path.display()), e.to_string()))?;
        write_csv(trace, std::io::BufWriter::new(file))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;

    #[test]
    fn roundtrip_preserves_the_trace() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_minutes(30.0))
            .extent_count(5_000)
            .updates_per_sec(3.0)
            .locality(0.5, 100)
            .seed(9)
            .build()
            .unwrap()
            .generate();
        let mut buffer = Vec::new();
        write_csv(&trace, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn hand_written_csv_parses_with_comments_and_blanks() {
        let csv = "\
# ssdep-trace,extent_bytes=1048576,extent_count=100,duration_secs=60
0.5,3

# a comment
1.25,99
";
        let trace = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(trace.records().len(), 2);
        assert_eq!(trace.extent_count(), 100);
        assert_eq!(trace.extent_size(), Bytes::from_mib(1.0));
        assert_eq!(trace.records()[1].extent, 99);
    }

    #[test]
    fn malformed_inputs_name_the_offending_row() {
        let missing_header = "0.5,3\n";
        assert!(read_csv(missing_header.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("header"));

        let bad_row = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
0.5,not-a-number
";
        assert!(read_csv(bad_row.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("row 2"));

        let out_of_order = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
5.0,1
1.0,2
";
        assert!(read_csv(out_of_order.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("non-decreasing"));

        let out_of_range = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
1.0,10
";
        assert!(read_csv(out_of_range.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let beyond_duration = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
61.0,1
";
        assert!(read_csv(beyond_duration.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("beyond"));
    }

    /// A reader whose underlying stream fails on the first `failures`
    /// reads, then serves `payload` — models a flaky network filesystem.
    struct FlakyReader {
        payload: std::io::Cursor<Vec<u8>>,
        failures: std::cell::Cell<u32>,
    }

    impl std::io::Read for FlakyReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let left = self.failures.get();
            if left > 0 {
                self.failures.set(left - 1);
                // Not `Interrupted`: the std reader retries that kind
                // internally and would spin through every injected failure.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "simulated transient failure",
                ));
            }
            std::io::Read::read(&mut self.payload, buf)
        }
    }

    #[test]
    fn stream_failures_surface_as_transient_io_errors() {
        let reader = FlakyReader {
            payload: std::io::Cursor::new(Vec::new()),
            failures: std::cell::Cell::new(1),
        };
        let err = read_csv(std::io::BufReader::new(reader)).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(err.to_string().contains("trace.csv read"), "{err}");
        // Content errors stay permanent: never retried.
        let parse_err = read_csv("not a trace\n".as_bytes()).unwrap_err();
        assert!(!parse_err.is_transient(), "{parse_err}");
    }

    #[test]
    fn path_roundtrip_with_retry_policy() {
        use ssdep_core::error::RetryPolicy;
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_minutes(5.0))
            .extent_count(500)
            .updates_per_sec(2.0)
            .seed(4)
            .build()
            .unwrap()
            .generate();
        let path = std::env::temp_dir().join("ssdep-io-retry-roundtrip.csv");
        write_csv_path(&trace, &path, RetryPolicy::immediate(2)).unwrap();
        let back = read_csv_path(&path, RetryPolicy::immediate(2)).unwrap();
        assert_eq!(trace, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_the_attempt_count() {
        use ssdep_core::error::RetryPolicy;
        let err = read_csv_path(
            "/nonexistent/ssdep-no-such-trace.csv",
            RetryPolicy::immediate(2),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("after 3 attempts"), "{msg}");
        assert!(msg.contains("trace open"), "{msg}");
    }

    #[test]
    fn imported_traces_feed_the_estimators() {
        let csv = "\
# ssdep-trace,extent_bytes=1048576,extent_count=1000,duration_secs=120
1.0,1
2.0,1
30.0,2
61.0,1
90.0,3
";
        let trace = read_csv(csv.as_bytes()).unwrap();
        let unique =
            crate::estimate::unique_bytes_per_window(&trace, TimeDelta::from_secs(60.0)).unwrap();
        // Window 1: extents {1,2}; window 2: {1,3} → average 2 MiB.
        assert_eq!(unique, Bytes::from_mib(2.0));
    }
}

//! Importing and exporting traces as CSV.
//!
//! Real deployments have block-level write logs (blktrace, array audit
//! logs); converting them to [`Trace`]s lets the estimators measure a
//! [`Workload`](ssdep_core::workload::Workload) from production data
//! rather than synthetic substitutes. The format is deliberately
//! trivial — one `time_secs,extent` pair per line with a three-field
//! header describing the dataset geometry:
//!
//! ```text
//! # ssdep-trace,extent_bytes=1048576,extent_count=1392640,duration_secs=604800
//! 0.413,17
//! 0.922,93001
//! ```

use crate::trace::{Trace, UpdateRecord};
use ssdep_core::error::Error;
use ssdep_core::units::{Bytes, TimeDelta};
use std::io::{BufRead, Write};

const HEADER_TAG: &str = "# ssdep-trace";

/// Writes `trace` in the CSV format.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] wrapping the underlying I/O
/// failure.
pub fn write_csv<W: Write>(trace: &Trace, mut writer: W) -> Result<(), Error> {
    let io = |e: std::io::Error| Error::invalid("trace.csv", format!("write failed: {e}"));
    writeln!(
        writer,
        "{HEADER_TAG},extent_bytes={},extent_count={},duration_secs={}",
        trace.extent_size().value(),
        trace.extent_count(),
        trace.duration().as_secs()
    )
    .map_err(io)?;
    for record in trace.records() {
        writeln!(writer, "{},{}", record.time, record.extent).map_err(io)?;
    }
    Ok(())
}

/// Reads a trace from the CSV format.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for I/O failures, a missing or
/// malformed header, unparsable rows, out-of-order timestamps, or
/// out-of-range extents.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Trace, Error> {
    let io = |e: std::io::Error| Error::invalid("trace.csv", format!("read failed: {e}"));
    let mut lines = reader.lines();

    let header = lines
        .next()
        .ok_or_else(|| Error::invalid("trace.csv", "empty input"))?
        .map_err(io)?;
    if !header.starts_with(HEADER_TAG) {
        return Err(Error::invalid(
            "trace.csv",
            format!("missing `{HEADER_TAG}` header"),
        ));
    }
    let mut extent_bytes = None;
    let mut extent_count = None;
    let mut duration_secs = None;
    for field in header.split(',').skip(1) {
        let Some((key, value)) = field.split_once('=') else {
            return Err(Error::invalid("trace.csv", format!("malformed header field `{field}`")));
        };
        match key.trim() {
            "extent_bytes" => extent_bytes = value.trim().parse::<f64>().ok(),
            "extent_count" => extent_count = value.trim().parse::<u64>().ok(),
            "duration_secs" => duration_secs = value.trim().parse::<f64>().ok(),
            other => {
                return Err(Error::invalid(
                    "trace.csv",
                    format!("unknown header field `{other}`"),
                ))
            }
        }
    }
    let extent_bytes = extent_bytes
        .ok_or_else(|| Error::invalid("trace.csv", "header missing extent_bytes"))?;
    let extent_count = extent_count
        .ok_or_else(|| Error::invalid("trace.csv", "header missing extent_count"))?;
    let duration_secs = duration_secs
        .ok_or_else(|| Error::invalid("trace.csv", "header missing duration_secs"))?;

    let mut records = Vec::new();
    let mut last_time = 0.0f64;
    for (number, line) in lines.enumerate() {
        let line = line.map_err(io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row = number + 2; // 1-based, after the header
        let Some((time, extent)) = trimmed.split_once(',') else {
            return Err(Error::invalid("trace.csv", format!("row {row}: expected `time,extent`")));
        };
        let time: f64 = time
            .trim()
            .parse()
            .map_err(|e| Error::invalid("trace.csv", format!("row {row}: bad time: {e}")))?;
        let extent: u64 = extent
            .trim()
            .parse()
            .map_err(|e| Error::invalid("trace.csv", format!("row {row}: bad extent: {e}")))?;
        if time < last_time {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: timestamps must be non-decreasing"),
            ));
        }
        if time > duration_secs {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: timestamp beyond the declared duration"),
            ));
        }
        if extent >= extent_count {
            return Err(Error::invalid(
                "trace.csv",
                format!("row {row}: extent {extent} out of range"),
            ));
        }
        last_time = time;
        records.push(UpdateRecord { time, extent });
    }

    Trace::from_records(
        Bytes::from_bytes(extent_bytes),
        extent_count,
        TimeDelta::from_secs(duration_secs),
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;

    #[test]
    fn roundtrip_preserves_the_trace() {
        let trace = TraceGenerator::builder()
            .duration(TimeDelta::from_minutes(30.0))
            .extent_count(5_000)
            .updates_per_sec(3.0)
            .locality(0.5, 100)
            .seed(9)
            .build()
            .unwrap()
            .generate();
        let mut buffer = Vec::new();
        write_csv(&trace, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn hand_written_csv_parses_with_comments_and_blanks() {
        let csv = "\
# ssdep-trace,extent_bytes=1048576,extent_count=100,duration_secs=60
0.5,3

# a comment
1.25,99
";
        let trace = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(trace.records().len(), 2);
        assert_eq!(trace.extent_count(), 100);
        assert_eq!(trace.extent_size(), Bytes::from_mib(1.0));
        assert_eq!(trace.records()[1].extent, 99);
    }

    #[test]
    fn malformed_inputs_name_the_offending_row() {
        let missing_header = "0.5,3\n";
        assert!(read_csv(missing_header.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("header"));

        let bad_row = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
0.5,not-a-number
";
        assert!(read_csv(bad_row.as_bytes()).unwrap_err().to_string().contains("row 2"));

        let out_of_order = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
5.0,1
1.0,2
";
        assert!(read_csv(out_of_order.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("non-decreasing"));

        let out_of_range = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
1.0,10
";
        assert!(read_csv(out_of_range.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let beyond_duration = "\
# ssdep-trace,extent_bytes=4096,extent_count=10,duration_secs=60
61.0,1
";
        assert!(read_csv(beyond_duration.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("beyond"));
    }

    #[test]
    fn imported_traces_feed_the_estimators() {
        let csv = "\
# ssdep-trace,extent_bytes=1048576,extent_count=1000,duration_secs=120
1.0,1
2.0,1
30.0,2
61.0,1
90.0,3
";
        let trace = read_csv(csv.as_bytes()).unwrap();
        let unique =
            crate::estimate::unique_bytes_per_window(&trace, TimeDelta::from_secs(60.0)).unwrap();
        // Window 1: extents {1,2}; window 2: {1,3} → average 2 MiB.
        assert_eq!(unique, Bytes::from_mib(2.0));
    }
}

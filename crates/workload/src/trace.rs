//! Block-extent update trace representation.
//!
//! Updates are recorded at *extent* granularity (a fixed-size range of
//! blocks, 1 MiB by default): fine enough to expose overwrite locality to
//! the window-deduplication statistics, coarse enough that a multi-week
//! trace of a workgroup server stays around a million records.

use serde::{Deserialize, Serialize};
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};

/// One recorded update: extent `extent` was (over)written at `time`
/// after the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// Seconds since the trace started.
    pub time: f64,
    /// The extent index that was written.
    pub extent: u64,
}

/// A sequence of extent updates over a fixed-size dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    extent_size: Bytes,
    extent_count: u64,
    duration: TimeDelta,
    records: Vec<UpdateRecord>,
}

impl Trace {
    /// Assembles a trace from raw parts. Records must be in
    /// non-decreasing time order and reference extents below
    /// `extent_count`; out-of-order or out-of-range records are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the invariants above are violated — traces are built by
    /// generators/converters, so violations are programming errors.
    pub fn from_records(
        extent_size: Bytes,
        extent_count: u64,
        duration: TimeDelta,
        records: Vec<UpdateRecord>,
    ) -> Trace {
        let mut last = 0.0;
        for record in &records {
            assert!(
                record.time >= last && record.time <= duration.as_secs(),
                "records must be time-ordered within the trace duration"
            );
            assert!(record.extent < extent_count, "extent index out of range");
            last = record.time;
        }
        Trace { extent_size, extent_count, duration, records }
    }

    /// The size of one extent.
    pub fn extent_size(&self) -> Bytes {
        self.extent_size
    }

    /// How many extents the dataset spans.
    pub fn extent_count(&self) -> u64 {
        self.extent_count
    }

    /// The dataset size: `extent_count × extent_size`.
    pub fn data_capacity(&self) -> Bytes {
        self.extent_size * self.extent_count as f64
    }

    /// The trace's covered time span.
    pub fn duration(&self) -> TimeDelta {
        self.duration
    }

    /// The recorded updates, in time order.
    pub fn records(&self) -> &[UpdateRecord] {
        &self.records
    }

    /// Total bytes written over the whole trace (non-unique).
    pub fn total_update_bytes(&self) -> Bytes {
        self.extent_size * self.records.len() as f64
    }

    /// The average update rate over the whole trace.
    pub fn avg_update_rate(&self) -> Bandwidth {
        if self.duration.is_zero() {
            return Bandwidth::ZERO;
        }
        self.total_update_bytes() / self.duration
    }

    /// Iterates the records falling in `[start, end)` seconds.
    pub fn slice(&self, start: f64, end: f64) -> impl Iterator<Item = &UpdateRecord> {
        let lo = self.records.partition_point(|r| r.time < start);
        let hi = self.records.partition_point(|r| r.time < end);
        self.records[lo..hi].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Trace {
        Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![
                UpdateRecord { time: 1.0, extent: 0 },
                UpdateRecord { time: 2.0, extent: 1 },
                UpdateRecord { time: 2.0, extent: 0 },
                UpdateRecord { time: 9.0, extent: 3 },
            ],
        )
    }

    #[test]
    fn capacity_and_volume_derive_from_extents() {
        let trace = toy();
        assert_eq!(trace.data_capacity(), Bytes::from_mib(4.0));
        assert_eq!(trace.total_update_bytes(), Bytes::from_mib(4.0));
        assert_eq!(
            trace.avg_update_rate(),
            Bytes::from_mib(4.0) / TimeDelta::from_secs(10.0)
        );
    }

    #[test]
    fn slice_is_half_open() {
        let trace = toy();
        let in_window: Vec<u64> = trace.slice(1.0, 2.0).map(|r| r.extent).collect();
        assert_eq!(in_window, vec![0]);
        let in_window: Vec<u64> = trace.slice(0.0, 10.0).map(|r| r.extent).collect();
        assert_eq!(in_window.len(), 4);
        assert_eq!(trace.slice(3.0, 9.0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_records_panic() {
        Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![
                UpdateRecord { time: 5.0, extent: 0 },
                UpdateRecord { time: 1.0, extent: 1 },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_extent_panics() {
        Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![UpdateRecord { time: 1.0, extent: 9 }],
        );
    }

    #[test]
    fn empty_trace_has_zero_rate() {
        let trace = Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            Vec::new(),
        );
        assert_eq!(trace.avg_update_rate(), Bandwidth::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let trace = toy();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}

//! Block-extent update trace representation.
//!
//! Updates are recorded at *extent* granularity (a fixed-size range of
//! blocks, 1 MiB by default): fine enough to expose overwrite locality to
//! the window-deduplication statistics, coarse enough that a multi-week
//! trace of a workgroup server stays around a million records.

use serde::{Deserialize, Serialize};
use ssdep_core::error::Error;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};

/// One recorded update: extent `extent` was (over)written at `time`
/// after the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// Seconds since the trace started.
    pub time: f64,
    /// The extent index that was written.
    pub extent: u64,
}

/// A sequence of extent updates over a fixed-size dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    extent_size: Bytes,
    extent_count: u64,
    duration: TimeDelta,
    records: Vec<UpdateRecord>,
}

impl Trace {
    /// Assembles a trace from raw parts. Records must be in
    /// non-decreasing time order and reference extents below
    /// `extent_count`; out-of-order or out-of-range records are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the offending record
    /// when the invariants above are violated, or when `duration` is
    /// negative or non-finite.
    pub fn from_records(
        extent_size: Bytes,
        extent_count: u64,
        duration: TimeDelta,
        records: Vec<UpdateRecord>,
    ) -> Result<Trace, Error> {
        let duration = duration.ensure_non_negative("trace.duration")?;
        let mut last = 0.0;
        for (i, record) in records.iter().enumerate() {
            if !(record.time >= last && record.time <= duration.as_secs()) {
                return Err(Error::invalid(
                    format!("trace.records[{i}].time"),
                    "records must be time-ordered within the trace duration",
                ));
            }
            if record.extent >= extent_count {
                return Err(Error::invalid(
                    format!("trace.records[{i}].extent"),
                    format!("extent index out of range (>= {extent_count})"),
                ));
            }
            last = record.time;
        }
        Ok(Trace {
            extent_size,
            extent_count,
            duration,
            records,
        })
    }

    /// Assembles a trace from records the caller has already produced in
    /// sorted, in-range form (the generator's own output). Skips the
    /// per-record validation; only reachable inside this crate.
    pub(crate) fn from_sorted_records(
        extent_size: Bytes,
        extent_count: u64,
        duration: TimeDelta,
        records: Vec<UpdateRecord>,
    ) -> Trace {
        debug_assert!(records.windows(2).all(|w| w[0].time <= w[1].time));
        debug_assert!(records.iter().all(|r| r.extent < extent_count));
        Trace {
            extent_size,
            extent_count,
            duration,
            records,
        }
    }

    /// The size of one extent.
    pub fn extent_size(&self) -> Bytes {
        self.extent_size
    }

    /// How many extents the dataset spans.
    pub fn extent_count(&self) -> u64 {
        self.extent_count
    }

    /// The dataset size: `extent_count × extent_size`.
    pub fn data_capacity(&self) -> Bytes {
        self.extent_size * self.extent_count as f64
    }

    /// The trace's covered time span.
    pub fn duration(&self) -> TimeDelta {
        self.duration
    }

    /// The recorded updates, in time order.
    pub fn records(&self) -> &[UpdateRecord] {
        &self.records
    }

    /// Total bytes written over the whole trace (non-unique).
    pub fn total_update_bytes(&self) -> Bytes {
        self.extent_size * self.records.len() as f64
    }

    /// The average update rate over the whole trace.
    pub fn avg_update_rate(&self) -> Bandwidth {
        if self.duration.is_zero() {
            return Bandwidth::ZERO;
        }
        self.total_update_bytes() / self.duration
    }

    /// Iterates the records falling in `[start, end)` seconds.
    pub fn slice(&self, start: f64, end: f64) -> impl Iterator<Item = &UpdateRecord> {
        let lo = self.records.partition_point(|r| r.time < start);
        let hi = self.records.partition_point(|r| r.time < end);
        self.records[lo..hi].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Trace {
        Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![
                UpdateRecord {
                    time: 1.0,
                    extent: 0,
                },
                UpdateRecord {
                    time: 2.0,
                    extent: 1,
                },
                UpdateRecord {
                    time: 2.0,
                    extent: 0,
                },
                UpdateRecord {
                    time: 9.0,
                    extent: 3,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn capacity_and_volume_derive_from_extents() {
        let trace = toy();
        assert_eq!(trace.data_capacity(), Bytes::from_mib(4.0));
        assert_eq!(trace.total_update_bytes(), Bytes::from_mib(4.0));
        assert_eq!(
            trace.avg_update_rate(),
            Bytes::from_mib(4.0) / TimeDelta::from_secs(10.0)
        );
    }

    #[test]
    fn slice_is_half_open() {
        let trace = toy();
        let in_window: Vec<u64> = trace.slice(1.0, 2.0).map(|r| r.extent).collect();
        assert_eq!(in_window, vec![0]);
        let in_window: Vec<u64> = trace.slice(0.0, 10.0).map(|r| r.extent).collect();
        assert_eq!(in_window.len(), 4);
        assert_eq!(trace.slice(3.0, 9.0).count(), 0);
    }

    #[test]
    fn out_of_order_records_are_rejected() {
        let err = Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![
                UpdateRecord {
                    time: 5.0,
                    extent: 0,
                },
                UpdateRecord {
                    time: 1.0,
                    extent: 1,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("records[1]"), "{err}");
    }

    #[test]
    fn out_of_range_extents_are_rejected() {
        let err = Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            vec![UpdateRecord {
                time: 1.0,
                extent: 9,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("extent"), "{err}");
    }

    #[test]
    fn negative_and_nan_durations_are_rejected() {
        for bad in [TimeDelta::from_secs(-1.0), TimeDelta::from_secs(f64::NAN)] {
            assert!(Trace::from_records(Bytes::from_mib(1.0), 4, bad, Vec::new()).is_err());
        }
    }

    #[test]
    fn empty_trace_has_zero_rate() {
        let trace = Trace::from_records(
            Bytes::from_mib(1.0),
            4,
            TimeDelta::from_secs(10.0),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(trace.avg_update_rate(), Bandwidth::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let trace = toy();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}

//! The discrete-event simulation driver.
//!
//! [`Simulation::run`] executes every level's capture → hold/propagate →
//! retain/expire pipeline over a time horizon and records the complete
//! RP history, so failure queries can be answered for *any* instant
//! after the fact via [`SimReport`].

use crate::events::{Event, EventQueue};
use crate::schedule::{level_model, LevelModel, RpKind};
use serde::{Deserialize, Serialize};
use ssdep_core::device::{DeviceId, DeviceKind};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;
use ssdep_workload::Trace;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Where per-capture update volumes come from.
#[derive(Debug, Clone)]
pub enum UpdateModel {
    /// Use the workload's statistical `batchUpdR` curve (stationary).
    Statistical,
    /// Count unique extents from a concrete trace; windows beyond the
    /// trace length wrap around.
    Trace(Trace),
}

impl UpdateModel {
    /// Unique bytes updated in simulated interval `[start, end)` seconds.
    pub fn unique_bytes(&self, workload: &Workload, start: f64, end: f64) -> Bytes {
        match self {
            UpdateModel::Statistical => {
                workload.unique_bytes(TimeDelta::from_secs((end - start).max(0.0)))
            }
            UpdateModel::Trace(trace) => {
                let duration = trace.duration().as_secs();
                let window = (end - start).max(0.0);
                if window >= duration {
                    // The whole trace (can't see more uniqueness than it
                    // contains).
                    return unique_in(trace, 0.0, duration);
                }
                let from = start.rem_euclid(duration);
                let to = from + window;
                if to <= duration {
                    unique_in(trace, from, to)
                } else {
                    // Wrap: union of the tail and the head.
                    let mut seen = std::collections::HashSet::new();
                    for r in trace.slice(from, duration) {
                        seen.insert(r.extent);
                    }
                    for r in trace.slice(0.0, to - duration) {
                        seen.insert(r.extent);
                    }
                    trace.extent_size() * seen.len() as f64
                }
            }
        }
    }
}

fn unique_in(trace: &Trace, from: f64, to: f64) -> Bytes {
    let mut seen = std::collections::HashSet::new();
    for r in trace.slice(from, to) {
        seen.insert(r.extent);
    }
    trace.extent_size() * seen.len() as f64
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How long to simulate.
    pub horizon: TimeDelta,
    /// Where update volumes come from.
    pub update_model: UpdateModel,
}

impl SimConfig {
    /// A statistical-update configuration over `horizon`.
    pub fn new(horizon: TimeDelta) -> SimConfig {
        SimConfig { horizon, update_model: UpdateModel::Statistical }
    }

    /// Switches to trace-driven update volumes.
    pub fn with_trace(mut self, trace: Trace) -> SimConfig {
        self.update_model = UpdateModel::Trace(trace);
        self
    }
}

/// One simulated retrieval point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimRp {
    /// The level holding this RP.
    pub level: usize,
    /// What the capture produced.
    pub kind: RpKind,
    /// The age reference of the data inside the RP (simulated seconds).
    pub content_time: f64,
    /// When the capture happened.
    pub capture_time: f64,
    /// When the RP became restorable at its level.
    pub complete_time: f64,
    /// When retention expired it (∞ while retained).
    pub expire_time: f64,
    /// Bytes moved to create it.
    pub transfer_bytes: Bytes,
    /// Bytes a restore reads from it.
    pub restore_bytes: Bytes,
}

impl SimRp {
    /// Whether this RP is retained and restorable at instant `t`.
    pub fn restorable_at(&self, t: f64) -> bool {
        self.complete_time <= t && t < self.expire_time
    }
}

/// One propagation transfer occupying a device for an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XferJob {
    /// The device the transfer occupies.
    pub device: DeviceId,
    /// Transfer start (simulated seconds).
    pub start: f64,
    /// Transfer end (simulated seconds).
    pub end: f64,
    /// Sustained rate during the transfer, bytes/second.
    pub rate: f64,
}

/// The complete history of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    horizon: TimeDelta,
    models: Vec<LevelModel>,
    rps: Vec<SimRp>,
    completed_per_level: Vec<Vec<usize>>,
    bytes_moved: BTreeMap<DeviceId, Bytes>,
    max_retained: Vec<usize>,
    jobs: Vec<XferJob>,
}

impl SimReport {
    /// The simulated horizon.
    pub fn horizon(&self) -> TimeDelta {
        self.horizon
    }

    /// The per-level executable models the run used.
    pub fn models(&self) -> &[LevelModel] {
        &self.models
    }

    /// Every RP ever captured, in capture order.
    pub fn rps(&self) -> &[SimRp] {
        &self.rps
    }

    /// How many RPs completed at `level` during the run.
    pub fn completed_count(&self, level: usize) -> usize {
        self.completed_per_level.get(level).map_or(0, Vec::len)
    }

    /// The most RPs `level` ever retained simultaneously.
    pub fn max_retained(&self, level: usize) -> usize {
        self.max_retained.get(level).copied().unwrap_or(0)
    }

    /// Total bytes moved through `device` by RP maintenance.
    pub fn bytes_moved(&self, device: DeviceId) -> Bytes {
        self.bytes_moved.get(&device).copied().unwrap_or(Bytes::ZERO)
    }

    /// The average RP-maintenance bandwidth on `device` over the run.
    pub fn avg_bandwidth(&self, device: DeviceId) -> Bandwidth {
        if self.horizon.is_zero() {
            return Bandwidth::ZERO;
        }
        self.bytes_moved(device) / self.horizon
    }

    /// The propagation transfers that occupied `device`.
    pub fn jobs_on(&self, device: DeviceId) -> impl Iterator<Item = &XferJob> {
        self.jobs.iter().filter(move |j| j.device == device)
    }

    /// The peak *simultaneous* propagation bandwidth observed on
    /// `device` — the quantity the analytic model provisions for
    /// (§3.3.1's per-technique demands are sustained window rates, so
    /// the observed peak must stay at or below their sum).
    pub fn peak_bandwidth(&self, device: DeviceId) -> Bandwidth {
        let mut boundaries: Vec<(f64, f64)> = Vec::new();
        for job in self.jobs_on(device) {
            boundaries.push((job.start, job.rate));
            boundaries.push((job.end, -job.rate));
        }
        boundaries.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).expect("finite rates"))
        });
        let mut current = 0.0f64;
        let mut peak = 0.0f64;
        for (_, delta) in boundaries {
            current += delta;
            peak = peak.max(current);
        }
        Bandwidth::from_bytes_per_sec(peak)
    }

    /// The newest state restorable from `level` at instant `t` for a
    /// target `target_age` seconds before `t`.
    ///
    /// Returns the content time and the RP (if the level is scheduled;
    /// continuous mirrors synthesize a virtual RP). `None` when the
    /// level holds nothing usable.
    pub fn restorable_at(
        &self,
        level: usize,
        t: f64,
        target_age: f64,
    ) -> Option<(f64, Option<&SimRp>)> {
        let cutoff = t - target_age;
        match self.models.get(level)? {
            LevelModel::Primary => {
                if target_age == 0.0 {
                    Some((t, None))
                } else {
                    None
                }
            }
            LevelModel::Continuous { lag } => {
                let content = t - lag.as_secs();
                (content <= cutoff).then_some((content, None))
            }
            LevelModel::Scheduled { .. } => self
                .completed_per_level
                .get(level)?
                .iter()
                .map(|&i| &self.rps[i])
                .filter(|rp| rp.restorable_at(t) && rp.content_time <= cutoff)
                .max_by(|a, b| a.content_time.total_cmp(&b.content_time))
                .map(|rp| (rp.content_time, Some(rp))),
        }
    }

    /// Samples the staleness (age of the freshest restorable content) of
    /// `level` every `step` seconds across `[from, to)` — the sawtooth
    /// behind Figure 3, as actually executed. Instants where the level
    /// holds nothing yield `None`.
    pub fn staleness_series(
        &self,
        level: usize,
        from: f64,
        to: f64,
        step: f64,
    ) -> Vec<(f64, Option<f64>)> {
        if step <= 0.0 || to <= from {
            return Vec::new();
        }
        let mut series = Vec::new();
        let mut t = from;
        while t < to {
            let staleness = self
                .restorable_at(level, t, 0.0)
                .map(|(content, _)| t - content);
            series.push((t, staleness));
            t += step;
        }
        series
    }

    /// The set of RPs a restore from `rp` must read: the RP itself, its
    /// base full (for incrementals), and the intervening differentials.
    pub fn restore_set<'a>(&'a self, rp: &'a SimRp) -> Vec<&'a SimRp> {
        if rp.kind.is_full() {
            return vec![rp];
        }
        let level_rps: Vec<&SimRp> = self.completed_per_level[rp.level]
            .iter()
            .map(|&i| &self.rps[i])
            .collect();
        let base = level_rps
            .iter()
            .copied()
            .filter(|r| r.kind.is_full() && r.capture_time <= rp.capture_time)
            .max_by(|a, b| a.capture_time.total_cmp(&b.capture_time));
        let Some(base) = base else {
            return vec![rp];
        };
        let mut set: Vec<&SimRp> = vec![base];
        match rp.kind {
            RpKind::CumulativeIncrement { .. } => set.push(rp),
            RpKind::DifferentialIncrement { .. } => {
                for r in level_rps.iter().copied().filter(|r| {
                    !r.kind.is_full()
                        && r.capture_time > base.capture_time
                        && r.capture_time <= rp.capture_time
                }) {
                    set.push(r);
                }
            }
            RpKind::Full => {}
        }
        set
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    design: StorageDesign,
    workload: Workload,
    config: SimConfig,
    models: Vec<LevelModel>,
}

impl Simulation {
    /// Prepares a simulation of `design` under `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive horizon.
    pub fn new(
        design: &StorageDesign,
        workload: &Workload,
        config: SimConfig,
    ) -> Result<Simulation, Error> {
        if !(config.horizon.value() > 0.0 && config.horizon.is_finite()) {
            return Err(Error::invalid("sim.horizon", "must be positive and finite"));
        }
        let models = design
            .levels()
            .iter()
            .map(|l| level_model(l.technique(), workload))
            .collect();
        Ok(Simulation {
            design: design.clone(),
            workload: workload.clone(),
            config,
            models,
        })
    }

    /// Runs the pipeline to the horizon and returns the history.
    pub fn run(self) -> SimReport {
        let horizon = self.config.horizon.as_secs();
        let levels = self.design.levels();
        let mut queue = EventQueue::new();
        let mut rps: Vec<SimRp> = Vec::new();
        let mut completed: Vec<Vec<usize>> = vec![Vec::new(); levels.len()];
        let mut retained: Vec<VecDeque<usize>> = vec![VecDeque::new(); levels.len()];
        let mut max_retained = vec![0usize; levels.len()];
        let mut next_rep = vec![0usize; levels.len()];
        let mut bytes_moved: BTreeMap<DeviceId, Bytes> = BTreeMap::new();
        let mut jobs: Vec<XferJob> = Vec::new();

        for (index, model) in self.models.iter().enumerate() {
            if let LevelModel::Scheduled { period, .. } = model {
                if period.as_secs() > 0.0 {
                    queue.push(period.as_secs(), Event::Capture { level: index });
                }
            }
        }

        while let Some((t, event)) = queue.pop() {
            if t > horizon {
                break;
            }
            match event {
                Event::Capture { level } => {
                    let LevelModel::Scheduled {
                        period,
                        reps,
                        full_transfer_window,
                        full_restore,
                        ..
                    } = &self.models[level]
                    else {
                        continue;
                    };
                    queue.push(t + period.as_secs(), Event::Capture { level });
                    let rep = reps[next_rep[level] % reps.len()];

                    // Content comes from the level above: the newest RP
                    // captured so far. Per §3.2.1 the hold window starts
                    // when that RP *arrives* at the upstream level, so
                    // this level's latency chains onto the upstream
                    // completion (Figure 3's Σ(holdW + propW)).
                    let upstream = match &self.models[level - 1] {
                        LevelModel::Primary => Some((t, t)),
                        LevelModel::Continuous { lag } => Some((t - lag.as_secs(), t)),
                        LevelModel::Scheduled { .. } => newest_captured(&rps, level - 1, t),
                    };
                    let Some((content_time, upstream_complete)) = upstream else {
                        continue; // upstream has produced nothing yet
                    };
                    next_rep[level] += 1;
                    let deadline = t.max(upstream_complete) + rep.latency.as_secs();

                    let transfer_bytes = match rep.kind.window() {
                        Some(window) => self.config.update_model.unique_bytes(
                            &self.workload,
                            t - window.as_secs(),
                            t,
                        ),
                        None => match full_transfer_window {
                            Some(window) => self.config.update_model.unique_bytes(
                                &self.workload,
                                t - window.as_secs(),
                                t,
                            ),
                            None => self.workload.data_capacity(),
                        },
                    };
                    let restore_bytes = if rep.kind.is_full() {
                        *full_restore
                    } else {
                        transfer_bytes
                    };
                    let rp_index = rps.len();
                    rps.push(SimRp {
                        level,
                        kind: rep.kind,
                        content_time,
                        capture_time: t,
                        complete_time: deadline,
                        expire_time: f64::INFINITY,
                        transfer_bytes,
                        restore_bytes,
                    });
                    queue.push(deadline, Event::Complete { level, rp: rp_index });

                    // Record the transfer as a bandwidth-occupying job,
                    // unless media move physically (couriers) — those
                    // place no bandwidth demand (§3.2.3).
                    let physical = levels[level]
                        .transports()
                        .iter()
                        .any(|&d| matches!(self.design.device(d).kind(), DeviceKind::Courier));
                    if !physical && transfer_bytes.value() > 0.0 {
                        let (start, duration) = if rep.propagation.value() > 0.0 {
                            (deadline - rep.propagation.as_secs(), rep.propagation.as_secs())
                        } else {
                            // Zero propagation window: the data spreads
                            // over the accumulation period (resilvering).
                            (t, period.as_secs())
                        };
                        let rate = transfer_bytes.value() / duration;
                        let mut touched = vec![levels[level - 1].host(), levels[level].host()];
                        touched.extend_from_slice(levels[level].transports());
                        for device in touched {
                            jobs.push(XferJob { device, start, end: start + duration, rate });
                        }
                    }
                }
                Event::Complete { level, rp } => {
                    completed[level].push(rp);
                    retained[level].push_back(rp);
                    let LevelModel::Scheduled { retention, .. } = &self.models[level] else {
                        continue;
                    };
                    while retained[level].len() > *retention {
                        let expired = retained[level].pop_front().expect("non-empty");
                        rps[expired].expire_time = t;
                    }
                    max_retained[level] = max_retained[level].max(retained[level].len());

                    // Account the propagation traffic.
                    let transfer = rps[rp].transfer_bytes;
                    let source = levels[level - 1].host();
                    let host = levels[level].host();
                    *bytes_moved.entry(source).or_default() += transfer;
                    *bytes_moved.entry(host).or_default() += transfer;
                    for &t_dev in levels[level].transports() {
                        *bytes_moved.entry(t_dev).or_default() += transfer;
                    }
                }
            }
        }

        SimReport {
            horizon: self.config.horizon,
            models: self.models,
            rps,
            completed_per_level: completed,
            bytes_moved,
            max_retained,
            jobs,
        }
    }
}

/// The newest upstream RP captured no later than `now`, as
/// `(content_time, complete_time)`.
fn newest_captured(rps: &[SimRp], level: usize, now: f64) -> Option<(f64, f64)> {
    rps.iter()
        .filter(|rp| rp.level == level && rp.capture_time <= now)
        .max_by(|a, b| a.content_time.total_cmp(&b.content_time))
        .map(|rp| (rp.content_time, rp.complete_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_report(weeks: f64) -> SimReport {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        Simulation::new(&design, &workload, SimConfig::new(TimeDelta::from_weeks(weeks)))
            .unwrap()
            .run()
    }

    #[test]
    fn pipeline_fills_in_schedule_order() {
        let report = baseline_report(12.0);
        // 12 weeks: mirrors every 12 h → ~167 completions; backups
        // weekly → 11; vault every 4 weeks with a ~4.5-week latency → 1+.
        assert!(report.completed_count(1) >= 160, "{}", report.completed_count(1));
        assert!((10..=12).contains(&report.completed_count(2)), "{}", report.completed_count(2));
        assert!(report.completed_count(3) >= 1);
        assert_eq!(report.completed_count(0), 0, "the primary captures nothing");
    }

    #[test]
    fn retention_never_exceeds_the_configured_count() {
        let report = baseline_report(20.0);
        assert!(report.max_retained(1) <= 4);
        assert!(report.max_retained(2) <= 4);
        assert!(report.max_retained(3) <= 39);
    }

    #[test]
    fn expired_rps_are_not_restorable() {
        let report = baseline_report(12.0);
        let t = TimeDelta::from_weeks(11.0).as_secs();
        let mirror_rps: Vec<&SimRp> = report
            .rps()
            .iter()
            .filter(|rp| rp.level == 1 && rp.restorable_at(t))
            .collect();
        assert!(mirror_rps.len() <= 4);
        // And the restorable set is the *newest* four.
        let newest = report.restorable_at(1, t, 0.0).unwrap().0;
        for rp in mirror_rps {
            assert!(newest >= rp.content_time);
        }
    }

    #[test]
    fn observed_mirror_staleness_stays_within_the_analytic_lag() {
        let report = baseline_report(12.0);
        let design = ssdep_core::presets::baseline_design();
        let analytic = design.levels()[1].technique().worst_own_lag().as_secs();
        for step in 100..200 {
            let t = step as f64 * 3600.0;
            if let Some((content, _)) = report.restorable_at(1, t, 0.0) {
                let staleness = t - content;
                assert!(
                    staleness <= analytic + 1e-6,
                    "at t={t}: staleness {staleness} exceeds analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn vault_content_is_weeks_stale_but_bounded() {
        let report = baseline_report(30.0);
        let design = ssdep_core::presets::baseline_design();
        let ranges = ssdep_core::analysis::level_ranges(&design);
        let analytic = ranges[3].max_lag.as_secs();
        let t = TimeDelta::from_weeks(29.0).as_secs();
        let (content, rp) = report.restorable_at(3, t, 0.0).expect("vault has an RP by week 29");
        let staleness = t - content;
        assert!(staleness > TimeDelta::from_weeks(4.0).as_secs(), "vault must lag weeks");
        assert!(staleness <= analytic + 1e-6, "{staleness} vs analytic {analytic}");
        assert!(rp.unwrap().kind.is_full());
    }

    #[test]
    fn average_traffic_stays_below_provisioned_demands() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = baseline_report(16.0);
        for id in design.device_ids() {
            let index = id.index();
            let simulated = report.avg_bandwidth(id);
            let provisioned = demands.bandwidth_on(id) + workload.avg_access_rate();
            assert!(
                simulated <= provisioned * 1.05,
                "device {index}: simulated {simulated} vs provisioned {provisioned}"
            );
        }
    }

    #[test]
    fn observed_peak_bandwidth_stays_within_analytic_provisioning() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = baseline_report(16.0);
        for id in design.device_ids() {
            let peak = report.peak_bandwidth(id);
            // The analytic demand sums each technique's sustained window
            // rate; overlapping jobs must never exceed it (small slack
            // for f64 boundary arithmetic).
            let provisioned = demands.bandwidth_on(id);
            assert!(
                peak <= provisioned * 1.001 + ssdep_core::units::Bandwidth::from_bytes_per_sec(1.0),
                "{}: peak {peak} vs provisioned {provisioned}",
                design.device(id).name()
            );
        }
        // And the tape library's peak is the full-backup rate — the
        // provisioning is tight, not slack.
        let tape = design.device_id("tape library").unwrap();
        let peak = report.peak_bandwidth(tape);
        assert!(
            (peak.as_mib_per_sec() - 8.06).abs() < 0.1,
            "tape peak {peak}"
        );
    }

    #[test]
    fn staleness_series_is_a_sawtooth_bounded_by_the_analytic_lag() {
        let report = baseline_report(12.0);
        let design = ssdep_core::presets::baseline_design();
        let analytic = ssdep_core::analysis::level_ranges(&design)[2].max_lag.as_secs();
        let from = TimeDelta::from_weeks(6.0).as_secs();
        let to = TimeDelta::from_weeks(10.0).as_secs();
        let series = report.staleness_series(2, from, to, 3600.0);
        assert!(!series.is_empty());
        let values: Vec<f64> = series.iter().filter_map(|(_, s)| *s).collect();
        assert!(!values.is_empty());
        let max = values.iter().cloned().fold(0.0, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= analytic + 1.0, "max {max} vs analytic {analytic}");
        // A sawtooth: spans at least most of a weekly cycle.
        assert!(max - min > TimeDelta::from_days(5.0).as_secs());
        // Degenerate queries return nothing.
        assert!(report.staleness_series(2, 10.0, 5.0, 60.0).is_empty());
        assert!(report.staleness_series(2, 0.0, 10.0, 0.0).is_empty());
    }

    #[test]
    fn courier_shipments_occupy_no_bandwidth() {
        let report = baseline_report(16.0);
        let design = ssdep_core::presets::baseline_design();
        let vault = design.device_id("tape vault").unwrap();
        let courier = design.device_id("air shipment").unwrap();
        assert_eq!(report.jobs_on(vault).count(), 0);
        assert_eq!(report.jobs_on(courier).count(), 0);
        assert_eq!(report.peak_bandwidth(courier), Bandwidth::ZERO);
    }

    #[test]
    fn primary_serves_only_now() {
        let report = baseline_report(4.0);
        let t = TimeDelta::from_weeks(3.0).as_secs();
        assert!(report.restorable_at(0, t, 0.0).is_some());
        assert!(report.restorable_at(0, t, 60.0).is_none());
    }

    #[test]
    fn continuous_mirror_synthesizes_lagged_content() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::async_batch_mirror_design(1);
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_hours(2.0)),
        )
        .unwrap()
        .run();
        let t = 3600.0;
        let (content, rp) = report.restorable_at(1, t, 0.0).unwrap();
        // Batched mirror: newest completed batch is at most 2 minutes old.
        assert!(t - content <= 120.0 + 1e-9, "staleness {}", t - content);
        assert!(rp.is_some());
    }

    #[test]
    fn restore_set_assembles_incremental_chains() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::weekly_vault_full_incremental_design();
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(6.0)),
        )
        .unwrap()
        .run();
        let t = TimeDelta::from_weeks(5.5).as_secs();
        let (_, rp) = report.restorable_at(2, t, 0.0).expect("backup has RPs");
        let rp = rp.unwrap();
        let set = report.restore_set(rp);
        if rp.kind.is_full() {
            assert_eq!(set.len(), 1);
        } else {
            assert!(set.len() >= 2, "incremental restore needs its base full");
            assert!(set[0].kind.is_full());
        }
        let total: Bytes = set.iter().map(|r| r.restore_bytes).sum();
        assert!(total >= workload.data_capacity());
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        assert!(Simulation::new(&design, &workload, SimConfig::new(TimeDelta::ZERO)).is_err());
    }

    #[test]
    fn trace_driven_sizes_wrap_and_bound() {
        let trace = ssdep_workload::TraceGenerator::builder()
            .duration(TimeDelta::from_hours(4.0))
            .extent_count(5_000)
            .updates_per_sec(2.0)
            .locality(0.8, 100)
            .seed(3)
            .build()
            .unwrap()
            .generate();
        let workload = ssdep_core::presets::cello_workload();
        let model = UpdateModel::Trace(trace.clone());
        let short = model.unique_bytes(&workload, 0.0, 600.0);
        let wrapped = model.unique_bytes(&workload, 13_000.0, 15_000.0);
        let whole = model.unique_bytes(&workload, 0.0, 1e9);
        assert!(short > Bytes::ZERO);
        assert!(wrapped > Bytes::ZERO);
        assert!(whole <= trace.data_capacity());
        assert!(short <= whole);
    }
}

//! The discrete-event simulation driver.
//!
//! [`Simulation::run`] executes every level's capture → hold/propagate →
//! retain/expire pipeline over a time horizon and records the complete
//! RP history, so failure queries can be answered for *any* instant
//! after the fact via [`SimReport`].

use crate::events::{Event, EventQueue};
use crate::fault::{Disruption, FaultKind, FaultPlan, ResolvedFault};
use crate::schedule::{level_model, LevelModel, RpKind};
use serde::{Deserialize, Serialize};
use ssdep_core::device::{DeviceId, DeviceKind};
use ssdep_core::error::Error;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bandwidth, Bytes, TimeDelta};
use ssdep_core::workload::Workload;
use ssdep_workload::Trace;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Where per-capture update volumes come from.
#[derive(Debug, Clone)]
pub enum UpdateModel {
    /// Use the workload's statistical `batchUpdR` curve (stationary).
    Statistical,
    /// Count unique extents from a concrete trace; windows beyond the
    /// trace length wrap around.
    Trace(Trace),
}

impl UpdateModel {
    /// Unique bytes updated in simulated interval `[start, end)` seconds.
    pub fn unique_bytes(&self, workload: &Workload, start: f64, end: f64) -> Bytes {
        match self {
            UpdateModel::Statistical => {
                workload.unique_bytes(TimeDelta::from_secs((end - start).max(0.0)))
            }
            UpdateModel::Trace(trace) => {
                let duration = trace.duration().as_secs();
                if duration <= 0.0 || duration.is_nan() {
                    // An empty or zero-length trace contributes no unique
                    // updates; guarding here also keeps `rem_euclid(0)`
                    // below from poisoning the arithmetic with NaN.
                    return Bytes::ZERO;
                }
                let window = (end - start).max(0.0);
                if window >= duration {
                    // The whole trace (can't see more uniqueness than it
                    // contains).
                    return unique_in(trace, 0.0, duration);
                }
                let from = start.rem_euclid(duration);
                let to = from + window;
                if to <= duration {
                    unique_in(trace, from, to)
                } else {
                    // Wrap: union of the tail and the head.
                    let mut seen = std::collections::HashSet::new();
                    for r in trace.slice(from, duration) {
                        seen.insert(r.extent);
                    }
                    for r in trace.slice(0.0, to - duration) {
                        seen.insert(r.extent);
                    }
                    trace.extent_size() * seen.len() as f64
                }
            }
        }
    }
}

fn unique_in(trace: &Trace, from: f64, to: f64) -> Bytes {
    let mut seen = std::collections::HashSet::new();
    for r in trace.slice(from, to) {
        seen.insert(r.extent);
    }
    trace.extent_size() * seen.len() as f64
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How long to simulate.
    pub horizon: TimeDelta,
    /// Where update volumes come from.
    pub update_model: UpdateModel,
    /// Faults to inject during the run (empty = fault-free).
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A statistical-update configuration over `horizon`.
    pub fn new(horizon: TimeDelta) -> SimConfig {
        SimConfig {
            horizon,
            update_model: UpdateModel::Statistical,
            faults: FaultPlan::new(),
        }
    }

    /// Switches to trace-driven update volumes.
    pub fn with_trace(mut self, trace: Trace) -> SimConfig {
        self.update_model = UpdateModel::Trace(trace);
        self
    }

    /// Injects `faults` during the run.
    pub fn with_faults(mut self, faults: FaultPlan) -> SimConfig {
        self.faults = faults;
        self
    }
}

/// One simulated retrieval point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimRp {
    /// The level holding this RP.
    pub level: usize,
    /// What the capture produced.
    pub kind: RpKind,
    /// The age reference of the data inside the RP (simulated seconds).
    pub content_time: f64,
    /// When the capture happened.
    pub capture_time: f64,
    /// When the RP became restorable at its level.
    pub complete_time: f64,
    /// When retention expired it (∞ while retained).
    pub expire_time: f64,
    /// Bytes moved to create it.
    pub transfer_bytes: Bytes,
    /// Bytes a restore reads from it.
    pub restore_bytes: Bytes,
}

impl SimRp {
    /// Whether this RP is retained and restorable at instant `t`.
    pub fn restorable_at(&self, t: f64) -> bool {
        self.complete_time <= t && t < self.expire_time
    }
}

/// One propagation transfer occupying a device for an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XferJob {
    /// The device the transfer occupies.
    pub device: DeviceId,
    /// Transfer start (simulated seconds).
    pub start: f64,
    /// Transfer end (simulated seconds).
    pub end: f64,
    /// Sustained rate during the transfer, bytes/second.
    pub rate: f64,
}

/// The complete history of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    horizon: TimeDelta,
    models: Vec<LevelModel>,
    rps: Vec<SimRp>,
    completed_per_level: Vec<Vec<usize>>,
    bytes_moved: BTreeMap<DeviceId, Bytes>,
    max_retained: Vec<usize>,
    jobs: Vec<XferJob>,
    destroyed_at: Vec<Option<f64>>,
    outages: Vec<Vec<(f64, f64)>>,
    disruptions: Vec<Disruption>,
}

impl SimReport {
    /// The simulated horizon.
    pub fn horizon(&self) -> TimeDelta {
        self.horizon
    }

    /// The per-level executable models the run used.
    pub fn models(&self) -> &[LevelModel] {
        &self.models
    }

    /// Every RP ever captured, in capture order.
    pub fn rps(&self) -> &[SimRp] {
        &self.rps
    }

    /// How many RPs completed at `level` during the run.
    pub fn completed_count(&self, level: usize) -> usize {
        self.completed_per_level.get(level).map_or(0, Vec::len)
    }

    /// The most RPs `level` ever retained simultaneously.
    pub fn max_retained(&self, level: usize) -> usize {
        self.max_retained.get(level).copied().unwrap_or(0)
    }

    /// Total bytes moved through `device` by RP maintenance.
    pub fn bytes_moved(&self, device: DeviceId) -> Bytes {
        self.bytes_moved
            .get(&device)
            .copied()
            .unwrap_or(Bytes::ZERO)
    }

    /// The average RP-maintenance bandwidth on `device` over the run.
    pub fn avg_bandwidth(&self, device: DeviceId) -> Bandwidth {
        if self.horizon.is_zero() {
            return Bandwidth::ZERO;
        }
        self.bytes_moved(device) / self.horizon
    }

    /// The propagation transfers that occupied `device`.
    pub fn jobs_on(&self, device: DeviceId) -> impl Iterator<Item = &XferJob> {
        self.jobs.iter().filter(move |j| j.device == device)
    }

    /// When an injected fault permanently destroyed `level`, if one did.
    pub fn destroyed_at(&self, level: usize) -> Option<f64> {
        self.destroyed_at.get(level).copied().flatten()
    }

    /// The transient-outage intervals `[start, end)` injected at
    /// `level`, merged and ascending.
    pub fn outages(&self, level: usize) -> &[(f64, f64)] {
        self.outages.get(level).map_or(&[], Vec::as_slice)
    }

    /// Whether `level` was offline (in an injected outage) at `t`.
    pub fn in_outage(&self, level: usize, t: f64) -> bool {
        self.outages(level)
            .iter()
            .any(|&(start, end)| start <= t && t < end)
    }

    /// Every degraded-mode consequence of the injected faults, in the
    /// order the run observed them. Empty for a fault-free run.
    pub fn disruptions(&self) -> &[Disruption] {
        &self.disruptions
    }

    /// The peak *simultaneous* propagation bandwidth observed on
    /// `device` — the quantity the analytic model provisions for
    /// (§3.3.1's per-technique demands are sustained window rates, so
    /// the observed peak must stay at or below their sum).
    pub fn peak_bandwidth(&self, device: DeviceId) -> Bandwidth {
        let mut boundaries: Vec<(f64, f64)> = Vec::new();
        for job in self.jobs_on(device) {
            boundaries.push((job.start, job.rate));
            boundaries.push((job.end, -job.rate));
        }
        boundaries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut current = 0.0f64;
        let mut peak = 0.0f64;
        for (_, delta) in boundaries {
            current += delta;
            peak = peak.max(current);
        }
        Bandwidth::from_bytes_per_sec(peak)
    }

    /// The newest state restorable from `level` at instant `t` for a
    /// target `target_age` seconds before `t`.
    ///
    /// Returns the content time and the RP (if the level is scheduled;
    /// continuous mirrors synthesize a virtual RP). `None` when the
    /// level holds nothing usable — including when an injected fault has
    /// permanently destroyed the level by `t`, or when the level is
    /// offline in a transient outage at `t`.
    pub fn restorable_at(
        &self,
        level: usize,
        t: f64,
        target_age: f64,
    ) -> Option<(f64, Option<&SimRp>)> {
        let cutoff = t - target_age;
        if self.destroyed_at(level).is_some_and(|d| d <= t) || self.in_outage(level, t) {
            return None;
        }
        match self.models.get(level)? {
            LevelModel::Primary => {
                if target_age == 0.0 {
                    Some((t, None))
                } else {
                    None
                }
            }
            LevelModel::Continuous { lag } => {
                // A mirror's content tracks its sources; if any upstream
                // level was destroyed, the content froze at that instant.
                let frozen = self
                    .destroyed_at
                    .iter()
                    .take(level)
                    .filter_map(|d| *d)
                    .fold(f64::INFINITY, f64::min);
                let content = t.min(frozen) - lag.as_secs();
                (content <= cutoff).then_some((content, None))
            }
            LevelModel::Scheduled { .. } => self
                .completed_per_level
                .get(level)?
                .iter()
                .map(|&i| &self.rps[i])
                .filter(|rp| rp.restorable_at(t) && rp.content_time <= cutoff)
                .max_by(|a, b| a.content_time.total_cmp(&b.content_time))
                .map(|rp| (rp.content_time, Some(rp))),
        }
    }

    /// Samples the staleness (age of the freshest restorable content) of
    /// `level` every `step` seconds across `[from, to)` — the sawtooth
    /// behind Figure 3, as actually executed. Instants where the level
    /// holds nothing yield `None`.
    pub fn staleness_series(
        &self,
        level: usize,
        from: f64,
        to: f64,
        step: f64,
    ) -> Vec<(f64, Option<f64>)> {
        if step <= 0.0 || to <= from {
            return Vec::new();
        }
        let mut series = Vec::new();
        let mut t = from;
        while t < to {
            let staleness = self
                .restorable_at(level, t, 0.0)
                .map(|(content, _)| t - content);
            series.push((t, staleness));
            t += step;
        }
        series
    }

    /// The set of RPs a restore from `rp` must read: the RP itself, its
    /// base full (for incrementals), and the intervening differentials.
    pub fn restore_set<'a>(&'a self, rp: &'a SimRp) -> Vec<&'a SimRp> {
        if rp.kind.is_full() {
            return vec![rp];
        }
        let level_rps: Vec<&SimRp> = self.completed_per_level[rp.level]
            .iter()
            .map(|&i| &self.rps[i])
            .collect();
        let base = level_rps
            .iter()
            .copied()
            .filter(|r| r.kind.is_full() && r.capture_time <= rp.capture_time)
            .max_by(|a, b| a.capture_time.total_cmp(&b.capture_time));
        let Some(base) = base else {
            return vec![rp];
        };
        let mut set: Vec<&SimRp> = vec![base];
        match rp.kind {
            RpKind::CumulativeIncrement { .. } => set.push(rp),
            RpKind::DifferentialIncrement { .. } => {
                for r in level_rps.iter().copied().filter(|r| {
                    !r.kind.is_full()
                        && r.capture_time > base.capture_time
                        && r.capture_time <= rp.capture_time
                }) {
                    set.push(r);
                }
            }
            RpKind::Full => {}
        }
        set
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    design: StorageDesign,
    workload: Workload,
    config: SimConfig,
    models: Vec<LevelModel>,
    faults: Vec<ResolvedFault>,
}

impl Simulation {
    /// Prepares a simulation of `design` under `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive horizon or
    /// a technique the simulator cannot schedule, and
    /// [`Error::FaultUnresolvable`] / [`Error::NonFiniteInput`] when the
    /// config's fault plan does not map onto `design` (see
    /// [`FaultPlan::resolve`]).
    pub fn new(
        design: &StorageDesign,
        workload: &Workload,
        config: SimConfig,
    ) -> Result<Simulation, Error> {
        if !(config.horizon.value() > 0.0 && config.horizon.is_finite()) {
            return Err(Error::invalid("sim.horizon", "must be positive and finite"));
        }
        let models = design
            .levels()
            .iter()
            .map(|l| level_model(l.technique(), workload))
            .collect::<Result<Vec<_>, Error>>()?;
        let faults = config.faults.resolve(design)?;
        Ok(Simulation {
            design: design.clone(),
            workload: workload.clone(),
            config,
            models,
            faults,
        })
    }

    /// Runs the pipeline to the horizon and returns the history.
    ///
    /// With an empty fault plan the run is fault-free and this is the
    /// plain capture → hold/propagate → retain pipeline. With faults the
    /// pipeline degrades gracefully instead of stopping: blocked
    /// captures retry with bounded backoff and widen their next window
    /// over the backlog, completions into an offline level defer to the
    /// repair instant, degraded links stretch propagation, and permanent
    /// destructions expire everything the level held. Every such
    /// deviation is recorded in [`SimReport::disruptions`].
    pub fn run(self) -> SimReport {
        let horizon = self.config.horizon.as_secs();
        let levels = self.design.levels();
        let mut queue = EventQueue::new();
        let mut rps: Vec<SimRp> = Vec::new();
        let mut completed: Vec<Vec<usize>> = vec![Vec::new(); levels.len()];
        let mut retained: Vec<VecDeque<usize>> = vec![VecDeque::new(); levels.len()];
        let mut max_retained = vec![0usize; levels.len()];
        let mut next_rep = vec![0usize; levels.len()];
        let mut bytes_moved: BTreeMap<DeviceId, Bytes> = BTreeMap::new();
        let mut jobs: Vec<XferJob> = Vec::new();
        let mut disruptions: Vec<Disruption> = Vec::new();

        // Outage and slowdown intervals are known from the plan up
        // front; destructions mutate run state (expiring RPs) and are
        // woven in as top-priority events instead.
        let mut fault_state: Vec<LevelFaultState> = vec![LevelFaultState::default(); levels.len()];
        for (index, fault) in self.faults.iter().enumerate() {
            match fault.kind {
                FaultKind::TransientOutage { repair_after } => {
                    let end = fault.at + repair_after.as_secs();
                    if end > fault.at {
                        for &level in &fault.levels {
                            fault_state[level].outages.push((fault.at, end));
                        }
                    }
                }
                FaultKind::BandwidthDegradation { factor, duration } => {
                    let end = fault.at + duration.as_secs();
                    if end > fault.at {
                        for &level in &fault.levels {
                            fault_state[level].slowdowns.push((fault.at, end, factor));
                        }
                    }
                }
                FaultKind::PermanentDestruction => {
                    queue.push(fault.at, Event::Fault { fault: index });
                }
            }
        }
        for state in &mut fault_state {
            merge_intervals(&mut state.outages);
        }

        let mut capture: Vec<CaptureState> = vec![CaptureState::default(); levels.len()];
        for (index, model) in self.models.iter().enumerate() {
            if let LevelModel::Scheduled { period, .. } = model {
                if period.as_secs() > 0.0 {
                    capture[index].next_nominal = period.as_secs();
                    queue.push(period.as_secs(), Event::Capture { level: index });
                }
            }
        }

        while let Some((t, event)) = queue.pop() {
            if t > horizon {
                break;
            }
            match event {
                Event::Fault { fault } => {
                    for &level in &self.faults[fault].levels {
                        if fault_state[level].destroyed_at.is_some() {
                            continue;
                        }
                        fault_state[level].destroyed_at = Some(t);
                        let count = retained[level].len();
                        for index in retained[level].drain(..) {
                            rps[index].expire_time = t;
                        }
                        if count > 0 {
                            disruptions.push(Disruption::LostRetrievalPoints {
                                level,
                                count,
                                at: t,
                            });
                        }
                        // RPs still propagating toward the level die with
                        // it; their pending completions are dropped when
                        // they fire.
                        for (index, rp) in rps.iter_mut().enumerate() {
                            if rp.level == level && rp.complete_time >= t && rp.expire_time > t {
                                rp.expire_time = t;
                                disruptions.push(Disruption::LostInFlight {
                                    level,
                                    rp: index,
                                    at: t,
                                });
                            }
                        }
                    }
                }
                Event::Capture { level } => {
                    let LevelModel::Scheduled {
                        period,
                        reps,
                        full_transfer_window,
                        full_restore,
                        ..
                    } = &self.models[level]
                    else {
                        continue;
                    };
                    let period_secs = period.as_secs();

                    // A destroyed level — or a destroyed source anywhere
                    // upstream — ends capture activity for good.
                    if (0..=level).any(|l| fault_state[l].destroyed_at.is_some()) {
                        if !capture[level].ceased {
                            capture[level].ceased = true;
                            disruptions.push(Disruption::CapturesCeased { level, at: t });
                        }
                        continue;
                    }

                    // An outage on this level or its direct upstream
                    // blocks the capture: retry with bounded backoff (the
                    // scheduler cannot know the repair time).
                    if in_interval(&fault_state[level].outages, t)
                        || in_interval(&fault_state[level - 1].outages, t)
                    {
                        let delay = retry_backoff(period_secs, capture[level].retries);
                        capture[level].retries += 1;
                        queue.push(t + delay, Event::Capture { level });
                        continue;
                    }

                    let scheduled = capture[level].next_nominal;
                    let retries = std::mem::take(&mut capture[level].retries);
                    if retries > 0 {
                        disruptions.push(Disruption::DelayedCapture {
                            level,
                            scheduled,
                            actual: t,
                            retries,
                        });
                    }
                    // Stay on the nominal grid: the next capture runs at
                    // the first schedule instant after the actual time.
                    let mut next = scheduled + period_secs;
                    while next <= t {
                        next += period_secs;
                    }
                    capture[level].next_nominal = next;
                    queue.push(next, Event::Capture { level });

                    let rep = reps[next_rep[level] % reps.len()];

                    // Content comes from the level above: the newest RP
                    // captured so far. Per §3.2.1 the hold window starts
                    // when that RP *arrives* at the upstream level, so
                    // this level's latency chains onto the upstream
                    // completion (Figure 3's Σ(holdW + propW)).
                    let upstream = match &self.models[level - 1] {
                        LevelModel::Primary => Some((t, t)),
                        LevelModel::Continuous { lag } => Some((t - lag.as_secs(), t)),
                        LevelModel::Scheduled { .. } => newest_captured(&rps, level - 1, t),
                    };
                    let Some((content_time, upstream_complete)) = upstream else {
                        continue; // upstream has produced nothing yet
                    };
                    next_rep[level] += 1;

                    // A degraded link stretches the propagation part of
                    // the latency by 1/factor.
                    let factor = slowdown_factor(&fault_state[level].slowdowns, t);
                    let prop_secs = rep.propagation.as_secs();
                    let mut deadline = t.max(upstream_complete) + rep.latency.as_secs();
                    let mut slowed_extra = 0.0;
                    if factor < 1.0 && prop_secs > 0.0 {
                        slowed_extra = prop_secs * (1.0 / factor - 1.0);
                        deadline += slowed_extra;
                    }

                    // A capture delayed past its nominal instant widens
                    // its update window back to that instant, catching up
                    // the backlog accumulated during the outage.
                    let backlog = t - scheduled;
                    let transfer_bytes = match rep.kind.window() {
                        Some(window) => self.config.update_model.unique_bytes(
                            &self.workload,
                            t - window.as_secs() - backlog,
                            t,
                        ),
                        None => match full_transfer_window {
                            Some(window) => self.config.update_model.unique_bytes(
                                &self.workload,
                                t - window.as_secs() - backlog,
                                t,
                            ),
                            None => self.workload.data_capacity(),
                        },
                    };
                    let restore_bytes = if rep.kind.is_full() {
                        *full_restore
                    } else {
                        transfer_bytes
                    };
                    let rp_index = rps.len();
                    rps.push(SimRp {
                        level,
                        kind: rep.kind,
                        content_time,
                        capture_time: t,
                        complete_time: deadline,
                        expire_time: f64::INFINITY,
                        transfer_bytes,
                        restore_bytes,
                    });
                    if slowed_extra > 0.0 {
                        disruptions.push(Disruption::SlowedPropagation {
                            level,
                            rp: rp_index,
                            extra: slowed_extra,
                        });
                    }
                    queue.push(
                        deadline,
                        Event::Complete {
                            level,
                            rp: rp_index,
                        },
                    );

                    // Record the transfer as a bandwidth-occupying job,
                    // unless media move physically (couriers) — those
                    // place no bandwidth demand (§3.2.3).
                    let physical = levels[level]
                        .transports()
                        .iter()
                        .any(|&d| matches!(self.design.device(d).kind(), DeviceKind::Courier));
                    if !physical && transfer_bytes.value() > 0.0 {
                        let (start, duration) = if rep.propagation.value() > 0.0 {
                            let effective = prop_secs / factor;
                            (deadline - effective, effective)
                        } else {
                            // Zero propagation window: the data spreads
                            // over the accumulation period (resilvering),
                            // longer if the link is degraded.
                            (t, period_secs / factor)
                        };
                        let rate = transfer_bytes.value() / duration;
                        let mut touched = vec![levels[level - 1].host(), levels[level].host()];
                        touched.extend_from_slice(levels[level].transports());
                        for device in touched {
                            jobs.push(XferJob {
                                device,
                                start,
                                end: start + duration,
                                rate,
                            });
                        }
                    }
                }
                Event::Complete { level, rp } => {
                    // An RP bound for a destroyed level was lost in
                    // flight (recorded at destruction time).
                    if fault_state[level].destroyed_at.is_some() {
                        continue;
                    }
                    // A level cannot commit an RP while offline: the
                    // completion defers to the repair instant.
                    if let Some(end) = interval_end(&fault_state[level].outages, t) {
                        rps[rp].complete_time = end;
                        disruptions.push(Disruption::DelayedCompletion {
                            level,
                            rp,
                            scheduled: t,
                            actual: end,
                        });
                        queue.push(end, Event::Complete { level, rp });
                        continue;
                    }
                    completed[level].push(rp);
                    retained[level].push_back(rp);
                    let LevelModel::Scheduled { retention, .. } = &self.models[level] else {
                        continue;
                    };
                    while retained[level].len() > *retention {
                        let Some(expired) = retained[level].pop_front() else {
                            break;
                        };
                        rps[expired].expire_time = t;
                    }
                    max_retained[level] = max_retained[level].max(retained[level].len());

                    // Account the propagation traffic.
                    let transfer = rps[rp].transfer_bytes;
                    let source = levels[level - 1].host();
                    let host = levels[level].host();
                    *bytes_moved.entry(source).or_default() += transfer;
                    *bytes_moved.entry(host).or_default() += transfer;
                    for &t_dev in levels[level].transports() {
                        *bytes_moved.entry(t_dev).or_default() += transfer;
                    }
                }
            }
        }

        SimReport {
            horizon: self.config.horizon,
            models: self.models,
            rps,
            completed_per_level: completed,
            bytes_moved,
            max_retained,
            jobs,
            destroyed_at: fault_state.iter().map(|s| s.destroyed_at).collect(),
            outages: fault_state.into_iter().map(|s| s.outages).collect(),
            disruptions,
        }
    }
}

/// Per-level fault state assembled from the resolved plan.
#[derive(Debug, Clone, Default)]
struct LevelFaultState {
    /// Merged `[start, end)` offline intervals.
    outages: Vec<(f64, f64)>,
    /// `(start, end, factor)` bandwidth-degradation intervals.
    slowdowns: Vec<(f64, f64, f64)>,
    /// Set by the destruction event when it fires.
    destroyed_at: Option<f64>,
}

/// Per-level capture bookkeeping: the nominal schedule instant of the
/// pending capture, and its outage-retry count.
#[derive(Debug, Clone, Default)]
struct CaptureState {
    next_nominal: f64,
    retries: u32,
    ceased: bool,
}

/// Merges overlapping or adjacent `[start, end)` intervals in place.
fn merge_intervals(intervals: &mut Vec<(f64, f64)>) {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for &(start, end) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    *intervals = merged;
}

/// Whether `t` falls inside any `[start, end)` interval.
fn in_interval(intervals: &[(f64, f64)], t: f64) -> bool {
    interval_end(intervals, t).is_some()
}

/// The end of the `[start, end)` interval covering `t`, if any.
fn interval_end(intervals: &[(f64, f64)], t: f64) -> Option<f64> {
    intervals
        .iter()
        .find(|&&(start, end)| start <= t && t < end)
        .map(|&(_, end)| end)
}

/// The most severe bandwidth-degradation factor active at `t`.
fn slowdown_factor(slowdowns: &[(f64, f64, f64)], t: f64) -> f64 {
    slowdowns
        .iter()
        .filter(|&&(start, end, _)| start <= t && t < end)
        .map(|&(_, _, factor)| factor)
        .fold(1.0, f64::min)
}

/// Bounded exponential backoff for captures blocked by an outage: starts
/// at a small fraction of the capture period (at least a second) and
/// doubles up to a quarter period.
fn retry_backoff(period: f64, retries: u32) -> f64 {
    let base = (period / 64.0).max(1.0);
    let cap = (period / 4.0).max(base);
    (base * 2f64.powi(retries.min(30) as i32)).min(cap)
}

/// The newest upstream RP captured no later than `now`, as
/// `(content_time, complete_time)`.
fn newest_captured(rps: &[SimRp], level: usize, now: f64) -> Option<(f64, f64)> {
    rps.iter()
        .filter(|rp| rp.level == level && rp.capture_time <= now)
        .max_by(|a, b| a.content_time.total_cmp(&b.content_time))
        .map(|rp| (rp.content_time, rp.complete_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_report(weeks: f64) -> SimReport {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(weeks)),
        )
        .unwrap()
        .run()
    }

    #[test]
    fn pipeline_fills_in_schedule_order() {
        let report = baseline_report(12.0);
        // 12 weeks: mirrors every 12 h → ~167 completions; backups
        // weekly → 11; vault every 4 weeks with a ~4.5-week latency → 1+.
        assert!(
            report.completed_count(1) >= 160,
            "{}",
            report.completed_count(1)
        );
        assert!(
            (10..=12).contains(&report.completed_count(2)),
            "{}",
            report.completed_count(2)
        );
        assert!(report.completed_count(3) >= 1);
        assert_eq!(report.completed_count(0), 0, "the primary captures nothing");
    }

    #[test]
    fn retention_never_exceeds_the_configured_count() {
        let report = baseline_report(20.0);
        assert!(report.max_retained(1) <= 4);
        assert!(report.max_retained(2) <= 4);
        assert!(report.max_retained(3) <= 39);
    }

    #[test]
    fn expired_rps_are_not_restorable() {
        let report = baseline_report(12.0);
        let t = TimeDelta::from_weeks(11.0).as_secs();
        let mirror_rps: Vec<&SimRp> = report
            .rps()
            .iter()
            .filter(|rp| rp.level == 1 && rp.restorable_at(t))
            .collect();
        assert!(mirror_rps.len() <= 4);
        // And the restorable set is the *newest* four.
        let newest = report.restorable_at(1, t, 0.0).unwrap().0;
        for rp in mirror_rps {
            assert!(newest >= rp.content_time);
        }
    }

    #[test]
    fn observed_mirror_staleness_stays_within_the_analytic_lag() {
        let report = baseline_report(12.0);
        let design = ssdep_core::presets::baseline_design();
        let analytic = design.levels()[1].technique().worst_own_lag().as_secs();
        for step in 100..200 {
            let t = step as f64 * 3600.0;
            if let Some((content, _)) = report.restorable_at(1, t, 0.0) {
                let staleness = t - content;
                assert!(
                    staleness <= analytic + 1e-6,
                    "at t={t}: staleness {staleness} exceeds analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn vault_content_is_weeks_stale_but_bounded() {
        let report = baseline_report(30.0);
        let design = ssdep_core::presets::baseline_design();
        let ranges = ssdep_core::analysis::level_ranges(&design);
        let analytic = ranges[3].max_lag.as_secs();
        let t = TimeDelta::from_weeks(29.0).as_secs();
        let (content, rp) = report
            .restorable_at(3, t, 0.0)
            .expect("vault has an RP by week 29");
        let staleness = t - content;
        assert!(
            staleness > TimeDelta::from_weeks(4.0).as_secs(),
            "vault must lag weeks"
        );
        assert!(
            staleness <= analytic + 1e-6,
            "{staleness} vs analytic {analytic}"
        );
        assert!(rp.unwrap().kind.is_full());
    }

    #[test]
    fn average_traffic_stays_below_provisioned_demands() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = baseline_report(16.0);
        for id in design.device_ids() {
            let index = id.index();
            let simulated = report.avg_bandwidth(id);
            let provisioned = demands.bandwidth_on(id) + workload.avg_access_rate();
            assert!(
                simulated <= provisioned * 1.05,
                "device {index}: simulated {simulated} vs provisioned {provisioned}"
            );
        }
    }

    #[test]
    fn observed_peak_bandwidth_stays_within_analytic_provisioning() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = baseline_report(16.0);
        for id in design.device_ids() {
            let peak = report.peak_bandwidth(id);
            // The analytic demand sums each technique's sustained window
            // rate; overlapping jobs must never exceed it (small slack
            // for f64 boundary arithmetic).
            let provisioned = demands.bandwidth_on(id);
            assert!(
                peak <= provisioned * 1.001 + ssdep_core::units::Bandwidth::from_bytes_per_sec(1.0),
                "{}: peak {peak} vs provisioned {provisioned}",
                design.device(id).name()
            );
        }
        // And the tape library's peak is the full-backup rate — the
        // provisioning is tight, not slack.
        let tape = design.device_id("tape library").unwrap();
        let peak = report.peak_bandwidth(tape);
        assert!(
            (peak.as_mib_per_sec() - 8.06).abs() < 0.1,
            "tape peak {peak}"
        );
    }

    #[test]
    fn staleness_series_is_a_sawtooth_bounded_by_the_analytic_lag() {
        let report = baseline_report(12.0);
        let design = ssdep_core::presets::baseline_design();
        let analytic = ssdep_core::analysis::level_ranges(&design)[2]
            .max_lag
            .as_secs();
        let from = TimeDelta::from_weeks(6.0).as_secs();
        let to = TimeDelta::from_weeks(10.0).as_secs();
        let series = report.staleness_series(2, from, to, 3600.0);
        assert!(!series.is_empty());
        let values: Vec<f64> = series.iter().filter_map(|(_, s)| *s).collect();
        assert!(!values.is_empty());
        let max = values.iter().cloned().fold(0.0, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= analytic + 1.0, "max {max} vs analytic {analytic}");
        // A sawtooth: spans at least most of a weekly cycle.
        assert!(max - min > TimeDelta::from_days(5.0).as_secs());
        // Degenerate queries return nothing.
        assert!(report.staleness_series(2, 10.0, 5.0, 60.0).is_empty());
        assert!(report.staleness_series(2, 0.0, 10.0, 0.0).is_empty());
    }

    #[test]
    fn courier_shipments_occupy_no_bandwidth() {
        let report = baseline_report(16.0);
        let design = ssdep_core::presets::baseline_design();
        let vault = design.device_id("tape vault").unwrap();
        let courier = design.device_id("air shipment").unwrap();
        assert_eq!(report.jobs_on(vault).count(), 0);
        assert_eq!(report.jobs_on(courier).count(), 0);
        assert_eq!(report.peak_bandwidth(courier), Bandwidth::ZERO);
    }

    #[test]
    fn primary_serves_only_now() {
        let report = baseline_report(4.0);
        let t = TimeDelta::from_weeks(3.0).as_secs();
        assert!(report.restorable_at(0, t, 0.0).is_some());
        assert!(report.restorable_at(0, t, 60.0).is_none());
    }

    #[test]
    fn continuous_mirror_synthesizes_lagged_content() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::async_batch_mirror_design(1);
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_hours(2.0)),
        )
        .unwrap()
        .run();
        let t = 3600.0;
        let (content, rp) = report.restorable_at(1, t, 0.0).unwrap();
        // Batched mirror: newest completed batch is at most 2 minutes old.
        assert!(t - content <= 120.0 + 1e-9, "staleness {}", t - content);
        assert!(rp.is_some());
    }

    #[test]
    fn restore_set_assembles_incremental_chains() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::weekly_vault_full_incremental_design();
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(6.0)),
        )
        .unwrap()
        .run();
        let t = TimeDelta::from_weeks(5.5).as_secs();
        let (_, rp) = report.restorable_at(2, t, 0.0).expect("backup has RPs");
        let rp = rp.unwrap();
        let set = report.restore_set(rp);
        if rp.kind.is_full() {
            assert_eq!(set.len(), 1);
        } else {
            assert!(set.len() >= 2, "incremental restore needs its base full");
            assert!(set[0].kind.is_full());
        }
        let total: Bytes = set.iter().map(|r| r.restore_bytes).sum();
        assert!(total >= workload.data_capacity());
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        assert!(Simulation::new(&design, &workload, SimConfig::new(TimeDelta::ZERO)).is_err());
    }

    fn faulted_report(weeks: f64, plan: crate::fault::FaultPlan) -> SimReport {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let config = SimConfig::new(TimeDelta::from_weeks(weeks)).with_faults(plan);
        Simulation::new(&design, &workload, config).unwrap().run()
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_report_exactly() {
        let baseline = baseline_report(12.0);
        let empty = faulted_report(12.0, crate::fault::FaultPlan::new());
        assert_eq!(baseline, empty);
        assert!(empty.disruptions().is_empty());
        for level in 0..4 {
            assert_eq!(empty.destroyed_at(level), None);
            assert!(empty.outages(level).is_empty());
        }
    }

    #[test]
    fn fault_beyond_the_horizon_changes_nothing() {
        use crate::fault::{FaultKind, FaultTarget, InjectedFault};
        let baseline = baseline_report(12.0);
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(40.0),
            target: FaultTarget::Level { index: 2 },
            kind: FaultKind::PermanentDestruction,
        });
        let report = faulted_report(12.0, plan);
        assert!(report.disruptions().is_empty());
        assert_eq!(report.destroyed_at(2), None);
        assert_eq!(baseline.rps(), report.rps());
        assert_eq!(baseline.completed_count(2), report.completed_count(2));
    }

    #[test]
    fn transient_outage_delays_captures_then_catches_up() {
        use crate::fault::{Disruption, FaultKind, FaultTarget, InjectedFault};
        let baseline = baseline_report(16.0);
        // Take the backup level offline for two days, starting just
        // before its week-8 capture.
        let outage_start = TimeDelta::from_weeks(8.0) - TimeDelta::from_hours(1.0);
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: outage_start,
            target: FaultTarget::Level { index: 2 },
            kind: FaultKind::TransientOutage {
                repair_after: TimeDelta::from_days(2.0),
            },
        });
        let report = faulted_report(16.0, plan);

        // The blocked capture retried and succeeded after repair.
        let delayed: Vec<&Disruption> = report
            .disruptions()
            .iter()
            .filter(|d| matches!(d, Disruption::DelayedCapture { level: 2, .. }))
            .collect();
        assert!(!delayed.is_empty(), "{:?}", report.disruptions());
        let Disruption::DelayedCapture {
            scheduled,
            actual,
            retries,
            ..
        } = delayed[0]
        else {
            unreachable!();
        };
        assert!(*actual > *scheduled);
        assert!(*retries > 0);
        let repair = outage_start.as_secs() + TimeDelta::from_days(2.0).as_secs();
        assert!(
            *actual >= repair,
            "capture at {actual} inside outage ending {repair}"
        );

        // While offline the level serves nothing; afterwards it recovers.
        let mid_outage = outage_start.as_secs() + 3600.0;
        assert!(report.in_outage(2, mid_outage));
        assert!(report.restorable_at(2, mid_outage, 0.0).is_none());
        let late = TimeDelta::from_weeks(15.0).as_secs();
        assert!(report.restorable_at(2, late, 0.0).is_some());

        // The delayed capture caught up the backlog: it moved at least
        // as much as the corresponding fault-free capture.
        let faulted_total: Bytes = report
            .rps()
            .iter()
            .filter(|r| r.level == 2)
            .map(|r| r.transfer_bytes)
            .sum();
        let baseline_total: Bytes = baseline
            .rps()
            .iter()
            .filter(|r| r.level == 2)
            .map(|r| r.transfer_bytes)
            .sum();
        assert!(faulted_total >= baseline_total * 0.9);
    }

    #[test]
    fn completion_into_an_outage_defers_to_repair() {
        use crate::fault::{Disruption, FaultKind, FaultTarget, InjectedFault};
        // The vault capture at week 4 chains onto the backup's own
        // completion and lands at ~week 8.506; put the vault in outage
        // across that completion instant.
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(8.45),
            target: FaultTarget::Level { index: 3 },
            kind: FaultKind::TransientOutage {
                repair_after: TimeDelta::from_weeks(0.2),
            },
        });
        let report = faulted_report(16.0, plan);
        let deferred: Vec<&Disruption> = report
            .disruptions()
            .iter()
            .filter(|d| matches!(d, Disruption::DelayedCompletion { level: 3, .. }))
            .collect();
        assert!(!deferred.is_empty(), "{:?}", report.disruptions());
        let Disruption::DelayedCompletion {
            rp,
            scheduled,
            actual,
            ..
        } = deferred[0]
        else {
            unreachable!();
        };
        assert!(actual > scheduled);
        assert_eq!(report.rps()[*rp].complete_time, *actual);
        let repair = TimeDelta::from_weeks(8.65).as_secs();
        assert!(
            (actual - repair).abs() < 1.0,
            "deferred to {actual}, repair at {repair}"
        );
        // Whether or not a completion fell in the window, the level
        // still works after repair.
        let late = TimeDelta::from_weeks(15.0).as_secs();
        assert!(report.restorable_at(3, late, 0.0).is_some());
    }

    #[test]
    fn permanent_destruction_loses_rps_and_ceases_captures() {
        use crate::fault::{Disruption, FaultKind, FaultTarget, InjectedFault};
        let baseline = baseline_report(16.0);
        let destroy_at = TimeDelta::from_weeks(8.0) + TimeDelta::from_hours(1.0);
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: destroy_at,
            target: FaultTarget::Device {
                name: "tape library".into(),
            },
            kind: FaultKind::PermanentDestruction,
        });
        let report = faulted_report(16.0, plan);
        let d = destroy_at.as_secs();

        assert_eq!(report.destroyed_at(2), Some(d));
        assert!(report.disruptions().iter().any(
            |x| matches!(x, Disruption::LostRetrievalPoints { level: 2, count, .. } if *count > 0)
        ));
        assert!(report
            .disruptions()
            .iter()
            .any(|x| matches!(x, Disruption::CapturesCeased { level: 2, .. })));

        // Nothing is restorable from the destroyed level afterwards,
        // and captures stopped: fewer completions than fault-free.
        assert!(report.restorable_at(2, d + 1.0, 0.0).is_none());
        assert!(report
            .restorable_at(2, TimeDelta::from_weeks(15.0).as_secs(), 0.0)
            .is_none());
        assert!(report.completed_count(2) < baseline.completed_count(2));
        // Before the fault the level behaved normally.
        assert!(report.restorable_at(2, d - 3600.0, 0.0).is_some());
        // Surviving levels keep serving (the vault holds pre-fault RPs).
        assert!(report
            .restorable_at(3, TimeDelta::from_weeks(10.0).as_secs(), 0.0)
            .is_some());
    }

    #[test]
    fn destroying_the_primary_freezes_downstream_content() {
        use crate::fault::{FaultKind, FaultTarget, InjectedFault};
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::async_batch_mirror_design(1);
        let destroy_at = TimeDelta::from_minutes(50.0);
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: destroy_at,
            target: FaultTarget::Level { index: 0 },
            kind: FaultKind::PermanentDestruction,
        });
        let config = SimConfig::new(TimeDelta::from_hours(2.0)).with_faults(plan);
        let report = Simulation::new(&design, &workload, config).unwrap().run();
        // The primary serves nothing once destroyed.
        assert!(report
            .restorable_at(0, destroy_at.as_secs() + 1.0, 0.0)
            .is_none());
        // The batched mirror keeps its last completed batch, but its
        // content never advances past the destruction instant.
        let late = TimeDelta::from_hours(1.9).as_secs();
        if let Some((content, _)) = report.restorable_at(1, late, 0.0) {
            assert!(content <= destroy_at.as_secs() + 1e-9, "content {content}");
        }
    }

    #[test]
    fn continuous_mirror_content_freezes_when_the_primary_dies() {
        use crate::fault::{FaultKind, FaultTarget, InjectedFault};
        use ssdep_core::hierarchy::{Level, StorageDesign};
        use ssdep_core::protection::{PrimaryCopy, RemoteMirror, Technique};
        let workload = ssdep_core::presets::cello_workload();
        let mut builder = StorageDesign::builder("async mirror");
        let array = builder
            .add_device(ssdep_core::presets::primary_array_spec())
            .unwrap();
        let remote = builder
            .add_device(ssdep_core::presets::remote_array_spec())
            .unwrap();
        builder.add_level(Level::new(
            "primary copy",
            Technique::PrimaryCopy(PrimaryCopy::new()),
            array,
        ));
        builder.add_level(Level::new(
            "async mirror",
            Technique::RemoteMirror(RemoteMirror::asynchronous(TimeDelta::from_secs(30.0))),
            remote,
        ));
        let design = builder.build().unwrap();

        let destroy_at = TimeDelta::from_minutes(50.0);
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: destroy_at,
            target: FaultTarget::Level { index: 0 },
            kind: FaultKind::PermanentDestruction,
        });
        let config = SimConfig::new(TimeDelta::from_hours(2.0)).with_faults(plan);
        let report = Simulation::new(&design, &workload, config).unwrap().run();

        // Before the fault the mirror trails by exactly the write lag.
        let before = TimeDelta::from_minutes(30.0).as_secs();
        let (content, _) = report.restorable_at(1, before, 0.0).unwrap();
        assert!((content - (before - 30.0)).abs() < 1e-9);
        // Afterwards the mirror still serves, but its content froze at
        // the destruction instant minus the lag.
        let late = TimeDelta::from_hours(1.5).as_secs();
        let (content, _) = report
            .restorable_at(1, late, 0.0)
            .expect("mirror still serves");
        assert!(
            (content - (destroy_at.as_secs() - 30.0)).abs() < 1e-9,
            "content {content}"
        );
        // The destroyed primary serves nothing.
        assert!(report.restorable_at(0, late, 0.0).is_none());
    }

    #[test]
    fn bandwidth_degradation_stretches_propagation() {
        use crate::fault::{Disruption, FaultKind, FaultTarget, InjectedFault};
        let baseline = baseline_report(16.0);
        // Quarter-speed tape path across the week-8 backup capture.
        let plan = crate::fault::FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(7.9),
            target: FaultTarget::Level { index: 2 },
            kind: FaultKind::BandwidthDegradation {
                factor: 0.25,
                duration: TimeDelta::from_days(2.0),
            },
        });
        let report = faulted_report(16.0, plan);
        let slowed: Vec<&Disruption> = report
            .disruptions()
            .iter()
            .filter(|d| matches!(d, Disruption::SlowedPropagation { level: 2, .. }))
            .collect();
        assert!(!slowed.is_empty(), "{:?}", report.disruptions());
        let Disruption::SlowedPropagation { rp, extra, .. } = slowed[0] else {
            unreachable!();
        };
        assert!(*extra > 0.0);
        // The affected RP completes later than its fault-free twin.
        let faulted_rp = report.rps()[*rp];
        let twin = baseline
            .rps()
            .iter()
            .find(|r| r.level == 2 && r.capture_time == faulted_rp.capture_time)
            .expect("same capture exists fault-free");
        assert!(faulted_rp.complete_time > twin.complete_time);
        assert!((faulted_rp.complete_time - twin.complete_time - extra).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_trace_yields_zero_unique_bytes() {
        let workload = ssdep_core::presets::cello_workload();
        let trace = ssdep_workload::Trace::from_records(
            Bytes::from_kib(4.0),
            16,
            TimeDelta::ZERO,
            Vec::new(),
        )
        .unwrap();
        let model = UpdateModel::Trace(trace);
        // Regression: `start.rem_euclid(duration)` with duration 0 is
        // NaN; the guard must short-circuit to zero instead.
        let sampled = model.unique_bytes(&workload, 500.0, 900.0);
        assert_eq!(sampled, Bytes::ZERO);
        assert_eq!(model.unique_bytes(&workload, 0.0, 0.0), Bytes::ZERO);
    }

    #[test]
    fn trace_driven_sizes_wrap_and_bound() {
        let trace = ssdep_workload::TraceGenerator::builder()
            .duration(TimeDelta::from_hours(4.0))
            .extent_count(5_000)
            .updates_per_sec(2.0)
            .locality(0.8, 100)
            .seed(3)
            .build()
            .unwrap()
            .generate();
        let workload = ssdep_core::presets::cello_workload();
        let model = UpdateModel::Trace(trace.clone());
        let short = model.unique_bytes(&workload, 0.0, 600.0);
        let wrapped = model.unique_bytes(&workload, 13_000.0, 15_000.0);
        let whole = model.unique_bytes(&workload, 0.0, 1e9);
        assert!(short > Bytes::ZERO);
        assert!(wrapped > Bytes::ZERO);
        assert!(whole <= trace.data_capacity());
        assert!(short <= whole);
    }
}

//! The simulator's event queue.
//!
//! Events are ordered by time, then by a kind priority (injected faults
//! first, so state changes apply before anything else at that instant;
//! then completions before captures, so a level capturing at the same
//! instant an upstream RP completes sees it), then by level, then by
//! insertion order — a total, deterministic order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An in-flight RP finishes propagating into `level` and becomes
    /// restorable. `rp` indexes the simulation's RP arena.
    Complete {
        /// The receiving level.
        level: usize,
        /// Index into the RP arena.
        rp: usize,
    },
    /// `level` captures its next RP.
    Capture {
        /// The capturing level.
        level: usize,
    },
    /// An injected fault takes effect. `fault` indexes the simulation's
    /// resolved fault list.
    Fault {
        /// Index into the resolved fault list.
        fault: usize,
    },
}

impl Event {
    fn priority(&self) -> (u8, usize) {
        match self {
            // Faults apply before any same-instant activity so that a
            // capture or completion scheduled at the fault time already
            // sees the degraded state.
            Event::Fault { fault } => (0, *fault),
            Event::Complete { level, .. } => (1, *level),
            Event::Capture { level } => (2, *level),
        }
    }
}

#[derive(Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, priority, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.event.priority().cmp(&self.event.priority()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timed events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at simulated second `time`.
    pub fn push(&mut self, time: f64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// How many events are pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.push(5.0, Event::Capture { level: 1 });
        queue.push(1.0, Event::Capture { level: 2 });
        queue.push(3.0, Event::Capture { level: 3 });
        let times: Vec<f64> = std::iter::from_fn(|| queue.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn completions_precede_captures_at_the_same_instant() {
        let mut queue = EventQueue::new();
        queue.push(2.0, Event::Capture { level: 1 });
        queue.push(2.0, Event::Complete { level: 2, rp: 0 });
        let (_, first) = queue.pop().unwrap();
        assert!(matches!(first, Event::Complete { .. }));
    }

    #[test]
    fn lower_levels_capture_first_at_ties() {
        let mut queue = EventQueue::new();
        queue.push(2.0, Event::Capture { level: 3 });
        queue.push(2.0, Event::Capture { level: 1 });
        let (_, first) = queue.pop().unwrap();
        assert_eq!(first, Event::Capture { level: 1 });
    }

    #[test]
    fn faults_precede_everything_at_the_same_instant() {
        let mut queue = EventQueue::new();
        queue.push(2.0, Event::Complete { level: 0, rp: 0 });
        queue.push(2.0, Event::Capture { level: 0 });
        queue.push(2.0, Event::Fault { fault: 1 });
        queue.push(2.0, Event::Fault { fault: 0 });
        let (_, first) = queue.pop().unwrap();
        assert_eq!(first, Event::Fault { fault: 0 });
        let (_, second) = queue.pop().unwrap();
        assert_eq!(second, Event::Fault { fault: 1 });
        let (_, third) = queue.pop().unwrap();
        assert!(matches!(third, Event::Complete { .. }));
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut queue = EventQueue::new();
        queue.push(1.0, Event::Complete { level: 1, rp: 7 });
        queue.push(1.0, Event::Complete { level: 1, rp: 9 });
        assert_eq!(queue.len(), 2);
        let (_, first) = queue.pop().unwrap();
        assert_eq!(first, Event::Complete { level: 1, rp: 7 });
        assert!(!queue.is_empty());
    }
}

//! Fault injection: timed hardware faults applied to a running
//! simulation.
//!
//! The paper evaluates dependability by hypothesizing a *single* failure
//! and asking what the design's windows guarantee afterwards (§3.3.2).
//! This module complements those worst-case bounds by letting a
//! simulation run *through* faults: a [`FaultPlan`] lists timed
//! [`InjectedFault`]s, each striking part of the hierarchy — one device
//! by name, one protection level, or every device inside a
//! [`FailureScope`] (site, region, …) — with one of three behaviours:
//!
//! * [`FaultKind::TransientOutage`] — the affected levels go offline and
//!   return after a repair delay with their retained contents intact.
//!   Captures that land in the outage retry with bounded exponential
//!   backoff and widen their transfer window to cover the backlog;
//!   propagations that would complete mid-outage are deferred to repair.
//! * [`FaultKind::PermanentDestruction`] — the affected levels and
//!   everything they retain (or have in flight) are lost for the rest of
//!   the run, and capture activity into or through them ceases.
//! * [`FaultKind::BandwidthDegradation`] — transfers touching the
//!   affected levels run at a fraction of their provisioned rate for a
//!   while, stretching propagation windows and delaying completion.
//!
//! A plan is validated and mapped onto concrete hierarchy levels by
//! [`FaultPlan::resolve`] before the run starts, so malformed plans are
//! rejected with typed errors instead of surfacing mid-simulation.

use serde::{Deserialize, Serialize};
use ssdep_core::error::Error;
use ssdep_core::failure::FailureScope;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::TimeDelta;

/// What an injected fault does to the hardware it strikes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The affected devices go offline, then return after `repair_after`
    /// with their retained contents intact (a power loss, a switch
    /// reboot, a severed-then-respliced link).
    TransientOutage {
        /// How long the outage lasts.
        repair_after: TimeDelta,
    },
    /// The affected devices and everything they retain are destroyed for
    /// the remainder of the run.
    PermanentDestruction,
    /// Transfers touching the affected devices run at `factor` of their
    /// provisioned rate for `duration` (congestion, a degraded RAID
    /// rebuild, a flaky long-haul link).
    BandwidthDegradation {
        /// Remaining fraction of the provisioned rate, in `(0, 1]`.
        factor: f64,
        /// How long the degradation lasts.
        duration: TimeDelta,
    },
}

/// Which part of the design a fault strikes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A single device, by registered name. Every level the device hosts
    /// or transports is affected.
    Device {
        /// The device's registered name.
        name: String,
    },
    /// One protection level, by zero-based index.
    Level {
        /// The affected level.
        index: usize,
    },
    /// Every level whose host or transport devices fall inside a failure
    /// scope (correlated faults: a building, site or region event).
    Scope {
        /// The correlated failure scope.
        scope: FailureScope,
    },
}

/// One timed fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// When the fault strikes, measured from the start of the run.
    pub at: TimeDelta,
    /// What it strikes.
    pub target: FaultTarget,
    /// What it does.
    pub kind: FaultKind,
}

/// An ordered list of faults to inject into one run.
///
/// The empty plan is the default and leaves the simulation untouched:
/// running with `FaultPlan::default()` produces a report identical to a
/// fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults, in declaration order.
    pub faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends `fault` to the plan.
    pub fn with_fault(mut self, fault: InjectedFault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many faults the plan injects.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Validates the plan against `design` and maps each fault onto the
    /// concrete hierarchy levels it affects.
    ///
    /// # Errors
    ///
    /// * [`Error::NonFiniteInput`] — a time, duration or factor is NaN
    ///   or infinite.
    /// * [`Error::InvalidParameter`] — a negative time or duration, or a
    ///   degradation factor outside `(0, 1]`.
    /// * [`Error::FaultUnresolvable`] — an unknown device name, an
    ///   out-of-range level index, or a scope that touches no level of
    ///   the hierarchy.
    pub fn resolve(&self, design: &StorageDesign) -> Result<Vec<ResolvedFault>, Error> {
        self.faults
            .iter()
            .enumerate()
            .map(|(index, fault)| resolve_one(index, fault, design))
            .collect()
    }
}

/// A fault mapped onto the concrete hierarchy levels it affects.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedFault {
    /// When the fault strikes, simulated seconds.
    pub at: f64,
    /// The affected levels, ascending and de-duplicated.
    pub levels: Vec<usize>,
    /// What the fault does.
    pub kind: FaultKind,
}

fn resolve_one(
    index: usize,
    fault: &InjectedFault,
    design: &StorageDesign,
) -> Result<ResolvedFault, Error> {
    let at = fault
        .at
        .ensure_non_negative(&format!("faults[{index}].at"))?
        .as_secs();
    match fault.kind {
        FaultKind::TransientOutage { repair_after } => {
            repair_after.ensure_non_negative(&format!("faults[{index}].repair_after"))?;
        }
        FaultKind::PermanentDestruction => {}
        FaultKind::BandwidthDegradation { factor, duration } => {
            if !factor.is_finite() {
                return Err(Error::non_finite(format!("faults[{index}].factor")));
            }
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(Error::invalid(
                    format!("faults[{index}].factor"),
                    "must be in (0, 1]",
                ));
            }
            duration.ensure_non_negative(&format!("faults[{index}].duration"))?;
        }
    }

    let levels = affected_levels(index, &fault.target, design)?;
    Ok(ResolvedFault {
        at,
        levels,
        kind: fault.kind.clone(),
    })
}

/// The levels whose host or transport devices `target` strikes.
fn affected_levels(
    index: usize,
    target: &FaultTarget,
    design: &StorageDesign,
) -> Result<Vec<usize>, Error> {
    let levels = design.levels();
    match target {
        FaultTarget::Device { name } => {
            let id = design.device_id(name).ok_or_else(|| {
                Error::fault_unresolvable(index, format!("unknown device `{name}`"))
            })?;
            let affected: Vec<usize> = levels
                .iter()
                .enumerate()
                .filter(|(_, l)| l.host() == id || l.transports().contains(&id))
                .map(|(i, _)| i)
                .collect();
            if affected.is_empty() {
                return Err(Error::fault_unresolvable(
                    index,
                    format!("device `{name}` backs no hierarchy level"),
                ));
            }
            Ok(affected)
        }
        FaultTarget::Level { index: level } => {
            if *level >= levels.len() {
                return Err(Error::fault_unresolvable(
                    index,
                    format!(
                        "level {level} out of range (design has {} levels)",
                        levels.len()
                    ),
                ));
            }
            Ok(vec![*level])
        }
        FaultTarget::Scope { scope } => {
            let affected: Vec<usize> = levels
                .iter()
                .enumerate()
                .filter(|(i, l)| {
                    design.level_destroyed(*i, scope)
                        || l.transports()
                            .iter()
                            .any(|&t| design.device_destroyed(t, scope))
                })
                .map(|(i, _)| i)
                .collect();
            if affected.is_empty() {
                return Err(Error::fault_unresolvable(
                    index,
                    format!("scope `{}` touches no hierarchy level", scope.name()),
                ));
            }
            Ok(affected)
        }
    }
}

/// One simulated consequence of an injected fault, in the order the run
/// observed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disruption {
    /// A capture found its level (or its direct upstream) in outage and
    /// succeeded only after retrying.
    DelayedCapture {
        /// The capturing level.
        level: usize,
        /// The nominal schedule time the capture missed.
        scheduled: f64,
        /// When it finally captured.
        actual: f64,
        /// How many backoff retries it took.
        retries: u32,
    },
    /// A propagation would have completed during an outage of the
    /// receiving level and was deferred to the repair instant.
    DelayedCompletion {
        /// The receiving level.
        level: usize,
        /// Index into the report's RP list.
        rp: usize,
        /// The original completion deadline.
        scheduled: f64,
        /// When the RP actually became restorable.
        actual: f64,
    },
    /// A propagation ran under bandwidth degradation and took longer.
    SlowedPropagation {
        /// The receiving level.
        level: usize,
        /// Index into the report's RP list.
        rp: usize,
        /// Extra propagation seconds beyond the provisioned window.
        extra: f64,
    },
    /// A permanent destruction expired every retrieval point the level
    /// retained.
    LostRetrievalPoints {
        /// The destroyed level.
        level: usize,
        /// How many retained RPs were lost.
        count: usize,
        /// When.
        at: f64,
    },
    /// A permanent destruction caught a retrieval point still in flight;
    /// it never became restorable.
    LostInFlight {
        /// The destroyed level.
        level: usize,
        /// Index into the report's RP list.
        rp: usize,
        /// When.
        at: f64,
    },
    /// A level stopped capturing for the rest of the run because it (or
    /// an upstream source) was permanently destroyed.
    CapturesCeased {
        /// The level that stopped.
        level: usize,
        /// When its next capture would have run.
        at: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdep_core::units::TimeDelta;

    fn plan_one(target: FaultTarget, kind: FaultKind) -> FaultPlan {
        FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_hours(1.0),
            target,
            kind,
        })
    }

    #[test]
    fn empty_plan_resolves_to_nothing() {
        let design = ssdep_core::presets::baseline_design();
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().len(), 0);
        assert_eq!(FaultPlan::new().resolve(&design), Ok(Vec::new()));
    }

    #[test]
    fn device_fault_maps_to_the_levels_it_backs() {
        let design = ssdep_core::presets::baseline_design();
        let plan = plan_one(
            FaultTarget::Device {
                name: "tape library".into(),
            },
            FaultKind::PermanentDestruction,
        );
        let resolved = plan.resolve(&design).unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].at, 3600.0);
        let library = design.device_id("tape library").unwrap();
        for &level in &resolved[0].levels {
            let l = &design.levels()[level];
            assert!(l.host() == library || l.transports().contains(&library));
        }
        assert!(!resolved[0].levels.is_empty());
    }

    #[test]
    fn level_fault_maps_to_exactly_that_level() {
        let design = ssdep_core::presets::baseline_design();
        let plan = plan_one(
            FaultTarget::Level { index: 2 },
            FaultKind::TransientOutage {
                repair_after: TimeDelta::from_hours(6.0),
            },
        );
        let resolved = plan.resolve(&design).unwrap();
        assert_eq!(resolved[0].levels, vec![2]);
    }

    #[test]
    fn site_scope_strikes_every_colocated_level() {
        let design = ssdep_core::presets::baseline_design();
        let plan = plan_one(
            FaultTarget::Scope {
                scope: FailureScope::Site,
            },
            FaultKind::PermanentDestruction,
        );
        let resolved = plan.resolve(&design).unwrap();
        // The baseline keeps its primary, mirror and backup on the
        // primary site; only the remote vault survives.
        assert!(resolved[0].levels.len() >= 2);
        assert!(resolved[0].levels.contains(&0));
    }

    #[test]
    fn unknown_device_is_rejected_with_its_name() {
        let design = ssdep_core::presets::baseline_design();
        let plan = plan_one(
            FaultTarget::Device {
                name: "quantum drive".into(),
            },
            FaultKind::PermanentDestruction,
        );
        let err = plan.resolve(&design).unwrap_err();
        assert!(matches!(err, Error::FaultUnresolvable { index: 0, .. }));
        assert!(err.to_string().contains("quantum drive"));
    }

    #[test]
    fn out_of_range_level_is_rejected() {
        let design = ssdep_core::presets::baseline_design();
        let plan = plan_one(
            FaultTarget::Level { index: 99 },
            FaultKind::PermanentDestruction,
        );
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::FaultUnresolvable { index: 0, .. })
        ));
    }

    #[test]
    fn scope_touching_nothing_is_rejected() {
        let design = ssdep_core::presets::baseline_design();
        // Data-object corruption is not a hardware fault: no level's
        // devices fall inside it.
        let plan = plan_one(
            FaultTarget::Scope {
                scope: FailureScope::DataObject {
                    size: ssdep_core::units::Bytes::from_gib(1.0),
                },
            },
            FaultKind::PermanentDestruction,
        );
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::FaultUnresolvable { index: 0, .. })
        ));
    }

    #[test]
    fn non_finite_and_negative_inputs_are_rejected() {
        let design = ssdep_core::presets::baseline_design();
        let target = || FaultTarget::Level { index: 1 };

        let plan = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_secs(f64::NAN),
            target: target(),
            kind: FaultKind::PermanentDestruction,
        });
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::NonFiniteInput { .. })
        ));

        let plan = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_secs(-5.0),
            target: target(),
            kind: FaultKind::PermanentDestruction,
        });
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::InvalidParameter { .. })
        ));

        let plan = plan_one(
            target(),
            FaultKind::TransientOutage {
                repair_after: TimeDelta::from_secs(f64::INFINITY),
            },
        );
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::NonFiniteInput { .. })
        ));

        for factor in [0.0, -0.5, 1.5, f64::NAN] {
            let plan = plan_one(
                target(),
                FaultKind::BandwidthDegradation {
                    factor,
                    duration: TimeDelta::from_hours(1.0),
                },
            );
            assert!(plan.resolve(&design).is_err(), "factor {factor} accepted");
        }
    }

    #[test]
    fn errors_name_the_fault_by_plan_index() {
        let design = ssdep_core::presets::baseline_design();
        let plan = FaultPlan::new()
            .with_fault(InjectedFault {
                at: TimeDelta::from_hours(1.0),
                target: FaultTarget::Level { index: 1 },
                kind: FaultKind::PermanentDestruction,
            })
            .with_fault(InjectedFault {
                at: TimeDelta::from_hours(2.0),
                target: FaultTarget::Device {
                    name: "missing".into(),
                },
                kind: FaultKind::PermanentDestruction,
            });
        assert!(matches!(
            plan.resolve(&design),
            Err(Error::FaultUnresolvable { index: 1, .. })
        ));
    }

    #[test]
    fn resolution_errors_are_permanent_never_retried() {
        // The evaluation supervisor retries transient failures; a fault
        // plan that names a nonexistent device is deterministically
        // wrong and must classify as permanent so supervised runs
        // quarantine it immediately instead of retrying.
        let design = ssdep_core::presets::baseline_design();
        let plan = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_hours(1.0),
            target: FaultTarget::Device {
                name: "missing".into(),
            },
            kind: FaultKind::PermanentDestruction,
        });
        let err = plan.resolve(&design).unwrap_err();
        assert_eq!(err.class(), ssdep_core::ErrorClass::Permanent);
        assert!(!err.is_transient());
    }

    #[test]
    fn plans_roundtrip_through_serde() {
        let plan = FaultPlan::new()
            .with_fault(InjectedFault {
                at: TimeDelta::from_hours(12.0),
                target: FaultTarget::Device {
                    name: "tape library".into(),
                },
                kind: FaultKind::TransientOutage {
                    repair_after: TimeDelta::from_hours(4.0),
                },
            })
            .with_fault(InjectedFault {
                at: TimeDelta::from_days(2.0),
                target: FaultTarget::Scope {
                    scope: FailureScope::Site,
                },
                kind: FaultKind::PermanentDestruction,
            })
            .with_fault(InjectedFault {
                at: TimeDelta::from_days(3.0),
                target: FaultTarget::Level { index: 1 },
                kind: FaultKind::BandwidthDegradation {
                    factor: 0.25,
                    duration: TimeDelta::from_hours(8.0),
                },
            });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}

//! Deriving executable capture schedules from technique models.
//!
//! The analytic side describes levels with windows; the simulator needs
//! a concrete schedule: how often to capture, what kind of RP each
//! capture produces, how long until it is restorable, and how many to
//! retain.

use serde::{Deserialize, Serialize};
use ssdep_core::error::Error;
use ssdep_core::protection::{IncrementalMode, MirrorMode, Technique};
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_core::workload::Workload;

/// What a scheduled capture produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RpKind {
    /// A complete copy of the dataset.
    Full,
    /// Changes since the last full (restore needs the full plus this).
    CumulativeIncrement {
        /// The update window this increment covers, for sizing.
        window: TimeDelta,
    },
    /// Changes since the previous backup of any kind (restore needs the
    /// full plus every increment after it).
    DifferentialIncrement {
        /// The update window this increment covers, for sizing.
        window: TimeDelta,
    },
}

impl RpKind {
    /// Whether a restore can start from this RP alone.
    pub fn is_full(&self) -> bool {
        matches!(self, RpKind::Full)
    }

    /// The update window an incremental covers (`None` for fulls).
    pub fn window(&self) -> Option<TimeDelta> {
        match self {
            RpKind::Full => None,
            RpKind::CumulativeIncrement { window } | RpKind::DifferentialIncrement { window } => {
                Some(*window)
            }
        }
    }
}

/// One slot of a capture cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepSpec {
    /// What this capture produces.
    pub kind: RpKind,
    /// Hold + propagation latency before the RP is restorable.
    pub latency: TimeDelta,
    /// The propagation (transfer) portion of the latency — the window
    /// during which the bytes actually move and consume bandwidth.
    pub propagation: TimeDelta,
}

/// The simulator's model of one level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LevelModel {
    /// The live primary copy.
    Primary,
    /// A continuously maintained mirror whose content trails the primary
    /// by at most `lag`.
    Continuous {
        /// Worst-case content staleness.
        lag: TimeDelta,
    },
    /// A windowed RP schedule.
    Scheduled {
        /// Interval between captures.
        period: TimeDelta,
        /// The cycle of capture kinds, applied round-robin.
        reps: Vec<RepSpec>,
        /// How many completed RPs are retained.
        retention: usize,
        /// For levels that move only changed data on a "full" capture
        /// (resilvering mirrors, snapshots, batched mirrors): the update
        /// window whose unique bytes each capture transfers. `None`
        /// means a full capture physically moves the whole dataset
        /// (backup, vaulting).
        full_transfer_window: Option<TimeDelta>,
        /// Bytes a restore reads from a full RP at this level.
        full_restore: Bytes,
    },
}

/// Derives the executable schedule for one level's technique.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a technique the simulator has
/// no executable model for (`Technique` is non-exhaustive; new variants
/// need an explicit schedule before they can be simulated).
pub fn level_model(technique: &Technique, workload: &Workload) -> Result<LevelModel, Error> {
    let data = workload.data_capacity();
    Ok(match technique {
        Technique::PrimaryCopy(_) => LevelModel::Primary,
        Technique::SplitMirror(t) => {
            let params = t.params();
            let staleness = params.accumulation_window() * t.mirror_count() as f64;
            LevelModel::Scheduled {
                period: params.accumulation_window(),
                reps: vec![RepSpec {
                    kind: RpKind::Full,
                    latency: params.transit_lag(),
                    propagation: params.propagation_window(),
                }],
                retention: params.retention_count() as usize,
                full_transfer_window: Some(staleness),
                full_restore: data,
            }
        }
        Technique::VirtualSnapshot(t) => {
            let params = t.params();
            LevelModel::Scheduled {
                period: params.accumulation_window(),
                reps: vec![RepSpec {
                    kind: RpKind::Full,
                    latency: params.transit_lag(),
                    propagation: params.propagation_window(),
                }],
                retention: params.retention_count() as usize,
                full_transfer_window: Some(params.accumulation_window()),
                full_restore: data,
            }
        }
        Technique::RemoteMirror(m) => match m.mode() {
            MirrorMode::Synchronous => LevelModel::Continuous {
                lag: TimeDelta::ZERO,
            },
            MirrorMode::Asynchronous { write_lag } => LevelModel::Continuous { lag: *write_lag },
            MirrorMode::Batched { params } => LevelModel::Scheduled {
                period: params.accumulation_window(),
                reps: vec![RepSpec {
                    kind: RpKind::Full,
                    latency: params.transit_lag(),
                    propagation: params.propagation_window(),
                }],
                retention: params.retention_count() as usize,
                full_transfer_window: Some(params.accumulation_window()),
                full_restore: data,
            },
        },
        Technique::Backup(b) => {
            let full = b.full_params();
            let full_rep = RepSpec {
                kind: RpKind::Full,
                latency: full.transit_lag(),
                propagation: full.propagation_window(),
            };
            match b.incremental() {
                None => LevelModel::Scheduled {
                    period: full.accumulation_window(),
                    reps: vec![full_rep],
                    retention: full.retention_count() as usize,
                    full_transfer_window: None,
                    full_restore: data,
                },
                Some(incr) => {
                    let captures_per_cycle = incr.count as usize + 1;
                    let mut reps = Vec::with_capacity(captures_per_cycle);
                    reps.push(full_rep);
                    for k in 1..=incr.count {
                        let kind = match incr.mode {
                            IncrementalMode::Cumulative => RpKind::CumulativeIncrement {
                                window: incr.accumulation_window * k as f64,
                            },
                            IncrementalMode::Differential => RpKind::DifferentialIncrement {
                                window: incr.accumulation_window,
                            },
                        };
                        reps.push(RepSpec {
                            kind,
                            latency: incr.hold_window + incr.propagation_window,
                            propagation: incr.propagation_window,
                        });
                    }
                    LevelModel::Scheduled {
                        period: full.cycle_period() / captures_per_cycle as f64,
                        reps,
                        retention: full.retention_count() as usize * captures_per_cycle,
                        full_transfer_window: None,
                        full_restore: data,
                    }
                }
            }
        }
        Technique::RemoteVault(t) => {
            let params = t.params();
            LevelModel::Scheduled {
                period: params.accumulation_window(),
                reps: vec![RepSpec {
                    kind: RpKind::Full,
                    latency: params.transit_lag(),
                    propagation: params.propagation_window(),
                }],
                retention: params.retention_count() as usize,
                full_transfer_window: None,
                full_restore: data,
            }
        }
        Technique::KOutOfN(t) => {
            let params = t.params();
            // An encoded RP is cut per accumulation window; the restore
            // still reads a dataset's worth of fragments.
            LevelModel::Scheduled {
                period: params.accumulation_window(),
                reps: vec![RepSpec {
                    kind: RpKind::Full,
                    latency: params.transit_lag(),
                    propagation: params.propagation_window(),
                }],
                retention: params.retention_count() as usize,
                full_transfer_window: None,
                full_restore: data,
            }
        }
        other => {
            return Err(Error::invalid(
                "level.technique",
                format!("no simulator schedule for technique `{other}`"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_models() -> Vec<LevelModel> {
        let workload = ssdep_core::presets::cello_workload();
        ssdep_core::presets::baseline_design()
            .levels()
            .iter()
            .map(|l| level_model(l.technique(), &workload).unwrap())
            .collect()
    }

    #[test]
    fn baseline_schedule_shapes() {
        let models = baseline_models();
        assert!(matches!(models[0], LevelModel::Primary));
        match &models[1] {
            LevelModel::Scheduled {
                period,
                retention,
                reps,
                full_transfer_window,
                ..
            } => {
                assert_eq!(*period, TimeDelta::from_hours(12.0));
                assert_eq!(*retention, 4);
                assert_eq!(reps.len(), 1);
                assert_eq!(reps[0].latency, TimeDelta::ZERO);
                // A resilver catches up five windows of unique updates.
                assert_eq!(*full_transfer_window, Some(TimeDelta::from_hours(60.0)));
            }
            other => panic!("split mirror should be scheduled, got {other:?}"),
        }
        match &models[3] {
            LevelModel::Scheduled {
                period,
                retention,
                reps,
                full_transfer_window,
                ..
            } => {
                assert_eq!(*period, TimeDelta::from_weeks(4.0));
                assert_eq!(*retention, 39);
                assert_eq!(*full_transfer_window, None);
                // Hold 4 wk + 12 h plus a 24 h propagation.
                assert_eq!(
                    reps[0].latency,
                    TimeDelta::from_weeks(4.0) + TimeDelta::from_hours(36.0)
                );
            }
            other => panic!("vault should be scheduled, got {other:?}"),
        }
    }

    #[test]
    fn full_and_incremental_cycle_shape() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::weekly_vault_full_incremental_design();
        let model = level_model(design.levels()[2].technique(), &workload).unwrap();
        match model {
            LevelModel::Scheduled {
                period,
                reps,
                retention,
                ..
            } => {
                // 6 captures per one-week cycle → 28-hour spacing.
                assert_eq!(reps.len(), 6);
                assert!((period.as_hours() - 28.0).abs() < 1e-9);
                assert!(reps[0].kind.is_full());
                assert!(!reps[1].kind.is_full());
                assert_eq!(retention, 4 * 6);
                // Cumulative increments cover growing windows.
                assert!(reps[5].kind.window().unwrap() > reps[1].kind.window().unwrap());
            }
            other => panic!("expected scheduled backup, got {other:?}"),
        }
    }

    #[test]
    fn mirror_modes_map_to_models() {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::async_batch_mirror_design(1);
        let model = level_model(design.levels()[1].technique(), &workload).unwrap();
        match model {
            LevelModel::Scheduled {
                period,
                full_transfer_window,
                full_restore,
                ..
            } => {
                assert_eq!(period, TimeDelta::from_minutes(1.0));
                // Each batch moves a minute of unique updates; the
                // restore still reads the full copy.
                assert_eq!(full_transfer_window, Some(TimeDelta::from_minutes(1.0)));
                assert_eq!(full_restore, workload.data_capacity());
            }
            other => panic!("expected scheduled batch mirror, got {other:?}"),
        }

        use ssdep_core::protection::RemoteMirror;
        let sync = Technique::RemoteMirror(RemoteMirror::synchronous());
        assert!(matches!(
            level_model(&sync, &workload),
            Ok(LevelModel::Continuous { lag }) if lag.is_zero()
        ));
        let asynchronous =
            Technique::RemoteMirror(RemoteMirror::asynchronous(TimeDelta::from_secs(30.0)));
        assert!(matches!(
            level_model(&asynchronous, &workload),
            Ok(LevelModel::Continuous { lag }) if lag == TimeDelta::from_secs(30.0)
        ));
    }

    #[test]
    fn rp_kind_helpers() {
        assert!(RpKind::Full.is_full());
        assert_eq!(RpKind::Full.window(), None);
        let incr = RpKind::DifferentialIncrement {
            window: TimeDelta::from_hours(24.0),
        };
        assert!(!incr.is_full());
        assert_eq!(incr.window(), Some(TimeDelta::from_hours(24.0)));
    }
}

//! Simulated failure injection and recovery execution.
//!
//! Given a completed [`SimReport`], a failure can be injected at any
//! instant: the simulator determines which retrieval point each
//! surviving level *actually* holds, picks the best source (as the
//! analytic model does, but over real state instead of worst-case
//! formulas), and executes the restore with the actual RP sizes through
//! the same hop-timing engine the analytic side uses
//! ([`ssdep_core::analysis::recovery_with_bytes`]).

use crate::sim::SimReport;
use ssdep_core::analysis::{recovery_with_bytes, RecoveryReport};
use ssdep_core::demands::DemandSet;
use ssdep_core::error::Error;
use ssdep_core::failure::{FailureScenario, FailureScope};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::{Bytes, TimeDelta};
use ssdep_core::workload::Workload;

/// The observed outcome of one injected failure.
#[derive(Debug, Clone)]
pub struct SimRecovery {
    /// When the failure was injected (simulated seconds).
    pub failure_time: f64,
    /// The level the restore streamed from.
    pub source_level: usize,
    /// The *observed* recent data loss: how far the restored content
    /// trails the recovery target.
    pub observed_loss: TimeDelta,
    /// The bytes the restore actually read.
    pub restore_bytes: Bytes,
    /// The executed recovery timeline.
    pub recovery: RecoveryReport,
}

/// Injects a failure at `failure_time` and executes the recovery from
/// the simulated state.
///
/// # Errors
///
/// Returns [`Error::NoRecoverySource`] when no surviving level holds a
/// usable RP at that instant (e.g. before the pipeline has warmed up),
/// and recovery errors from the hop engine.
pub fn simulate_failure(
    design: &StorageDesign,
    workload: &Workload,
    demands: &DemandSet,
    report: &SimReport,
    scenario: &FailureScenario,
    failure_time: f64,
) -> Result<SimRecovery, Error> {
    let target_age = scenario.target.age().as_secs();
    let cutoff = failure_time - target_age;

    let mut best: Option<(usize, f64, Option<usize>)> = None;
    for level in 0..design.levels().len() {
        if design.level_unavailable(level, scenario) {
            continue;
        }
        if level == 0 && matches!(scenario.scope, FailureScope::DataObject { .. }) {
            continue;
        }
        if let Some((content, rp)) = report.restorable_at(level, failure_time, target_age) {
            let loss = cutoff - content;
            let better = best.is_none_or(|(_, best_loss, _)| loss < best_loss);
            if better {
                let rp_index =
                    rp.and_then(|r| report.rps().iter().position(|x| std::ptr::eq(x, r)));
                best = Some((level, loss, rp_index));
            }
        }
    }
    let Some((source_level, loss, rp_index)) = best else {
        return Err(Error::NoRecoverySource {
            target: scenario.to_string(),
        });
    };

    let needed = scenario.recovery_size(workload.data_capacity());
    let restore_bytes = if needed < workload.data_capacity() {
        // Object-level restore reads just the object.
        needed
    } else {
        match rp_index {
            Some(index) => report
                .restore_set(&report.rps()[index])
                .iter()
                .map(|rp| rp.restore_bytes)
                .sum(),
            // Primary / continuous mirror: the full copy.
            None => workload.data_capacity(),
        }
    };

    let recovery = recovery_with_bytes(design, demands, scenario, source_level, restore_bytes)?;
    Ok(SimRecovery {
        failure_time,
        source_level,
        observed_loss: TimeDelta::from_secs(loss.max(0.0)),
        restore_bytes,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulation};
    use ssdep_core::failure::RecoveryTarget;

    struct Fixture {
        design: StorageDesign,
        workload: Workload,
        demands: DemandSet,
        report: SimReport,
    }

    fn baseline(weeks: f64) -> Fixture {
        let workload = ssdep_core::presets::cello_workload();
        let design = ssdep_core::presets::baseline_design();
        let demands = design.demands(&workload).unwrap();
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(weeks)),
        )
        .unwrap()
        .run();
        Fixture {
            design,
            workload,
            demands,
            report,
        }
    }

    #[test]
    fn array_failure_recovers_from_backup_with_observed_loss() {
        let fixture = baseline(16.0);
        let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
        let t = TimeDelta::from_weeks(15.0).as_secs();
        let outcome = simulate_failure(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            t,
        )
        .unwrap();
        assert_eq!(outcome.source_level, 2, "tape backup is the best survivor");
        let analytic = ssdep_core::analysis::data_loss(&fixture.design, &scenario)
            .unwrap()
            .worst_loss;
        assert!(outcome.observed_loss <= analytic);
        assert!(
            outcome.observed_loss > TimeDelta::from_hours(40.0),
            "backups lag days"
        );
        assert_eq!(outcome.restore_bytes, fixture.workload.data_capacity());
        assert!(outcome.recovery.total_time > TimeDelta::from_hours(1.0));
    }

    #[test]
    fn object_rollback_uses_the_split_mirror() {
        let fixture = baseline(8.0);
        let scenario = FailureScenario::new(
            FailureScope::DataObject {
                size: Bytes::from_mib(1.0),
            },
            RecoveryTarget::Before {
                age: TimeDelta::from_hours(24.0),
            },
        );
        let t = TimeDelta::from_weeks(7.0).as_secs();
        let outcome = simulate_failure(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            t,
        )
        .unwrap();
        assert_eq!(outcome.source_level, 1);
        assert!(outcome.observed_loss <= TimeDelta::from_hours(12.0));
        assert_eq!(outcome.restore_bytes, Bytes::from_mib(1.0));
        assert!(outcome.recovery.total_time < TimeDelta::from_secs(1.0));
    }

    #[test]
    fn failure_before_warmup_has_no_source() {
        let fixture = baseline(8.0);
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        // The vault's first RP completes ~8.2 weeks in; at week 2 a site
        // disaster is unrecoverable.
        let err = simulate_failure(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            TimeDelta::from_weeks(2.0).as_secs(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::NoRecoverySource { .. }));
    }

    #[test]
    fn site_failure_after_warmup_recovers_from_the_vault() {
        let fixture = baseline(16.0);
        let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
        let outcome = simulate_failure(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            TimeDelta::from_weeks(15.0).as_secs(),
        )
        .unwrap();
        assert_eq!(outcome.source_level, 3);
        assert!(outcome.recovery.total_time > TimeDelta::from_hours(24.0));
        let analytic = ssdep_core::analysis::data_loss(&fixture.design, &scenario)
            .unwrap()
            .worst_loss;
        assert!(outcome.observed_loss <= analytic);
    }
}

//! Sweeping failure times to validate the analytic worst cases.
//!
//! For each sampled failure instant, the observed data loss and recovery
//! time must not exceed the analytic worst case; across enough samples
//! the observed maximum should also *approach* the analytic bound,
//! showing the bound is tight rather than merely safe.

use crate::recovery::simulate_failure;
use crate::sim::SimReport;
use ssdep_core::analysis;
use ssdep_core::demands::DemandSet;
use ssdep_core::error::Error;
use ssdep_core::failure::FailureScenario;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::units::TimeDelta;
use ssdep_core::workload::Workload;

/// The result of validating one scenario against a simulation run.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// The validated scenario.
    pub scenario: FailureScenario,
    /// Analytic worst-case recent data loss.
    pub analytic_loss: TimeDelta,
    /// Analytic worst-case recovery time.
    pub analytic_recovery: TimeDelta,
    /// Largest observed data loss across samples.
    pub observed_max_loss: TimeDelta,
    /// Largest observed recovery time across samples.
    pub observed_max_recovery: TimeDelta,
    /// Failure instants that produced an outcome.
    pub evaluated_samples: usize,
    /// Failure instants where no surviving source existed (warmup).
    pub skipped_samples: usize,
    /// Samples whose observed loss exceeded the analytic bound.
    pub loss_violations: usize,
    /// Samples whose observed recovery exceeded the analytic bound.
    pub recovery_violations: usize,
}

impl ValidationOutcome {
    /// Whether every observation respected both analytic bounds.
    pub fn bounds_hold(&self) -> bool {
        self.loss_violations == 0 && self.recovery_violations == 0
    }

    /// How close the observed maximum loss came to the analytic bound
    /// (1.0 = the bound is tight).
    pub fn loss_tightness(&self) -> f64 {
        if self.analytic_loss.is_zero() {
            return 1.0;
        }
        self.observed_max_loss / self.analytic_loss
    }
}

/// Validates a scenario by injecting failures at every time in
/// `sample_times` (simulated seconds).
///
/// Samples where the pipeline has not warmed up enough to offer a source
/// are skipped (counted in
/// [`skipped_samples`](ValidationOutcome::skipped_samples)); other
/// errors propagate.
///
/// # Errors
///
/// Propagates analytic evaluation errors and recovery-engine errors.
pub fn validate_scenario(
    design: &StorageDesign,
    workload: &Workload,
    demands: &DemandSet,
    report: &SimReport,
    scenario: &FailureScenario,
    sample_times: &[f64],
) -> Result<ValidationOutcome, Error> {
    let analytic_loss = analysis::data_loss(design, scenario)?;
    let analytic_recovery = analysis::recovery(
        design,
        workload,
        demands,
        scenario,
        analytic_loss.source_level,
    )?;

    // Observed losses compare against the bound with a small slack for
    // floating-point scheduling jitter.
    let epsilon = TimeDelta::from_secs(1.0);

    let mut outcome = ValidationOutcome {
        scenario: scenario.clone(),
        analytic_loss: analytic_loss.worst_loss,
        analytic_recovery: analytic_recovery.total_time,
        observed_max_loss: TimeDelta::ZERO,
        observed_max_recovery: TimeDelta::ZERO,
        evaluated_samples: 0,
        skipped_samples: 0,
        loss_violations: 0,
        recovery_violations: 0,
    };

    for &t in sample_times {
        match simulate_failure(design, workload, demands, report, scenario, t) {
            Ok(observed) => {
                outcome.evaluated_samples += 1;
                outcome.observed_max_loss = outcome.observed_max_loss.max(observed.observed_loss);
                outcome.observed_max_recovery = outcome
                    .observed_max_recovery
                    .max(observed.recovery.total_time);
                if observed.observed_loss > outcome.analytic_loss + epsilon {
                    outcome.loss_violations += 1;
                }
                if observed.recovery.total_time > outcome.analytic_recovery + epsilon {
                    outcome.recovery_violations += 1;
                }
            }
            Err(Error::NoRecoverySource { .. }) => outcome.skipped_samples += 1,
            Err(other) => return Err(other),
        }
    }
    Ok(outcome)
}

/// Evenly spaced failure instants in `[start, end)`.
pub fn sample_grid(start: TimeDelta, end: TimeDelta, samples: usize) -> Vec<f64> {
    let (a, b) = (start.as_secs(), end.as_secs());
    if samples == 0 || b <= a {
        return Vec::new();
    }
    (0..samples)
        .map(|i| a + (b - a) * (i as f64 + 0.37) / samples as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulation};
    use ssdep_core::failure::{FailureScope, RecoveryTarget};
    use ssdep_core::units::Bytes;

    struct Fixture {
        design: StorageDesign,
        workload: Workload,
        demands: DemandSet,
        report: SimReport,
    }

    fn fixture(design: StorageDesign, weeks: f64) -> Fixture {
        let workload = ssdep_core::presets::cello_workload();
        let demands = design.demands(&workload).unwrap();
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(weeks)),
        )
        .unwrap()
        .run();
        Fixture {
            design,
            workload,
            demands,
            report,
        }
    }

    fn run(fixture: &Fixture, scenario: FailureScenario, samples: usize) -> ValidationOutcome {
        let grid = sample_grid(
            TimeDelta::from_weeks(10.0),
            fixture.report.horizon(),
            samples,
        );
        validate_scenario(
            &fixture.design,
            &fixture.workload,
            &fixture.demands,
            &fixture.report,
            &scenario,
            &grid,
        )
        .unwrap()
    }

    #[test]
    fn baseline_array_bounds_hold_and_are_tight() {
        let fixture = fixture(ssdep_core::presets::baseline_design(), 20.0);
        let outcome = run(
            &fixture,
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            64,
        );
        assert!(outcome.bounds_hold(), "{outcome:?}");
        assert!(outcome.evaluated_samples > 50);
        // The worst sampled instant should land within ~25 % of the
        // 217-hour analytic bound.
        assert!(
            outcome.loss_tightness() > 0.75,
            "loss tightness {:.2}",
            outcome.loss_tightness()
        );
    }

    #[test]
    fn baseline_site_bounds_hold() {
        let fixture = fixture(ssdep_core::presets::baseline_design(), 40.0);
        let outcome = run(
            &fixture,
            FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
            64,
        );
        assert!(outcome.bounds_hold(), "{outcome:?}");
        // Vault staleness swings over weeks; observed max should reach a
        // healthy share of the 1429-hour bound.
        assert!(
            outcome.loss_tightness() > 0.5,
            "loss tightness {:.2}",
            outcome.loss_tightness()
        );
    }

    #[test]
    fn baseline_object_rollback_bounds_hold() {
        let fixture = fixture(ssdep_core::presets::baseline_design(), 16.0);
        let outcome = run(
            &fixture,
            FailureScenario::new(
                FailureScope::DataObject {
                    size: Bytes::from_mib(1.0),
                },
                RecoveryTarget::Before {
                    age: TimeDelta::from_hours(24.0),
                },
            ),
            48,
        );
        assert!(outcome.bounds_hold(), "{outcome:?}");
        assert!(outcome.observed_max_loss <= TimeDelta::from_hours(12.0));
    }

    #[test]
    fn mirror_design_bounds_hold_with_minute_losses() {
        let fixture = fixture(ssdep_core::presets::async_batch_mirror_design(1), 12.0);
        let outcome = run(
            &fixture,
            FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
            48,
        );
        assert!(outcome.bounds_hold(), "{outcome:?}");
        assert!(outcome.analytic_loss == TimeDelta::from_minutes(2.0));
        assert!(outcome.observed_max_loss <= TimeDelta::from_minutes(2.0));
        assert!(outcome.observed_max_loss >= TimeDelta::from_minutes(1.0));
    }

    #[test]
    fn what_if_designs_all_respect_bounds_for_array_failures() {
        for design in ssdep_core::presets::what_if_designs() {
            let name = design.name().to_string();
            let fixture = fixture(design, 16.0);
            let outcome = run(
                &fixture,
                FailureScenario::new(FailureScope::Array, RecoveryTarget::Now),
                24,
            );
            assert!(outcome.bounds_hold(), "{name}: {outcome:?}");
            assert!(outcome.evaluated_samples > 0, "{name} evaluated nothing");
        }
    }

    #[test]
    fn sample_grid_spans_the_interval() {
        let grid = sample_grid(TimeDelta::from_hours(1.0), TimeDelta::from_hours(2.0), 10);
        assert_eq!(grid.len(), 10);
        assert!(grid[0] >= 3600.0);
        assert!(*grid.last().unwrap() < 7200.0);
        assert!(sample_grid(TimeDelta::from_hours(2.0), TimeDelta::from_hours(1.0), 5).is_empty());
    }
}

//! Cross-validation of the composite-scenario algebra against fault
//! injection: every composite class is lowered to its single-fault
//! scenario, replayed in the simulator, and the simulated windows must
//! be bracketed by the analytic answer.

use ssdep_core::composite::{evaluate_composite, CompositeScenario};
use ssdep_core::demands::DemandSet;
use ssdep_core::failure::{FailureScenario, FailureScope, RecoveryTarget};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::protection::RepairStrategy;
use ssdep_core::units::TimeDelta;
use ssdep_core::workload::Workload;
use ssdep_sim::recovery::simulate_failure;
use ssdep_sim::validate::{sample_grid, validate_scenario, ValidationOutcome};
use ssdep_sim::{SimConfig, SimReport, Simulation};

struct Fixture {
    design: StorageDesign,
    workload: Workload,
    demands: DemandSet,
    report: SimReport,
}

// A panic in this test helper is the failure report itself.
#[allow(clippy::unwrap_used)]
fn fixture(design: StorageDesign, weeks: f64) -> Fixture {
    let workload = ssdep_core::presets::cello_workload();
    let demands = design.demands(&workload).unwrap();
    let report = Simulation::new(
        &design,
        &workload,
        SimConfig::new(TimeDelta::from_weeks(weeks)),
    )
    .unwrap()
    .run();
    Fixture {
        design,
        workload,
        demands,
        report,
    }
}

// A panic in this test helper is the failure report itself.
#[allow(clippy::unwrap_used)]
fn validate(fixture: &Fixture, scenario: &FailureScenario, samples: usize) -> ValidationOutcome {
    let grid = sample_grid(
        TimeDelta::from_weeks(10.0),
        fixture.report.horizon(),
        samples,
    );
    validate_scenario(
        &fixture.design,
        &fixture.workload,
        &fixture.demands,
        &fixture.report,
        scenario,
        &grid,
    )
    .unwrap()
}

/// Lowers a composite on `design` and evaluates it analytically.
// A panic in this test helper is the failure report itself.
#[allow(clippy::unwrap_used)]
fn lower_and_evaluate(
    fixture: &Fixture,
    composite: &CompositeScenario,
) -> (FailureScenario, ssdep_core::composite::CompositeOutcome) {
    let lowered = composite.lower(&fixture.design).unwrap();
    let prepared =
        ssdep_core::analysis::PreparedDesign::prepare(&fixture.design, &fixture.workload).unwrap();
    let requirements = ssdep_core::presets::paper_requirements();
    let outcome = evaluate_composite(&prepared, &requirements, composite).unwrap();
    (lowered.scenario, outcome)
}

#[test]
fn correlated_composite_brackets_the_simulated_windows() {
    let fixture = fixture(ssdep_core::presets::baseline_design(), 20.0);
    let composite = CompositeScenario::Correlated {
        scopes: vec![FailureScope::Site, FailureScope::Array],
        correlation: 0.5,
        target: RecoveryTarget::Now,
    };
    let (lowered, outcome) = lower_and_evaluate(&fixture, &composite);
    // The lowered scenario's analytic windows bound every simulated
    // replay of the same fault.
    let validated = validate(&fixture, &lowered, 48);
    assert!(validated.bounds_hold(), "{validated:?}");
    assert!(validated.evaluated_samples > 30);
    // The correlated composite only inflates from there: its end-to-end
    // recovery dominates both the analytic and every observed window.
    assert!(outcome.total_recovery >= validated.analytic_recovery);
    assert!(outcome.total_recovery >= validated.observed_max_recovery);
    assert!((outcome.recovery_inflation - 1.5).abs() < 1e-12);
}

#[test]
fn second_fault_composite_dominates_the_simulated_plain_fault() {
    let fixture = fixture(ssdep_core::presets::baseline_design(), 20.0);
    let composite = CompositeScenario::SecondFault {
        first: FailureScope::Array,
        second: FailureScope::Site,
        target: RecoveryTarget::Now,
    };
    let (lowered, outcome) = lower_and_evaluate(&fixture, &composite);
    assert!(!lowered.degraded_levels.is_empty(), "{lowered:?}");
    // Simulated replays of the degraded site fault stay within its
    // analytic windows...
    let validated = validate(&fixture, &lowered, 48);
    assert!(validated.bounds_hold(), "{validated:?}");
    // ...and the composite's end-to-end answer (first recovery + second
    // recovery) dominates both the degraded and the plain site fault.
    let plain = validate(
        &fixture,
        &FailureScenario::new(FailureScope::Site, RecoveryTarget::Now),
        48,
    );
    assert!(outcome.total_recovery >= validated.observed_max_recovery);
    assert!(outcome.total_recovery > plain.analytic_recovery);
}

#[test]
fn human_error_composite_is_stopped_by_retention_in_both_models() {
    let fixture = fixture(ssdep_core::presets::baseline_design(), 20.0);
    let composite = CompositeScenario::HumanError {
        size: ssdep_core::units::Bytes::from_mib(1.0),
        age: TimeDelta::from_hours(24.0),
    };
    let (lowered, outcome) = lower_and_evaluate(&fixture, &composite);
    // The rollback lowers to a point-in-time object restore whose
    // simulated replays respect the analytic windows.
    let validated = validate(&fixture, &lowered, 48);
    assert!(validated.bounds_hold(), "{validated:?}");
    assert!(validated.evaluated_samples > 30);
    assert!(outcome.total_recovery >= validated.observed_max_recovery);
    // A point-in-time level serves the restore — the corruption did not
    // propagate into it.
    assert!(outcome.evaluation.loss.source_level_name().is_some());
}

#[test]
fn k_out_of_n_repair_strategies_hold_in_simulation_and_order_correctly() {
    let scenario = FailureScenario::new(FailureScope::Array, RecoveryTarget::Now);
    let parallel = fixture(ssdep_core::presets::k_out_of_n_design(), 20.0);
    let validated_parallel = validate(&parallel, &scenario, 48);
    assert!(validated_parallel.bounds_hold(), "{validated_parallel:?}");
    assert!(validated_parallel.evaluated_samples > 30);

    let serial = fixture(
        ssdep_core::presets::k_out_of_n_design_with(RepairStrategy::Serial),
        20.0,
    );
    let validated_serial = validate(&serial, &scenario, 48);
    assert!(validated_serial.bounds_hold(), "{validated_serial:?}");
    // Serial repair reads fragments one stream at a time: both the
    // analytic and the observed recovery dominate the parallel case.
    assert!(validated_serial.analytic_recovery > validated_parallel.analytic_recovery);
    assert!(validated_serial.observed_max_recovery > validated_parallel.observed_max_recovery);
}

#[test]
fn every_preset_agrees_with_the_simulator_on_site_data_loss() {
    let scenario = FailureScenario::new(FailureScope::Site, RecoveryTarget::Now);
    let mut designs = ssdep_core::presets::what_if_designs();
    designs.push(ssdep_core::presets::k_out_of_n_design());
    for design in designs {
        let name = design.name().to_string();
        let workload = ssdep_core::presets::cello_workload();
        let analytic = ssdep_core::analysis::data_loss(&design, &scenario);
        let demands = design.demands(&workload).unwrap();
        let report = Simulation::new(
            &design,
            &workload,
            SimConfig::new(TimeDelta::from_weeks(20.0)),
        )
        .unwrap()
        .run();
        // Replay the site fault at sampled instants well past warmup.
        let grid = sample_grid(TimeDelta::from_weeks(10.0), report.horizon(), 16);
        let mut simulated_loss = false;
        let mut simulated_total_loss = false;
        for &at in &grid {
            match simulate_failure(&design, &workload, &demands, &report, &scenario, at) {
                Ok(recovery) => simulated_loss |= !recovery.observed_loss.is_zero(),
                Err(_) => simulated_total_loss = true,
            }
        }
        match analytic {
            Ok(loss) => {
                assert!(
                    !simulated_total_loss,
                    "{name}: analytic recovers but the simulator lost every copy"
                );
                // The analytic bound is a worst case: simulated loss may
                // be zero at lucky instants, but never strictly positive
                // when the analysis says no update can be lost.
                if simulated_loss {
                    assert!(
                        !loss.worst_loss.is_zero(),
                        "{name}: simulator observed loss the analysis rules out"
                    );
                }
            }
            Err(_) => {
                // No analytic recovery source for a site fault: the
                // simulator must agree that data is irrecoverable.
                assert!(
                    simulated_total_loss,
                    "{name}: analysis finds no source but the simulator recovered"
                );
            }
        }
    }
}

//! End-to-end contract for the degraded exit path: a supervised search
//! whose checkpoint journal dies mid-run (`SSDEP_JOURNAL_FAULT`) must
//! finish the evaluation, print the journal caveat, and exit 3 — while
//! the same search with healthy storage exits 0 with an identical
//! ranking.

// Test harness code: a panic is the right failure report here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test process, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ssdep-degraded-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ssdep() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ssdep"));
    // A stale fault plan in the ambient environment must not leak in.
    cmd.env_remove("SSDEP_JOURNAL_FAULT")
        .env_remove("SSDEP_CRASH_AFTER");
    cmd
}

/// The ranked tail of a search's stdout (from the `Rank` table header
/// on); the provenance lines above it legitimately differ per run.
fn ranking(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    match text.find("\nRank") {
        Some(at) => text[at + 1..].to_string(),
        None => panic!("search output has no ranking table:\n{text}"),
    }
}

#[test]
fn journal_loss_mid_search_degrades_to_exit_3_with_a_caveat() {
    let scratch = Scratch::new("enospc");

    let clean = ssdep()
        .arg("search")
        .arg("--checkpoint")
        .arg(scratch.path("clean.jsonl"))
        .output()
        .expect("run clean search");
    assert!(
        clean.status.success(),
        "clean search failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let degraded = ssdep()
        .arg("search")
        .arg("--checkpoint")
        .arg(scratch.path("degraded.jsonl"))
        .env("SSDEP_JOURNAL_FAULT", "enospc@2")
        .output()
        .expect("run degraded search");
    assert_eq!(
        degraded.status.code(),
        Some(3),
        "expected the degraded-storage exit code; stderr: {}",
        String::from_utf8_lossy(&degraded.stderr)
    );
    let stdout = String::from_utf8_lossy(&degraded.stdout);
    assert!(
        stdout.contains("caveat: checkpoint journal lost mid-run"),
        "degraded search printed no journal caveat:\n{stdout}"
    );
    assert!(
        stdout.contains("rerun once space/IO recovers to re-checkpoint"),
        "caveat lost its operator guidance:\n{stdout}"
    );

    // Storage loss may cost the checkpoint, never the answer.
    assert_eq!(
        ranking(&clean.stdout),
        ranking(&degraded.stdout),
        "journal loss leaked into the ranking"
    );
}

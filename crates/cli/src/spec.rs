//! The JSON system-spec file format: everything an evaluation needs in
//! one document.

use serde::{Deserialize, Serialize};
use ssdep_core::composite::CompositeScenario;
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::workload::Workload;
use ssdep_sim::FaultPlan;

/// A complete evaluable system: workload + design + requirements.
///
/// Produced by `ssdep init`, consumed by `ssdep evaluate` and
/// `ssdep validate`. All fields use the library types' serde
/// representations directly, so specs round-trip losslessly through the
/// API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// The protected workload.
    pub workload: Workload,
    /// The storage system design.
    pub design: StorageDesign,
    /// Penalty rates and objectives.
    pub requirements: BusinessRequirements,
    /// Optional timed hardware faults for `ssdep inject`. Absent (or
    /// empty) in specs that only use the analytic commands; old specs
    /// without the field still parse.
    #[serde(default, skip_serializing_if = "FaultPlan::is_empty")]
    pub faults: FaultPlan,
    /// Optional composite failure scenarios, checked by `ssdep check`
    /// and evaluated by `ssdep evaluate`. Absent (or empty) in specs
    /// that only use the built-in catalog; old specs still parse.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub scenarios: Vec<CompositeScenario>,
}

impl SystemSpec {
    /// The paper's baseline system, as a starting spec.
    pub fn baseline() -> SystemSpec {
        SystemSpec {
            workload: ssdep_core::presets::cello_workload(),
            design: ssdep_core::presets::baseline_design(),
            requirements: ssdep_core::presets::paper_requirements(),
            faults: FaultPlan::new(),
            scenarios: Vec::new(),
        }
    }

    /// Serializes the spec as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never: the spec types serialize infallibly to JSON.
    // Plain-data serialization cannot fail; the expect documents that
    // rather than forcing every caller through an impossible error.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec types serialize to JSON")
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse/shape error, stringified. Use
    /// [`SystemSpec::from_json_detailed`] when the caller needs the
    /// parser's position as data.
    pub fn from_json(json: &str) -> Result<SystemSpec, String> {
        Self::from_json_detailed(json).map_err(|e| e.to_string())
    }

    /// Parses a spec from JSON, preserving the parser's line/column.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] carrying the rendered parse/shape error
    /// plus its 1-based line and column when the parser reported a
    /// position.
    pub fn from_json_detailed(json: &str) -> Result<SystemSpec, SpecError> {
        serde_json::from_str(json).map_err(|e| SpecError::from_parse(e.to_string(), json))
    }
}

/// A spec parse failure with the parser's position preserved as data.
///
/// `serde_json` reports positions inside its rendered message (`at line
/// L column C`, or a byte offset in some implementations); this type
/// recovers them so tools like `ssdep check` can emit a
/// machine-readable `D090` diagnostic instead of an opaque string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The parse/shape error, rendered.
    pub message: String,
    /// 1-based line of the failure, when the parser reported one.
    pub line: Option<usize>,
    /// 1-based column of the failure, when the parser reported one.
    pub column: Option<usize>,
}

impl SpecError {
    /// Builds a [`SpecError`] from a rendered parser message, recovering
    /// the position from `at line L column C` or, failing that, from a
    /// byte `offset N` resolved against the source text.
    fn from_parse(message: String, source: &str) -> SpecError {
        let (line, column) = position_from_line_column(&message)
            .or_else(|| {
                trailing_number(&message, " offset ")
                    .map(|offset| position_from_offset(source, offset))
            })
            .unwrap_or((None, None));
        SpecError {
            message,
            line,
            column,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.column) {
            (Some(line), Some(column)) => {
                write!(
                    f,
                    "invalid spec at line {line}, column {column}: {}",
                    self.message
                )
            }
            _ => write!(f, "invalid spec: {}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

/// Extracts `line L column C` from a rendered serde_json message.
fn position_from_line_column(message: &str) -> Option<(Option<usize>, Option<usize>)> {
    let line = trailing_number(message, " line ")?;
    let column = trailing_number(message, " column ")?;
    Some((Some(line), Some(column)))
}

/// Parses the number following the last occurrence of `marker`.
fn trailing_number(message: &str, marker: &str) -> Option<usize> {
    let start = message.rfind(marker)? + marker.len();
    let digits: String = message[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Converts a byte offset into a 1-based (line, column) pair.
fn position_from_offset(source: &str, offset: usize) -> (Option<usize>, Option<usize>) {
    let clamped = offset.min(source.len());
    let before = &source.as_bytes()[..clamped];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let column = clamped
        - before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1)
        + 1;
    (Some(line), Some(column))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spec_roundtrips_through_json() {
        let spec = SystemSpec::baseline();
        let json = spec.to_json();
        let back = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn malformed_json_reports_an_error() {
        let err = SystemSpec::from_json("{not json").unwrap_err();
        assert!(err.contains("invalid spec"));
    }

    #[test]
    fn parse_errors_carry_the_line_and_column() {
        // The defect sits on line 2, column 3 — both the position-aware
        // parser message formats must recover it.
        let err = SystemSpec::from_json_detailed("{\n  broken").unwrap_err();
        assert_eq!(err.line, Some(2), "{}", err.message);
        assert_eq!(err.column, Some(3), "{}", err.message);
        let rendered = err.to_string();
        assert!(rendered.contains("invalid spec"), "{rendered}");
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("column 3"), "{rendered}");
    }

    #[test]
    fn offset_positions_resolve_against_the_source() {
        let source = "line one\nline two\nline three";
        assert_eq!(
            position_from_offset(source, 9),
            (Some(2), Some(1)),
            "first byte of line two"
        );
        assert_eq!(position_from_offset(source, 0), (Some(1), Some(1)));
        // Past-the-end offsets clamp instead of panicking.
        assert_eq!(position_from_offset(source, 10_000), (Some(3), Some(11)));
    }

    #[test]
    fn specs_without_a_fault_section_still_parse() {
        let json = SystemSpec::baseline().to_json();
        assert!(!json.contains("\"faults\""), "empty plan should be omitted");
        let spec = SystemSpec::from_json(&json).unwrap();
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn fault_sections_roundtrip() {
        use ssdep_core::units::TimeDelta;
        use ssdep_sim::{FaultKind, FaultTarget, InjectedFault};
        let mut spec = SystemSpec::baseline();
        spec.faults = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(8.0),
            target: FaultTarget::Device {
                name: "tape library".into(),
            },
            kind: FaultKind::TransientOutage {
                repair_after: TimeDelta::from_hours(48.0),
            },
        });
        let json = spec.to_json();
        assert!(json.contains("\"faults\""));
        assert!(json.contains("TransientOutage"));
        let back = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn json_is_human_skimmable() {
        let json = SystemSpec::baseline().to_json();
        assert!(json.contains("\"workload\""));
        assert!(json.contains("split mirror"));
        assert!(json.contains("tape library"));
    }
}

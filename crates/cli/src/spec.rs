//! The JSON system-spec file format: everything an evaluation needs in
//! one document.

use serde::{Deserialize, Serialize};
use ssdep_core::hierarchy::StorageDesign;
use ssdep_core::requirements::BusinessRequirements;
use ssdep_core::workload::Workload;
use ssdep_sim::FaultPlan;

/// A complete evaluable system: workload + design + requirements.
///
/// Produced by `ssdep init`, consumed by `ssdep evaluate` and
/// `ssdep validate`. All fields use the library types' serde
/// representations directly, so specs round-trip losslessly through the
/// API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// The protected workload.
    pub workload: Workload,
    /// The storage system design.
    pub design: StorageDesign,
    /// Penalty rates and objectives.
    pub requirements: BusinessRequirements,
    /// Optional timed hardware faults for `ssdep inject`. Absent (or
    /// empty) in specs that only use the analytic commands; old specs
    /// without the field still parse.
    #[serde(default, skip_serializing_if = "FaultPlan::is_empty")]
    pub faults: FaultPlan,
}

impl SystemSpec {
    /// The paper's baseline system, as a starting spec.
    pub fn baseline() -> SystemSpec {
        SystemSpec {
            workload: ssdep_core::presets::cello_workload(),
            design: ssdep_core::presets::baseline_design(),
            requirements: ssdep_core::presets::paper_requirements(),
            faults: FaultPlan::new(),
        }
    }

    /// Serializes the spec as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never: the spec types serialize infallibly to JSON.
    // Plain-data serialization cannot fail; the expect documents that
    // rather than forcing every caller through an impossible error.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec types serialize to JSON")
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse/shape error, stringified.
    pub fn from_json(json: &str) -> Result<SystemSpec, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid spec: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spec_roundtrips_through_json() {
        let spec = SystemSpec::baseline();
        let json = spec.to_json();
        let back = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn malformed_json_reports_an_error() {
        let err = SystemSpec::from_json("{not json").unwrap_err();
        assert!(err.contains("invalid spec"));
    }

    #[test]
    fn specs_without_a_fault_section_still_parse() {
        let json = SystemSpec::baseline().to_json();
        assert!(!json.contains("\"faults\""), "empty plan should be omitted");
        let spec = SystemSpec::from_json(&json).unwrap();
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn fault_sections_roundtrip() {
        use ssdep_core::units::TimeDelta;
        use ssdep_sim::{FaultKind, FaultTarget, InjectedFault};
        let mut spec = SystemSpec::baseline();
        spec.faults = FaultPlan::new().with_fault(InjectedFault {
            at: TimeDelta::from_weeks(8.0),
            target: FaultTarget::Device {
                name: "tape library".into(),
            },
            kind: FaultKind::TransientOutage {
                repair_after: TimeDelta::from_hours(48.0),
            },
        });
        let json = spec.to_json();
        assert!(json.contains("\"faults\""));
        assert!(json.contains("TransientOutage"));
        let back = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn json_is_human_skimmable() {
        let json = SystemSpec::baseline().to_json();
        assert!(json.contains("\"workload\""));
        assert!(json.contains("split mirror"));
        assert!(json.contains("tape library"));
    }
}
